"""Statistical workload models.

The paper characterizes workloads through execution-driven simulation of
SPEC2000 binaries.  Those binaries (and SimpleScalar) are not available
here, so each workload is modelled statistically: a
:class:`WorkloadProfile` captures the microarchitecture-independent
behaviour that drives the timing simulators —

* the instruction mix,
* an ILP curve (how much instruction-level parallelism a window of a given
  size can expose),
* the density of back-to-back dependence chains (sensitivity to the
  wake-up latency between dependent instructions),
* a branch-predictability model, and
* a memory reuse model (miss rate as a function of cache geometry).

The same profile drives both the fast interval model
(:mod:`repro.sim.interval`) and the synthetic trace generator
(:mod:`repro.workloads.generator`), so the two simulation paths see a
consistent workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import WorkloadError

#: Reference geometry at which miss-rate curves are calibrated.
REFERENCE_BLOCK_BYTES = 64


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction-class frequencies (must sum to 1)."""

    load: float
    store: float
    branch: float
    int_alu: float
    mul: float = 0.0

    def __post_init__(self) -> None:
        parts = (self.load, self.store, self.branch, self.int_alu, self.mul)
        if any(p < 0 for p in parts):
            raise WorkloadError(f"instruction mix has negative component: {parts}")
        total = sum(parts)
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise WorkloadError(f"instruction mix must sum to 1, got {total}")

    @property
    def memory(self) -> float:
        """Fraction of instructions that access memory."""
        return self.load + self.store


@dataclass(frozen=True)
class BranchModel:
    """Control-flow behaviour of a workload.

    ``misp_rate`` is the misprediction rate achieved by the fixed reference
    predictor the exploration assumes (the paper's design space does not
    vary the predictor — Tables 3 and 4 carry no predictor parameters).
    ``taken_rate`` and ``bias`` shape the generated branch streams: ``bias``
    is the average per-static-branch outcome bias (0.5 = coin flips,
    1.0 = fully biased), which is what Figure 1's "branch biasness" axis
    measures.
    """

    misp_rate: float
    taken_rate: float = 0.55
    bias: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.misp_rate <= 0.5:
            raise WorkloadError(f"misp_rate must be in [0, 0.5], got {self.misp_rate}")
        if not 0.0 <= self.taken_rate <= 1.0:
            raise WorkloadError(f"taken_rate must be in [0, 1], got {self.taken_rate}")
        if not 0.5 <= self.bias <= 1.0:
            raise WorkloadError(f"bias must be in [0.5, 1], got {self.bias}")


@dataclass(frozen=True)
class WorkingSetComponent:
    """One component of the reuse profile.

    ``fraction`` of memory accesses touch a region of ``size_bytes`` bytes;
    accesses within a component are spread with LRU-friendly reuse, so a
    cache larger than the component captures it almost entirely.
    """

    fraction: float
    size_bytes: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise WorkloadError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.size_bytes < 64:
            raise WorkloadError(f"working-set component below 64 B: {self.size_bytes}")


@dataclass(frozen=True)
class MemoryModel:
    """Analytical cache-miss model built from working-set components.

    The miss rate of an LRU cache of capacity ``C`` is approximated as the
    fraction of accesses whose reuse distance exceeds ``C``: each component
    contributes its access fraction, attenuated smoothly once the cache is
    larger than the component.  ``spatial_locality`` (0..1) controls how
    much larger cache blocks help (1 = perfectly sequential, 0 = random);
    ``conflict_pressure`` adds conflict misses at low associativity;
    ``compulsory`` is the irreducible cold-miss floor; ``mlp`` is the
    maximum memory-level parallelism the access stream allows.
    """

    components: tuple[WorkingSetComponent, ...]
    spatial_locality: float = 0.5
    conflict_pressure: float = 0.3
    compulsory: float = 0.0005
    mlp: float = 2.0
    mlp_window_half: float = 150.0
    tail_exponent: float = 2.2
    partial_exponent: float = 0.5
    spatial_run_bytes: int = 192

    def __post_init__(self) -> None:
        if not self.components:
            raise WorkloadError("memory model needs at least one working-set component")
        total = sum(c.fraction for c in self.components)
        if total > 1.0 + 1e-9:
            raise WorkloadError(f"working-set fractions exceed 1: {total}")
        if not 0.0 <= self.spatial_locality <= 1.0:
            raise WorkloadError("spatial_locality must be in [0, 1]")
        if self.conflict_pressure < 0:
            raise WorkloadError("conflict_pressure cannot be negative")
        if not 0.0 <= self.compulsory <= 0.2:
            raise WorkloadError("compulsory miss floor must be in [0, 0.2]")
        if self.mlp < 1.0:
            raise WorkloadError("mlp must be >= 1")
        if self.mlp_window_half <= 0:
            raise WorkloadError("mlp_window_half must be positive")

    @property
    def footprint_bytes(self) -> int:
        """Total touched data: the largest working-set component."""
        return max(c.size_bytes for c in self.components)

    def miss_rate(
        self,
        capacity_bytes: int,
        block_bytes: int = REFERENCE_BLOCK_BYTES,
        assoc: int = 2,
    ) -> float:
        """Miss rate per memory access for the given cache geometry."""
        if capacity_bytes < 64:
            raise WorkloadError(f"cache capacity below 64 B: {capacity_bytes}")
        if block_bytes < 1 or assoc < 1:
            raise WorkloadError("block size and associativity must be positive")
        capture = 0.0
        for comp in self.components:
            # Two-regime LRU capture: below the component's size the cache
            # captures the hottest part of it (sub-linear growth); above it
            # a small leak remains that decays with the capacity ratio.
            ratio = capacity_bytes / comp.size_bytes
            if ratio < 1.0:
                captured = 0.95 * ratio**self.partial_exponent
            else:
                captured = 1.0 - 0.05 / ratio**self.tail_exponent
            capture += comp.fraction * captured
        miss = max(0.0, 1.0 - capture)
        # Spatial locality: doubling the block halves misses for a perfectly
        # sequential stream and does nothing for a random one.  The benefit
        # saturates at the workload's typical run length — blocks larger
        # than a spatial run only fetch dead bytes.
        effective_block = min(block_bytes, max(self.spatial_run_bytes, REFERENCE_BLOCK_BYTES))
        block_ratio = effective_block / REFERENCE_BLOCK_BYTES
        miss *= block_ratio ** (-self.spatial_locality)
        # Conflict misses vanish as associativity grows.
        miss *= 1.0 + self.conflict_pressure / assoc
        return float(min(1.0, miss + self.compulsory))

    def achievable_mlp(self, window: float) -> float:
        """Memory-level parallelism reachable with an instruction window.

        Independent misses must coexist in the window to overlap; for
        pointer-chasing workloads (large ``mlp_window_half``) most nearby
        misses are dependent, so exposing parallelism takes a very large
        window — this is why the paper's mcf demands a 1024-entry ROB.
        """
        if window <= 0:
            return 1.0
        return max(1.0, self.mlp * window / (window + self.mlp_window_half))


@dataclass(frozen=True)
class WorkloadProfile:
    """Complete statistical description of one workload.

    Attributes
    ----------
    name:
        Benchmark identifier (e.g. ``"mcf"``).
    mix:
        Dynamic instruction mix.
    ilp_limit:
        Instructions per cycle sustainable with an unbounded window and
        single-cycle operations (the dataflow limit's practical plateau).
    ilp_window_half:
        Window size (in instructions) at which half of ``ilp_limit`` is
        exposed; large values mean the workload needs a big ROB.
    dependence_density:
        Fraction of instructions whose consumer wants to issue back-to-back
        (Figure 1's "density of dependence chains"); scales the cost of
        pipelining the wake-up/select loop.
    load_use_fraction:
        Fraction of loads whose value is consumed immediately; scales the
        cost of extra L1 hit cycles.
    branch:
        Branch behaviour.
    memory:
        Memory reuse behaviour.
    weight:
        Importance weight for communal customization (the paper's default
        studies use equal weights).
    """

    name: str
    mix: InstructionMix
    ilp_limit: float
    ilp_window_half: float
    dependence_density: float
    load_use_fraction: float
    branch: BranchModel
    memory: MemoryModel
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload needs a non-empty name")
        if self.ilp_limit <= 0:
            raise WorkloadError(f"ilp_limit must be positive, got {self.ilp_limit}")
        if self.ilp_window_half <= 0:
            raise WorkloadError("ilp_window_half must be positive")
        if not 0.0 <= self.dependence_density <= 1.0:
            raise WorkloadError("dependence_density must be in [0, 1]")
        if not 0.0 <= self.load_use_fraction <= 1.0:
            raise WorkloadError("load_use_fraction must be in [0, 1]")
        if self.weight <= 0:
            raise WorkloadError("weight must be positive")

    def ilp(self, window: float) -> float:
        """ILP exposed by an instruction window of the given size."""
        if window <= 0:
            return 0.0
        return self.ilp_limit * window / (window + self.ilp_window_half)
