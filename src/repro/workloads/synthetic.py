"""Parameterized synthetic workload families.

Beyond the fixed SPEC2000 calibrations, library users exploring their
own design questions need workloads whose behaviour they can dial.  Each
family constructor exposes the one or two axes that define it and fills
the rest with sensible defaults:

* :func:`streaming` — sequential, bandwidth-hungry kernels (STREAM-like);
* :func:`pointer_chasing` — dependent-load chains over a large heap
  (mcf/olden-like);
* :func:`branchy` — control-dominated interpreters with tunable
  predictability;
* :func:`compute_kernel` — high-ILP arithmetic with a small footprint;
* :func:`blended` — interpolate between any two profiles.

All constructors return ordinary
:class:`~repro.workloads.profile.WorkloadProfile` objects, so every tool
in the library (trace generation, both simulators, xp-scalar, communal
customization) works on them unchanged.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..units import KB, MB
from .profile import (
    BranchModel,
    InstructionMix,
    MemoryModel,
    WorkingSetComponent,
    WorkloadProfile,
)


def streaming(
    name: str = "streaming",
    footprint_bytes: int = 64 * MB,
    intensity: float = 0.5,
) -> WorkloadProfile:
    """A sequential streaming kernel.

    ``intensity`` in [0, 1] scales the memory-operation density from
    compute-with-streams (0) to pure copy loops (1).
    """
    if not 0.0 <= intensity <= 1.0:
        raise WorkloadError(f"intensity must be in [0, 1], got {intensity}")
    load = 0.20 + 0.25 * intensity
    store = 0.10 + 0.15 * intensity
    return WorkloadProfile(
        name=name,
        mix=InstructionMix(
            load=load, store=store, branch=0.06,
            int_alu=1.0 - load - store - 0.06 - 0.04, mul=0.04,
        ),
        ilp_limit=5.5,
        ilp_window_half=80.0,
        dependence_density=0.22,
        load_use_fraction=0.25,
        branch=BranchModel(misp_rate=0.01, taken_rate=0.85, bias=0.98),
        memory=MemoryModel(
            components=(
                WorkingSetComponent(0.25, 16 * KB),
                WorkingSetComponent(0.73, footprint_bytes),
            ),
            spatial_locality=0.95,
            spatial_run_bytes=512,
            mlp=8.0,
            mlp_window_half=80.0,
        ),
    )


def pointer_chasing(
    name: str = "pointer-chasing",
    heap_bytes: int = 32 * MB,
    chain_fraction: float = 0.6,
) -> WorkloadProfile:
    """Linked-structure traversal: dependent loads over a large heap."""
    if not 0.0 <= chain_fraction <= 1.0:
        raise WorkloadError(f"chain_fraction must be in [0, 1], got {chain_fraction}")
    return WorkloadProfile(
        name=name,
        mix=InstructionMix(load=0.34, store=0.06, branch=0.16, int_alu=0.43, mul=0.01),
        ilp_limit=2.5,
        ilp_window_half=350.0,
        dependence_density=0.35 + 0.25 * chain_fraction,
        load_use_fraction=0.45 + 0.3 * chain_fraction,
        branch=BranchModel(misp_rate=0.08, taken_rate=0.52, bias=0.80),
        memory=MemoryModel(
            components=(
                WorkingSetComponent(0.50, 24 * KB),
                WorkingSetComponent(0.25, 2 * MB),
                WorkingSetComponent(0.24, heap_bytes),
            ),
            spatial_locality=0.12,
            mlp=3.0 + 2.0 * (1.0 - chain_fraction),
            mlp_window_half=600.0 + 600.0 * chain_fraction,
        ),
    )


def branchy(
    name: str = "branchy",
    predictability: float = 0.90,
) -> WorkloadProfile:
    """Control-dominated code (interpreter dispatch loops).

    ``predictability`` in [0.5, 1] is the achievable prediction accuracy.
    """
    if not 0.5 <= predictability <= 1.0:
        raise WorkloadError(
            f"predictability must be in [0.5, 1], got {predictability}"
        )
    return WorkloadProfile(
        name=name,
        mix=InstructionMix(load=0.26, store=0.10, branch=0.22, int_alu=0.41, mul=0.01),
        ilp_limit=3.5,
        ilp_window_half=70.0,
        dependence_density=0.38,
        load_use_fraction=0.35,
        branch=BranchModel(
            misp_rate=min(0.5, 1.0 - predictability),
            taken_rate=0.55,
            bias=max(0.5, predictability - 0.03),
        ),
        memory=MemoryModel(
            components=(
                WorkingSetComponent(0.92, 20 * KB),
                WorkingSetComponent(0.07, 256 * KB),
            ),
            spatial_locality=0.45,
            mlp=2.5,
        ),
    )


def compute_kernel(
    name: str = "compute",
    ilp: float = 7.0,
) -> WorkloadProfile:
    """High-ILP arithmetic over a cache-resident footprint."""
    if ilp <= 0:
        raise WorkloadError(f"ilp must be positive, got {ilp}")
    return WorkloadProfile(
        name=name,
        mix=InstructionMix(load=0.18, store=0.06, branch=0.05, int_alu=0.61, mul=0.10),
        ilp_limit=ilp,
        ilp_window_half=50.0,
        dependence_density=0.18,
        load_use_fraction=0.20,
        branch=BranchModel(misp_rate=0.008, taken_rate=0.80, bias=0.99),
        memory=MemoryModel(
            components=(WorkingSetComponent(0.97, 24 * KB),),
            spatial_locality=0.85,
            mlp=4.0,
        ),
    )


def blended(
    a: WorkloadProfile,
    b: WorkloadProfile,
    alpha: float,
    name: str | None = None,
) -> WorkloadProfile:
    """Interpolate two profiles: ``alpha`` = 0 gives ``a``, 1 gives ``b``.

    Scalar statistics interpolate linearly; the memory model keeps both
    components sets, scaled by the blend weights.
    """
    if not 0.0 <= alpha <= 1.0:
        raise WorkloadError(f"alpha must be in [0, 1], got {alpha}")

    def lerp(x: float, y: float) -> float:
        return (1 - alpha) * x + alpha * y

    mix = InstructionMix(
        load=lerp(a.mix.load, b.mix.load),
        store=lerp(a.mix.store, b.mix.store),
        branch=lerp(a.mix.branch, b.mix.branch),
        int_alu=lerp(a.mix.int_alu, b.mix.int_alu),
        mul=lerp(a.mix.mul, b.mix.mul),
    )
    components = tuple(
        WorkingSetComponent(c.fraction * (1 - alpha), c.size_bytes)
        for c in a.memory.components
        if c.fraction * (1 - alpha) > 1e-6
    ) + tuple(
        WorkingSetComponent(c.fraction * alpha, c.size_bytes)
        for c in b.memory.components
        if c.fraction * alpha > 1e-6
    )
    if not components:
        raise WorkloadError("blend produced an empty working set")
    return WorkloadProfile(
        name=name or f"{a.name}x{b.name}@{alpha:.2f}",
        mix=mix,
        ilp_limit=lerp(a.ilp_limit, b.ilp_limit),
        ilp_window_half=lerp(a.ilp_window_half, b.ilp_window_half),
        dependence_density=lerp(a.dependence_density, b.dependence_density),
        load_use_fraction=lerp(a.load_use_fraction, b.load_use_fraction),
        branch=BranchModel(
            misp_rate=lerp(a.branch.misp_rate, b.branch.misp_rate),
            taken_rate=lerp(a.branch.taken_rate, b.branch.taken_rate),
            bias=lerp(a.branch.bias, b.branch.bias),
        ),
        memory=MemoryModel(
            components=components,
            spatial_locality=lerp(a.memory.spatial_locality, b.memory.spatial_locality),
            conflict_pressure=lerp(
                a.memory.conflict_pressure, b.memory.conflict_pressure
            ),
            compulsory=lerp(a.memory.compulsory, b.memory.compulsory),
            mlp=lerp(a.memory.mlp, b.memory.mlp),
            mlp_window_half=lerp(a.memory.mlp_window_half, b.memory.mlp_window_half),
            spatial_run_bytes=int(
                lerp(a.memory.spatial_run_bytes, b.memory.spatial_run_bytes)
            ),
        ),
        weight=lerp(a.weight, b.weight),
    )
