"""Kiviat (radar) graph data — the paper's Figure 1.

Figure 1 plots five microarchitecture-independent characteristics on a
0-10 scale for three illustrative workloads α, β, γ: α and β look close
in raw-characteristic space (they differ only in working-set size) while
γ looks distant — yet γ is the better co-resident for α's customized
core.  This module provides both the generic Kiviat data structure used
to render any workload population and the three illustrative profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import KB, MB
from .characteristics import (
    Characteristics,
    euclidean_distance_matrix,
    normalize_matrix,
    profile_characteristics,
)
from .profile import (
    BranchModel,
    InstructionMix,
    MemoryModel,
    WorkingSetComponent,
    WorkloadProfile,
)

#: The five Figure 1 axes, in the paper's A-E order.
FIGURE1_AXES = (
    "working_set_log2_bytes",
    "branch_predictability",
    "dependence_density",
    "load_frequency",
    "branch_frequency",
)


@dataclass(frozen=True)
class KiviatGraph:
    """One workload's normalized radar plot."""

    name: str
    axes: tuple[str, ...]
    values: tuple[float, ...]  # 0..10 per axis

    def __post_init__(self) -> None:
        if len(self.axes) != len(self.values):
            raise ValueError("axes and values must have equal length")


def kiviat_graphs(
    profiles: list[WorkloadProfile],
    axes: tuple[str, ...] = FIGURE1_AXES,
) -> list[KiviatGraph]:
    """Build 0-10-normalized Kiviat graphs for a workload population."""
    chars = [profile_characteristics(p) for p in profiles]
    idx = [Characteristics.field_names().index(a) for a in axes]
    matrix = np.array([c.as_vector()[idx] for c in chars])
    normalized = normalize_matrix(matrix)
    return [
        KiviatGraph(name=p.name, axes=axes, values=tuple(float(v) for v in row))
        for p, row in zip(profiles, normalized)
    ]


def kiviat_distance_matrix(graphs: list[KiviatGraph]) -> np.ndarray:
    """Euclidean distances between Kiviat graphs (subsetting's metric)."""
    matrix = np.array([g.values for g in graphs], dtype=float)
    return euclidean_distance_matrix(matrix)


def figure1_profiles() -> list[WorkloadProfile]:
    """The three illustrative workloads of Figure 1.

    * **alpha** — small working set, dense dependence chains, frequent
      loads;
    * **beta** — like alpha but with a much larger working set;
    * **gamma** — large working set like beta, but higher branch
      predictability and sparser dependence chains, so it tolerates cache
      misses and suits alpha's configuration better than beta does.
    """
    base_mix = InstructionMix(load=0.30, store=0.10, branch=0.14, int_alu=0.44, mul=0.02)
    alpha = WorkloadProfile(
        name="alpha",
        mix=base_mix,
        ilp_limit=2.8,
        ilp_window_half=90.0,
        dependence_density=0.45,
        load_use_fraction=0.45,
        branch=BranchModel(misp_rate=0.075, taken_rate=0.55, bias=0.82),
        memory=MemoryModel(
            components=(
                WorkingSetComponent(0.85, 16 * KB),
                WorkingSetComponent(0.14, 128 * KB),
            ),
            spatial_locality=0.5,
            mlp=3.0,
        ),
    )
    beta = WorkloadProfile(
        name="beta",
        mix=base_mix,
        ilp_limit=2.8,
        ilp_window_half=90.0,
        dependence_density=0.45,
        load_use_fraction=0.45,
        branch=BranchModel(misp_rate=0.075, taken_rate=0.55, bias=0.82),
        memory=MemoryModel(
            components=(
                WorkingSetComponent(0.45, 16 * KB),
                WorkingSetComponent(0.45, 1 * MB),
                WorkingSetComponent(0.09, 16 * MB),
            ),
            spatial_locality=0.5,
            mlp=3.0,
        ),
    )
    gamma = WorkloadProfile(
        name="gamma",
        mix=InstructionMix(load=0.24, store=0.10, branch=0.10, int_alu=0.54, mul=0.02),
        ilp_limit=2.8,
        ilp_window_half=90.0,
        dependence_density=0.20,
        load_use_fraction=0.25,
        branch=BranchModel(misp_rate=0.030, taken_rate=0.55, bias=0.94),
        memory=MemoryModel(
            components=(
                WorkingSetComponent(0.45, 16 * KB),
                WorkingSetComponent(0.45, 1 * MB),
                WorkingSetComponent(0.09, 16 * MB),
            ),
            spatial_locality=0.5,
            mlp=5.0,
        ),
    )
    return [alpha, beta, gamma]
