"""SimPoint-style phase sampling.

The paper's evaluations execute "a 100-million instruction Simpoint"
per configuration [34]: rather than simulating a whole program, the
trace is split into fixed-length intervals, intervals are clustered by a
behaviour signature, and one representative interval per cluster is
simulated, weighted by its cluster's share.  This module reproduces
that methodology over our synthetic traces, so the (slow) cycle-level
simulator can evaluate long workloads at a fraction of the cost:

* :func:`interval_signatures` — per-interval behaviour vectors
  (instruction mix, dependence density, working-set size), playing the
  role of basic-block vectors;
* :func:`pick_simpoints` — k-means clustering and medoid selection;
* :func:`evaluate_simpoints` — weighted cycle-level evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import WorkloadError
from .trace import Op, Trace


@dataclass(frozen=True)
class SimPoint:
    """One representative interval and its population weight."""

    interval: int  # interval index
    start: int  # instruction index
    stop: int
    weight: float


def interval_signatures(trace: Trace, interval_length: int) -> np.ndarray:
    """Behaviour-signature matrix, one row per interval.

    Columns: fractions of the five op classes, back-to-back dependence
    density, and log2 of unique 64-byte blocks touched — the
    microarchitecture-independent fingerprint of each interval.
    """
    if interval_length < 16:
        raise WorkloadError(f"interval_length must be >= 16, got {interval_length}")
    n = len(trace)
    n_intervals = n // interval_length
    if n_intervals < 1:
        raise WorkloadError(
            f"trace of {n} instructions is shorter than one interval "
            f"({interval_length})"
        )
    signatures = np.zeros((n_intervals, 7))
    for k in range(n_intervals):
        lo, hi = k * interval_length, (k + 1) * interval_length
        ops = trace.ops[lo:hi]
        for c, op in enumerate((Op.ALU, Op.MUL, Op.LOAD, Op.STORE, Op.BRANCH)):
            signatures[k, c] = np.count_nonzero(ops == int(op)) / interval_length
        signatures[k, 5] = (
            np.count_nonzero(trace.src1_dist[lo:hi] == 1) / interval_length
        )
        mem = (ops == int(Op.LOAD)) | (ops == int(Op.STORE))
        blocks = np.unique(trace.addrs[lo:hi][mem] >> np.uint64(6))
        signatures[k, 6] = np.log2(max(1, len(blocks))) / 20.0  # scaled
    return signatures


def pick_simpoints(
    trace: Trace,
    interval_length: int,
    max_points: int = 5,
    seed: int = 0,
) -> list[SimPoint]:
    """Cluster intervals and return medoid representatives with weights."""
    signatures = interval_signatures(trace, interval_length)
    n_intervals = len(signatures)
    k = min(max_points, n_intervals)
    rng = np.random.default_rng(seed)

    # k-means++ seeding, then Lloyd iterations.
    centers = [signatures[int(rng.integers(0, n_intervals))]]
    while len(centers) < k:
        d2 = np.min([np.sum((signatures - c) ** 2, axis=1) for c in centers], axis=0)
        total = d2.sum()
        if total <= 0:
            centers.append(signatures[int(rng.integers(0, n_intervals))])
            continue
        centers.append(signatures[int(rng.choice(n_intervals, p=d2 / total))])
    centers_arr = np.array(centers)

    labels = np.zeros(n_intervals, dtype=int)
    for _ in range(50):
        dists = np.linalg.norm(
            signatures[:, None, :] - centers_arr[None, :, :], axis=2
        )
        new_labels = dists.argmin(axis=1)
        if (new_labels == labels).all() and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = signatures[labels == c]
            if len(members):
                centers_arr[c] = members.mean(axis=0)

    points = []
    for c in range(k):
        member_idx = np.flatnonzero(labels == c)
        if len(member_idx) == 0:
            continue
        # The trace's first interval carries unwarmable startup state
        # (cold caches with no preceding instructions to warm them), so
        # it only represents a cluster when it is the sole member.
        candidates = member_idx[member_idx != 0]
        if len(candidates) == 0:
            candidates = member_idx
        dists = np.linalg.norm(signatures[candidates] - centers_arr[c], axis=1)
        medoid = int(candidates[int(np.argmin(dists))])
        points.append(
            SimPoint(
                interval=medoid,
                start=medoid * interval_length,
                stop=(medoid + 1) * interval_length,
                weight=len(member_idx) / n_intervals,
            )
        )
    points.sort(key=lambda p: p.interval)
    return points


def evaluate_simpoints(
    config,
    trace: Trace,
    points: Sequence[SimPoint],
    warmup: int | None = None,
):
    """Weighted cycle-level evaluation over representative intervals.

    Each interval is preceded by up to ``warmup`` instructions (default:
    one interval length) that execute but are excluded from the timing
    statistics, removing the cold-cache/cold-predictor bias.  Returns a
    :class:`~repro.sim.metrics.SimResult` whose cycle count is the
    weight-extrapolated full-trace estimate.
    """
    from ..sim.cycle import CycleSimulator
    from ..sim.metrics import SimResult

    if not points:
        raise WorkloadError("need at least one SimPoint")
    total_weight = sum(p.weight for p in points)
    if not 0.99 <= total_weight <= 1.01:
        raise WorkloadError(f"SimPoint weights sum to {total_weight}, expected ~1")

    sim = CycleSimulator(config)
    weighted_cpi = 0.0
    details = {}
    for p in points:
        span = warmup if warmup is not None else (p.stop - p.start)
        lead = min(span, p.start)
        result = sim.run(trace.slice(p.start - lead, p.stop), measure_from=lead)
        weighted_cpi += p.weight * result.cpi
        details[f"interval_{p.interval}"] = result.ipc
    cycles = weighted_cpi * len(trace)
    return SimResult(
        workload=trace.name,
        instructions=len(trace),
        cycles=max(1.0, cycles),
        clock_period_ns=config.clock_period_ns,
        detail={"simpoints": len(points), **details},
    )
