"""Microarchitecture-independent workload characteristics.

This is the *raw characterization* side of the paper's argument — the
axes of Figure 1's Kiviat graphs:

  A) working-set size,
  B) branch predictability,
  C) density of dependence chains,
  D) frequency of loads,
  E) frequency of conditional branches.

Characteristics can be derived analytically from a
:class:`~repro.workloads.profile.WorkloadProfile` or measured from a
generated :class:`~repro.workloads.trace.Trace` (the measurement path
exercises the real predictor/cache substrates).  The classic workload-
subsetting methodology the paper critiques computes Euclidean distances
over (normalized) vectors of exactly these numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

import numpy as np

from ..errors import WorkloadError
from .profile import WorkloadProfile
from .trace import Op, Trace


@dataclass(frozen=True)
class Characteristics:
    """A raw (microarchitecture-independent) characterization vector."""

    working_set_log2_bytes: float
    branch_predictability: float
    dependence_density: float
    load_frequency: float
    branch_frequency: float
    store_frequency: float
    spatial_locality: float
    ilp_limit: float

    def as_vector(self) -> np.ndarray:
        """The characteristics as a float vector (field order)."""
        return np.array([getattr(self, f.name) for f in fields(self)], dtype=float)

    @staticmethod
    def field_names() -> list[str]:
        return [f.name for f in fields(Characteristics)]


def profile_characteristics(profile: WorkloadProfile) -> Characteristics:
    """Derive the raw characterization analytically from a profile."""
    return Characteristics(
        working_set_log2_bytes=math.log2(profile.memory.footprint_bytes),
        branch_predictability=1.0 - profile.branch.misp_rate,
        dependence_density=profile.dependence_density,
        load_frequency=profile.mix.load,
        branch_frequency=profile.mix.branch,
        store_frequency=profile.mix.store,
        spatial_locality=profile.memory.spatial_locality,
        ilp_limit=profile.ilp_limit,
    )


def trace_characteristics(trace: Trace, ilp_window: int = 256) -> Characteristics:
    """Measure the raw characterization from a concrete trace.

    Working set counts unique 64-byte blocks touched; branch
    predictability is the accuracy of an unbounded per-PC bimodal
    predictor; dependence density is the fraction of instructions whose
    first operand comes from the immediately preceding instruction; the
    ILP limit is estimated by greedy dataflow scheduling inside windows of
    ``ilp_window`` instructions.
    """
    n = len(trace)
    loads = trace.op_fraction(Op.LOAD)
    stores = trace.op_fraction(Op.STORE)
    branches = trace.op_fraction(Op.BRANCH)

    mem_mask = (trace.ops == int(Op.LOAD)) | (trace.ops == int(Op.STORE))
    blocks = np.unique(trace.addrs[mem_mask] >> np.uint64(6))
    working_set = max(64, int(len(blocks)) * 64)

    predictability = _bimodal_accuracy(trace)
    density = float(np.count_nonzero(trace.src1_dist == 1) / n)
    spatial = _spatial_locality(trace, mem_mask)
    ilp = _dataflow_ilp(trace, ilp_window)

    return Characteristics(
        working_set_log2_bytes=math.log2(working_set),
        branch_predictability=predictability,
        dependence_density=density,
        load_frequency=loads,
        branch_frequency=branches,
        store_frequency=stores,
        spatial_locality=spatial,
        ilp_limit=ilp,
    )


def _bimodal_accuracy(trace: Trace) -> float:
    """Accuracy of an unbounded 2-bit bimodal predictor over the trace."""
    branch_idx = np.flatnonzero(trace.ops == int(Op.BRANCH))
    if len(branch_idx) == 0:
        return 1.0
    counters: dict[int, int] = {}
    correct = 0
    for i in branch_idx:
        pc = int(trace.pcs[i])
        outcome = bool(trace.taken[i])
        state = counters.get(pc, 2)  # weakly taken
        predicted = state >= 2
        if predicted == outcome:
            correct += 1
        state = min(3, state + 1) if outcome else max(0, state - 1)
        counters[pc] = state
    return correct / len(branch_idx)


def _spatial_locality(trace: Trace, mem_mask: np.ndarray) -> float:
    """Fraction of memory accesses within 64 B of the previous access."""
    addrs = trace.addrs[mem_mask].astype(np.int64)
    if len(addrs) < 2:
        return 0.0
    deltas = np.abs(np.diff(addrs))
    return float(np.count_nonzero(deltas <= 64) / len(deltas))


def _dataflow_ilp(trace: Trace, window: int) -> float:
    """Greedy dataflow-schedule ILP within fixed windows (unit latencies)."""
    if window < 1:
        raise WorkloadError(f"ilp window must be positive, got {window}")
    n = len(trace)
    total_depth = 0
    start = 0
    while start < n:
        stop = min(n, start + window)
        depth = np.zeros(stop - start, dtype=np.int64)
        s1 = trace.src1_dist[start:stop]
        s2 = trace.src2_dist[start:stop]
        for i in range(stop - start):
            d = 0
            if 0 < s1[i] <= i:
                d = depth[i - s1[i]]
            if 0 < s2[i] <= i:
                d = max(d, depth[i - s2[i]])
            depth[i] = d + 1
        total_depth += int(depth.max())
        start = stop
    return n / max(1, total_depth)


def normalize_matrix(vectors: np.ndarray) -> np.ndarray:
    """Normalize characteristic columns to the paper's 0-10 Kiviat scale.

    Each column is min-max scaled across the workload population; a
    constant column maps to 5.
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2:
        raise WorkloadError("expected a 2-D matrix of characteristic vectors")
    lo = vectors.min(axis=0)
    hi = vectors.max(axis=0)
    span = hi - lo
    out = np.full_like(vectors, 5.0)
    nonzero = span > 1e-12
    out[:, nonzero] = 10.0 * (vectors[:, nonzero] - lo[nonzero]) / span[nonzero]
    return out


def euclidean_distance_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between (normalized) vectors."""
    vectors = np.asarray(vectors, dtype=float)
    diff = vectors[:, None, :] - vectors[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))
