"""Instruction-trace containers.

The cycle-level simulator (:mod:`repro.sim.cycle`) is trace driven, the
way the paper's SimPoint methodology feeds 100M-instruction slices to
sim-mase.  A :class:`Trace` is a struct-of-arrays over numpy for compact
storage and fast iteration; :class:`Instruction` is the per-row view used
where readability matters more than speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..errors import WorkloadError


class Op(IntEnum):
    """Instruction classes distinguished by the timing models."""

    ALU = 0
    MUL = 1
    LOAD = 2
    STORE = 3
    BRANCH = 4


#: Execution latency in cycles of each op class (L1 hit latency is added
#: separately for loads by the simulator).
OP_LATENCY = {Op.ALU: 1, Op.MUL: 3, Op.LOAD: 0, Op.STORE: 1, Op.BRANCH: 1}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction (row view over a :class:`Trace`)."""

    index: int
    op: Op
    src1_dist: int
    src2_dist: int
    addr: int
    taken: bool
    pc: int

    @property
    def is_memory(self) -> bool:
        return self.op in (Op.LOAD, Op.STORE)


class Trace:
    """A dynamic instruction stream in struct-of-arrays form.

    Attributes
    ----------
    ops:
        ``uint8`` array of :class:`Op` values.
    src1_dist / src2_dist:
        Distance (in dynamic instructions) back to the producer of each
        source operand; 0 means the operand is ready at dispatch.
    addrs:
        Byte addresses for memory operations (0 elsewhere).
    taken:
        Branch outcomes (False for non-branches).
    pcs:
        Static instruction addresses; branches with the same PC share
        predictor state.
    """

    def __init__(
        self,
        ops: np.ndarray,
        src1_dist: np.ndarray,
        src2_dist: np.ndarray,
        addrs: np.ndarray,
        taken: np.ndarray,
        pcs: np.ndarray,
        name: str = "trace",
    ) -> None:
        n = len(ops)
        for label, arr in (
            ("src1_dist", src1_dist),
            ("src2_dist", src2_dist),
            ("addrs", addrs),
            ("taken", taken),
            ("pcs", pcs),
        ):
            if len(arr) != n:
                raise WorkloadError(
                    f"trace column {label} has length {len(arr)}, expected {n}"
                )
        if n == 0:
            raise WorkloadError("trace must contain at least one instruction")
        if (src1_dist < 0).any() or (src2_dist < 0).any():
            raise WorkloadError("dependence distances cannot be negative")
        self.ops = np.asarray(ops, dtype=np.uint8)
        self.src1_dist = np.asarray(src1_dist, dtype=np.int32)
        self.src2_dist = np.asarray(src2_dist, dtype=np.int32)
        self.addrs = np.asarray(addrs, dtype=np.uint64)
        self.taken = np.asarray(taken, dtype=bool)
        self.pcs = np.asarray(pcs, dtype=np.uint64)
        self.name = name

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, index: int) -> Instruction:
        if not 0 <= index < len(self):
            raise IndexError(f"trace index {index} out of range [0, {len(self)})")
        return Instruction(
            index=index,
            op=Op(int(self.ops[index])),
            src1_dist=int(self.src1_dist[index]),
            src2_dist=int(self.src2_dist[index]),
            addr=int(self.addrs[index]),
            taken=bool(self.taken[index]),
            pc=int(self.pcs[index]),
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def op_fraction(self, op: Op) -> float:
        """Fraction of instructions of the given class."""
        return float(np.count_nonzero(self.ops == int(op)) / len(self))

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace over ``[start, stop)`` (dependences are clipped)."""
        if not 0 <= start < stop <= len(self):
            raise WorkloadError(f"invalid slice [{start}, {stop}) of {len(self)}")
        sl = np.s_[start:stop]
        # Clip dependence distances that reach before the slice boundary.
        idx = np.arange(stop - start)
        s1 = np.where(self.src1_dist[sl] > idx, 0, self.src1_dist[sl])
        s2 = np.where(self.src2_dist[sl] > idx, 0, self.src2_dist[sl])
        return Trace(
            ops=self.ops[sl].copy(),
            src1_dist=s1.astype(np.int32),
            src2_dist=s2.astype(np.int32),
            addrs=self.addrs[sl].copy(),
            taken=self.taken[sl].copy(),
            pcs=self.pcs[sl].copy(),
            name=f"{self.name}[{start}:{stop}]",
        )


def concat_traces(traces: list["Trace"], name: str = "phased") -> "Trace":
    """Concatenate traces into one phased stream.

    Dependences are kept as-is (distances at a phase boundary reach into
    the previous phase, which is physically meaningful for a continuing
    program).  Used to build multi-phase workloads for the SimPoint
    machinery.
    """
    if not traces:
        raise WorkloadError("need at least one trace to concatenate")
    return Trace(
        ops=np.concatenate([t.ops for t in traces]),
        src1_dist=np.concatenate([t.src1_dist for t in traces]),
        src2_dist=np.concatenate([t.src2_dist for t in traces]),
        addrs=np.concatenate([t.addrs for t in traces]),
        taken=np.concatenate([t.taken for t in traces]),
        pcs=np.concatenate([t.pcs for t in traces]),
        name=name,
    )
