"""Workload modelling substrate.

Statistical workload profiles (the SPEC2000 C-int substitutes), synthetic
trace generation, microarchitecture-independent characterization, and the
Figure 1 Kiviat machinery.
"""

from .characteristics import (
    Characteristics,
    euclidean_distance_matrix,
    normalize_matrix,
    profile_characteristics,
    trace_characteristics,
)
from .generator import generate_trace
from .kiviat import (
    FIGURE1_AXES,
    KiviatGraph,
    figure1_profiles,
    kiviat_distance_matrix,
    kiviat_graphs,
)
from .profile import (
    BranchModel,
    InstructionMix,
    MemoryModel,
    WorkingSetComponent,
    WorkloadProfile,
)
from .simpoint import (
    SimPoint,
    evaluate_simpoints,
    interval_signatures,
    pick_simpoints,
)
from .spec2000 import SPEC2000_INT_NAMES, spec2000_profile, spec2000_profiles
from .synthetic import blended, branchy, compute_kernel, pointer_chasing, streaming
from .trace import Instruction, Op, OP_LATENCY, Trace, concat_traces

__all__ = [
    "Characteristics",
    "euclidean_distance_matrix",
    "normalize_matrix",
    "profile_characteristics",
    "trace_characteristics",
    "generate_trace",
    "FIGURE1_AXES",
    "KiviatGraph",
    "figure1_profiles",
    "kiviat_distance_matrix",
    "kiviat_graphs",
    "BranchModel",
    "InstructionMix",
    "MemoryModel",
    "WorkingSetComponent",
    "WorkloadProfile",
    "SimPoint",
    "evaluate_simpoints",
    "interval_signatures",
    "pick_simpoints",
    "SPEC2000_INT_NAMES",
    "spec2000_profile",
    "spec2000_profiles",
    "blended",
    "branchy",
    "compute_kernel",
    "pointer_chasing",
    "streaming",
    "Instruction",
    "Op",
    "OP_LATENCY",
    "Trace",
    "concat_traces",
]
