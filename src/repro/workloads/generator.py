"""Synthetic trace generation from workload profiles.

A :class:`WorkloadProfile` is a statistical model; :func:`generate_trace`
realizes it as a concrete instruction stream the cycle-level simulator can
execute:

* op classes are drawn from the profile's instruction mix;
* dependence distances are drawn so that back-to-back chains occur with
  the profile's ``dependence_density`` and the average exposed ILP matches
  the profile's ILP curve;
* memory addresses are drawn from the working-set components, walking
  regions sequentially with probability ``spatial_locality`` and jumping
  randomly otherwise, so real cache simulations reproduce the analytical
  miss curve's structure;
* branch outcomes come from a population of static branches whose
  per-branch bias matches the profile, so real predictors achieve
  accuracies consistent with the profile's misprediction rate.

Everything is driven by a seeded :class:`numpy.random.Generator`, so a
(profile, length, seed) triple is fully reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .profile import WorkloadProfile
from .trace import Op, Trace

_STATIC_BRANCHES = 64
_WORD_BYTES = 8


def generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
) -> Trace:
    """Generate a synthetic dynamic instruction stream.

    Parameters
    ----------
    profile:
        The statistical workload model to realize.
    length:
        Number of dynamic instructions (the paper's evaluations use 10M-
        to 100M-instruction SimPoints; tests use far shorter streams).
    seed:
        RNG seed; identical inputs produce identical traces.
    """
    if length < 1:
        raise WorkloadError(f"trace length must be positive, got {length}")
    rng = np.random.default_rng(seed)
    mix = profile.mix

    ops = rng.choice(
        np.array(
            [int(Op.LOAD), int(Op.STORE), int(Op.BRANCH), int(Op.ALU), int(Op.MUL)],
            dtype=np.uint8,
        ),
        size=length,
        p=[mix.load, mix.store, mix.branch, mix.int_alu, mix.mul],
    )

    src1, src2 = _dependences(profile, length, rng)
    addrs = _addresses(profile, ops, rng)
    taken, pcs = _branches(profile, ops, rng)

    return Trace(
        ops=ops,
        src1_dist=src1,
        src2_dist=src2,
        addrs=addrs,
        taken=taken,
        pcs=pcs,
        name=profile.name,
    )


def _dependences(
    profile: WorkloadProfile, length: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample source-operand dependence distances.

    With probability ``dependence_density`` an instruction consumes the
    immediately preceding result (distance 1); otherwise the distance is
    geometric with a mean tied to the profile's ILP half-window, which
    makes the exposed parallelism grow with window size the way the
    analytical ILP curve does.
    """
    # Mean distance of the diffuse (non-chained) dependences.  With
    # geometric distances of mean d, greedy dataflow scheduling exposes
    # roughly d-wide parallelism, so the mean tracks the profile's ILP
    # limit (chained instructions pull the realized ILP back down).
    mean_far = max(2.0, 2.0 * profile.ilp_limit)
    p_far = min(0.999, 1.0 / mean_far)

    chained = rng.random(length) < profile.dependence_density
    far = rng.geometric(p_far, size=length).astype(np.int64) + 1
    dist1 = np.where(chained, 1, far)
    dist1 = np.minimum(dist1, np.arange(length, dtype=np.int64))

    # Second operand: present for roughly half the instructions, always a
    # diffuse dependence.
    has2 = rng.random(length) < 0.5
    far2 = rng.geometric(p_far, size=length).astype(np.int64) + 1
    dist2 = np.where(has2, far2, 0)
    dist2 = np.minimum(dist2, np.arange(length, dtype=np.int64))

    return dist1.astype(np.int32), dist2.astype(np.int32)


def _addresses(
    profile: WorkloadProfile, ops: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample memory addresses from the working-set components."""
    length = len(ops)
    addrs = np.zeros(length, dtype=np.uint64)
    mem_mask = (ops == int(Op.LOAD)) | (ops == int(Op.STORE))
    n_mem = int(np.count_nonzero(mem_mask))
    if n_mem == 0:
        return addrs

    comps = profile.memory.components
    fractions = np.array([c.fraction for c in comps], dtype=float)
    leftover = max(0.0, 1.0 - fractions.sum())
    # Accesses not covered by a component re-touch the smallest (hottest)
    # region.
    fractions[int(np.argmin([c.size_bytes for c in comps]))] += leftover
    fractions /= fractions.sum()

    # Region base addresses are spaced far apart so regions never alias.
    bases = np.cumsum([0] + [c.size_bytes for c in comps[:-1]], dtype=np.uint64)
    bases = bases + np.uint64(1) << np.uint64(32)

    which = rng.choice(len(comps), size=n_mem, p=fractions)
    seq = rng.random(n_mem) < profile.memory.spatial_locality

    mem_addrs = np.zeros(n_mem, dtype=np.uint64)
    cursors = np.array(
        [rng.integers(0, max(1, c.size_bytes // _WORD_BYTES)) for c in comps],
        dtype=np.int64,
    )
    sizes = np.array([c.size_bytes for c in comps], dtype=np.int64)
    jumps = rng.integers(0, 1 << 62, size=n_mem)
    for i in range(n_mem):
        c = which[i]
        words = sizes[c] // _WORD_BYTES
        if seq[i]:
            cursors[c] = (cursors[c] + 1) % words
        else:
            cursors[c] = jumps[i] % words
        mem_addrs[i] = np.uint64(int(bases[c]) + int(cursors[c]) * _WORD_BYTES)

    addrs[mem_mask] = mem_addrs
    return addrs


def _branches(
    profile: WorkloadProfile, ops: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample branch PCs and outcomes from a static-branch population.

    Each static branch gets a fixed taken-probability drawn around the
    profile's bias, so simple history predictors (bimodal) achieve
    accuracy close to the average bias while the taken rate matches the
    profile.
    """
    length = len(ops)
    taken = np.zeros(length, dtype=bool)
    pcs = np.arange(length, dtype=np.uint64) * np.uint64(4)
    branch_mask = ops == int(Op.BRANCH)
    n_br = int(np.count_nonzero(branch_mask))
    if n_br == 0:
        return taken, pcs

    # Per-static-branch bias: each branch goes its majority way with
    # probability `bias`; majority direction is taken with `taken_rate`.
    majority_taken = rng.random(_STATIC_BRANCHES) < profile.branch.taken_rate
    p_taken = np.where(
        majority_taken, profile.branch.bias, 1.0 - profile.branch.bias
    )

    which = rng.integers(0, _STATIC_BRANCHES, size=n_br)
    outcomes = rng.random(n_br) < p_taken[which]
    taken[branch_mask] = outcomes
    # Branch PCs identify static branches (offset into a separate region).
    pcs[branch_mask] = (np.uint64(1) << np.uint64(40)) + which.astype(
        np.uint64
    ) * np.uint64(4)
    return taken, pcs
