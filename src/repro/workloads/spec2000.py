"""Calibrated statistical profiles of the SPEC2000 C integer benchmarks.

The paper explores the 11 C-language integer benchmarks from SPEC2000
compiled for PISA.  Each profile below is calibrated against published
characterizations of those benchmarks (instruction mixes, working sets,
branch behaviour) and against the *structure* of the paper's Table 4 — the
point of the reproduction is that the qualitative customization results
emerge from the models:

* **mcf** is the memory-bound outlier: a huge, poorly-local working set
  and pointer-chasing loads.  Its customized core should have the largest
  window and large caches, and it should suffer the worst cross-
  configuration slowdowns.
* **crafty** and **perlbmk** are control-dense with small working sets and
  predictable branches; their customized cores chase clock frequency with
  deep pipelines and small, fast caches.
* **bzip2** and **gzip** have deliberately *similar raw characteristics*
  (both compressors: near-identical mixes and branch behaviour) but
  diverge in working-set size and dependence density — the pair the paper
  uses to show that subsetting misleads communal customization (§5.3).
* **twolf** and **vpr** are the genuinely-similar place-and-route pair
  that surrogate each other in Figures 7/8.

Profiles are returned by :func:`spec2000_profiles` in the paper's ordering
(alphabetical: bzip, crafty, gap, gcc, gzip, mcf, parser, perl, twolf,
vortex, vpr).
"""

from __future__ import annotations

from ..units import KB, MB
from .profile import (
    BranchModel,
    InstructionMix,
    MemoryModel,
    WorkingSetComponent,
    WorkloadProfile,
)

#: Paper ordering of the SPEC2000 C integer benchmarks.
SPEC2000_INT_NAMES = (
    "bzip",
    "crafty",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perl",
    "twolf",
    "vortex",
    "vpr",
)


def _ws(*parts: tuple[float, int]) -> tuple[WorkingSetComponent, ...]:
    return tuple(WorkingSetComponent(fraction=f, size_bytes=s) for f, s in parts)


def bzip_profile() -> WorkloadProfile:
    """bzip2: block-sorting compressor — high ILP, dense dependence chains,
    medium-large working set (the sort blocks)."""
    return WorkloadProfile(
        name="bzip",
        mix=InstructionMix(load=0.26, store=0.09, branch=0.11, int_alu=0.52, mul=0.02),
        ilp_limit=5.5,
        ilp_window_half=160.0,
        dependence_density=0.62,
        load_use_fraction=0.5,
        branch=BranchModel(misp_rate=0.055, taken_rate=0.58, bias=0.88),
        memory=MemoryModel(
            components=_ws((0.92, 8 * KB), (0.045, 256 * KB), (0.035, 3 * MB)),
            spatial_locality=0.70,
            conflict_pressure=0.25,
            compulsory=0.0004,
            mlp=6.0,
            mlp_window_half=250.0,
        ),
    )


def crafty_profile() -> WorkloadProfile:
    """crafty: chess engine — control-dense, highly predictable, small
    working set, high ILP reachable with a small window."""
    return WorkloadProfile(
        name="crafty",
        mix=InstructionMix(load=0.30, store=0.08, branch=0.11, int_alu=0.49, mul=0.02),
        ilp_limit=6.5,
        ilp_window_half=48.0,
        dependence_density=0.32,
        load_use_fraction=0.38,
        branch=BranchModel(misp_rate=0.040, taken_rate=0.55, bias=0.92),
        memory=MemoryModel(
            components=_ws((0.94, 16 * KB), (0.055, 112 * KB), (0.005, 512 * KB)),
            spatial_locality=0.40,
            conflict_pressure=0.35,
            compulsory=0.0003,
            mlp=3.0,
            mlp_window_half=100.0,
        ),
    )


def gap_profile() -> WorkloadProfile:
    """gap: group-theory interpreter — small hot working set, moderate ILP."""
    return WorkloadProfile(
        name="gap",
        mix=InstructionMix(load=0.24, store=0.08, branch=0.14, int_alu=0.52, mul=0.02),
        ilp_limit=4.5,
        ilp_window_half=80.0,
        dependence_density=0.45,
        load_use_fraction=0.45,
        branch=BranchModel(misp_rate=0.045, taken_rate=0.60, bias=0.90),
        memory=MemoryModel(
            components=_ws((0.95, 8 * KB), (0.045, 64 * KB), (0.005, 512 * KB)),
            spatial_locality=0.60,
            conflict_pressure=0.30,
            compulsory=0.0004,
            mlp=4.0,
            mlp_window_half=120.0,
        ),
    )


def gcc_profile() -> WorkloadProfile:
    """gcc: compiler — the most 'average' benchmark; its customized core is
    the paper's best single-core configuration."""
    return WorkloadProfile(
        name="gcc",
        mix=InstructionMix(load=0.25, store=0.11, branch=0.16, int_alu=0.46, mul=0.02),
        ilp_limit=4.0,
        ilp_window_half=110.0,
        dependence_density=0.5,
        load_use_fraction=0.45,
        branch=BranchModel(misp_rate=0.065, taken_rate=0.57, bias=0.86),
        memory=MemoryModel(
            components=_ws((0.89, 16 * KB), (0.075, 256 * KB), (0.035, 2 * MB)),
            spatial_locality=0.50,
            conflict_pressure=0.30,
            compulsory=0.0008,
            mlp=4.0,
            mlp_window_half=200.0,
        ),
    )


def gzip_profile() -> WorkloadProfile:
    """gzip: LZ77 compressor — raw characteristics close to bzip (same
    domain, similar mix and branches) but a small working set and sparser
    dependence chains, so its customized core diverges from bzip's."""
    return WorkloadProfile(
        name="gzip",
        mix=InstructionMix(load=0.26, store=0.10, branch=0.12, int_alu=0.50, mul=0.02),
        ilp_limit=5.0,
        ilp_window_half=56.0,
        dependence_density=0.44,
        load_use_fraction=0.45,
        branch=BranchModel(misp_rate=0.050, taken_rate=0.58, bias=0.89),
        memory=MemoryModel(
            components=_ws((0.95, 8 * KB), (0.045, 64 * KB), (0.005, 1 * MB)),
            spatial_locality=0.70,
            conflict_pressure=0.25,
            compulsory=0.0004,
            mlp=4.0,
            mlp_window_half=120.0,
        ),
    )


def mcf_profile() -> WorkloadProfile:
    """mcf: network-simplex optimizer — the memory-bound outlier: huge
    working set, pointer chasing, frequent dependent loads."""
    return WorkloadProfile(
        name="mcf",
        mix=InstructionMix(load=0.31, store=0.09, branch=0.19, int_alu=0.40, mul=0.01),
        ilp_limit=2.8,
        ilp_window_half=400.0,
        dependence_density=0.55,
        load_use_fraction=0.65,
        branch=BranchModel(misp_rate=0.090, taken_rate=0.50, bias=0.78),
        memory=MemoryModel(
            components=_ws((0.60, 16 * KB), (0.15, 1 * MB), (0.25, 48 * MB)),
            spatial_locality=0.15,
            conflict_pressure=0.20,
            compulsory=0.0010,
            mlp=6.0,
            mlp_window_half=1200.0,
        ),
    )


def parser_profile() -> WorkloadProfile:
    """parser: NL link-grammar parser — dictionary walks over a sizeable
    footprint with mediocre branch behaviour."""
    return WorkloadProfile(
        name="parser",
        mix=InstructionMix(load=0.26, store=0.10, branch=0.15, int_alu=0.47, mul=0.02),
        ilp_limit=3.6,
        ilp_window_half=140.0,
        dependence_density=0.40,
        load_use_fraction=0.42,
        branch=BranchModel(misp_rate=0.070, taken_rate=0.55, bias=0.84),
        memory=MemoryModel(
            components=_ws((0.89, 12 * KB), (0.085, 144 * KB), (0.025, 4 * MB)),
            spatial_locality=0.40,
            conflict_pressure=0.30,
            compulsory=0.0008,
            mlp=3.0,
            mlp_window_half=300.0,
        ),
    )


def perl_profile() -> WorkloadProfile:
    """perlbmk: interpreter — like crafty: hot loops over a small working
    set with predictable control flow; chases clock frequency."""
    return WorkloadProfile(
        name="perl",
        mix=InstructionMix(load=0.28, store=0.12, branch=0.14, int_alu=0.44, mul=0.02),
        ilp_limit=5.5,
        ilp_window_half=64.0,
        dependence_density=0.36,
        load_use_fraction=0.42,
        branch=BranchModel(misp_rate=0.045, taken_rate=0.56, bias=0.91),
        memory=MemoryModel(
            components=_ws((0.95, 8 * KB), (0.045, 96 * KB), (0.005, 384 * KB)),
            spatial_locality=0.50,
            conflict_pressure=0.35,
            compulsory=0.0004,
            mlp=3.0,
            mlp_window_half=100.0,
        ),
    )


def twolf_profile() -> WorkloadProfile:
    """twolf: standard-cell placement — latency-sensitive pointer code over
    a medium working set; forms a genuine configuration pair with vpr."""
    return WorkloadProfile(
        name="twolf",
        mix=InstructionMix(load=0.28, store=0.07, branch=0.14, int_alu=0.49, mul=0.02),
        ilp_limit=3.2,
        ilp_window_half=190.0,
        dependence_density=0.56,
        load_use_fraction=0.58,
        branch=BranchModel(misp_rate=0.080, taken_rate=0.53, bias=0.80),
        memory=MemoryModel(
            components=_ws((0.84, 16 * KB), (0.105, 384 * KB), (0.055, 2560 * KB)),
            spatial_locality=0.30,
            conflict_pressure=0.35,
            compulsory=0.0006,
            mlp=3.0,
            mlp_window_half=350.0,
        ),
    )


def vortex_profile() -> WorkloadProfile:
    """vortex: object database — ILP-rich, very predictable branches, large
    but well-structured working set; customized to a wide core."""
    return WorkloadProfile(
        name="vortex",
        mix=InstructionMix(load=0.29, store=0.15, branch=0.14, int_alu=0.41, mul=0.01),
        ilp_limit=6.0,
        ilp_window_half=100.0,
        dependence_density=0.34,
        load_use_fraction=0.4,
        branch=BranchModel(misp_rate=0.035, taken_rate=0.57, bias=0.93),
        memory=MemoryModel(
            components=_ws((0.88, 24 * KB), (0.09, 768 * KB), (0.03, 4 * MB)),
            spatial_locality=0.60,
            conflict_pressure=0.25,
            compulsory=0.0006,
            mlp=5.0,
            mlp_window_half=200.0,
        ),
    )


def vpr_profile() -> WorkloadProfile:
    """vpr: FPGA place-and-route — twolf's sibling: similar mix, similar
    latency sensitivity, similar working set."""
    return WorkloadProfile(
        name="vpr",
        mix=InstructionMix(load=0.28, store=0.09, branch=0.13, int_alu=0.48, mul=0.02),
        ilp_limit=3.4,
        ilp_window_half=170.0,
        dependence_density=0.55,
        load_use_fraction=0.56,
        branch=BranchModel(misp_rate=0.075, taken_rate=0.54, bias=0.81),
        memory=MemoryModel(
            components=_ws((0.85, 16 * KB), (0.10, 320 * KB), (0.05, 2 * MB)),
            spatial_locality=0.30,
            conflict_pressure=0.35,
            compulsory=0.0006,
            mlp=3.0,
            mlp_window_half=350.0,
        ),
    )


_FACTORIES = {
    "bzip": bzip_profile,
    "crafty": crafty_profile,
    "gap": gap_profile,
    "gcc": gcc_profile,
    "gzip": gzip_profile,
    "mcf": mcf_profile,
    "parser": parser_profile,
    "perl": perl_profile,
    "twolf": twolf_profile,
    "vortex": vortex_profile,
    "vpr": vpr_profile,
}


def spec2000_profile(name: str) -> WorkloadProfile:
    """Return the calibrated profile of one SPEC2000 C integer benchmark."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC2000 benchmark {name!r}; "
            f"known: {', '.join(SPEC2000_INT_NAMES)}"
        ) from None
    return factory()


def spec2000_profiles() -> list[WorkloadProfile]:
    """All 11 profiles in the paper's (alphabetical) order."""
    return [spec2000_profile(name) for name in SPEC2000_INT_NAMES]
