"""Configurational characterization — the paper's central artifact.

A workload's *configurational characteristics* are simply the parameters
of its customized (close-to-optimal) configuration (§1.2).  This module
produces the reproduction's Table 4: one customized configuration per
workload, obtained from the xp-scalar exploration, plus vector encodings
of configurations used by the clustering baselines (Lee & Brooks-style
K-means operates on exactly these vectors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import CommunalError
from ..explore.xpscalar import ExplorationResult, XpScalar
from ..uarch.config import CoreConfig
from ..workloads.profile import WorkloadProfile

#: Fields of the configuration vector, in Table 4's row order.
CONFIG_VECTOR_FIELDS = (
    "log2_memory_cycles",
    "frontend_stages",
    "width",
    "log2_rob",
    "log2_iq",
    "wakeup_latency",
    "scheduler_depth",
    "clock_period_ns",
    "log2_l1_capacity",
    "l1_latency",
    "log2_l2_capacity",
    "l2_latency",
    "log2_lsq",
)


@dataclass(frozen=True)
class ConfigurationalCharacteristics:
    """One workload's customized configuration plus its achieved score."""

    workload: str
    config: CoreConfig
    ipt: float

    def as_vector(self) -> np.ndarray:
        """Numeric encoding of the configuration (log-scaled sizes).

        Sizes are log2-scaled so that e.g. ROB 64 vs 128 and 512 vs 1024
        are equally 'far apart', matching how architects perceive the
        design space.  This vector is what the Lee & Brooks-style K-means
        baseline clusters.
        """
        c = self.config
        return np.array(
            [
                math.log2(c.memory_cycles),
                float(c.frontend_stages),
                float(c.width),
                math.log2(c.rob_size),
                math.log2(c.iq_size),
                float(c.wakeup_latency),
                float(c.scheduler_depth),
                c.clock_period_ns,
                math.log2(c.l1.capacity_bytes),
                float(c.l1.latency_cycles),
                math.log2(c.l2.capacity_bytes),
                float(c.l2.latency_cycles),
                math.log2(c.lsq_size),
            ],
            dtype=float,
        )


def characterize_workloads(
    explorer: XpScalar,
    profiles: Sequence[WorkloadProfile],
    seed: int = 0,
    cross_seed_rounds: int = 2,
) -> dict[str, ConfigurationalCharacteristics]:
    """Run the full configurational characterization (Table 4).

    Explores a customized configuration for every profile (with the
    paper's cross-seeding refinement) and packages the results.
    """
    results = explorer.customize_all(
        profiles, seed=seed, cross_seed_rounds=cross_seed_rounds
    )
    return {
        name: ConfigurationalCharacteristics(
            workload=name, config=res.config, ipt=res.score
        )
        for name, res in results.items()
    }


def from_results(
    results: Mapping[str, ExplorationResult],
) -> dict[str, ConfigurationalCharacteristics]:
    """Package raw exploration results as configurational characteristics."""
    return {
        name: ConfigurationalCharacteristics(
            workload=name, config=res.config, ipt=res.score
        )
        for name, res in results.items()
    }


def config_distance_matrix(
    characteristics: Mapping[str, ConfigurationalCharacteristics],
    names: Sequence[str],
) -> np.ndarray:
    """Pairwise Euclidean distances between normalized config vectors.

    Columns are min-max normalized across the population first — the
    paper (§2.2) notes that such normalization choices are exactly what
    makes clustering on configuration vectors ad hoc, which is why its
    own method works on cross-configuration *performance* instead.  The
    matrix is still useful for the Lee & Brooks comparison baseline.
    """
    if not names:
        raise CommunalError("need at least one workload name")
    vectors = np.array([characteristics[n].as_vector() for n in names])
    lo, hi = vectors.min(axis=0), vectors.max(axis=0)
    span = np.where(hi - lo > 1e-12, hi - lo, 1.0)
    normalized = (vectors - lo) / span
    diff = normalized[:, None, :] - normalized[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))
