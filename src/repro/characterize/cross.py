"""Cross-configuration performance — Table 5 and Appendix A.

Once every workload has a customized configuration, every workload is
evaluated on every *other* workload's configuration.  The resulting
matrix is the data substrate of the whole communal-customization study:

* Table 5 is the raw IPT matrix (rows = workloads, columns = whose
  customized configuration);
* Appendix A is the percentage-slowdown form
  (``1 - IPT_on_other / IPT_on_own``);
* every figure of merit, core-combination search and surrogate graph in
  :mod:`repro.communal` consumes a :class:`CrossPerformance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import CommunalError
from ..explore.xpscalar import XpScalar, apply_objective
from ..uarch.config import CoreConfig
from ..workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class CrossPerformance:
    """The cross-configuration IPT matrix for one workload population.

    ``ipt[i, j]`` is workload ``names[i]`` executed on the customized
    configuration of ``names[j]`` (Table 5's layout).
    """

    names: tuple[str, ...]
    ipt: np.ndarray
    configs: tuple[CoreConfig, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.names)
        if self.ipt.shape != (n, n):
            raise CommunalError(
                f"IPT matrix shape {self.ipt.shape} does not match {n} workloads"
            )
        if len(self.configs) != n:
            raise CommunalError("need one configuration per workload")
        if len(self.weights) != n:
            raise CommunalError("need one weight per workload")
        if (self.ipt <= 0).any():
            raise CommunalError("IPT values must be positive")
        if any(w <= 0 for w in self.weights):
            raise CommunalError("weights must be positive")

    @property
    def size(self) -> int:
        return len(self.names)

    def index(self, name: str) -> int:
        """Row/column index of a workload."""
        try:
            return self.names.index(name)
        except ValueError:
            raise CommunalError(
                f"unknown workload {name!r}; known: {', '.join(self.names)}"
            ) from None

    def own_ipt(self, name: str) -> float:
        """IPT of a workload on its own customized configuration."""
        i = self.index(name)
        return float(self.ipt[i, i])

    def ipt_on(self, workload: str, config_of: str) -> float:
        """IPT of ``workload`` on the configuration of ``config_of``."""
        return float(self.ipt[self.index(workload), self.index(config_of)])

    def slowdown_matrix(self) -> np.ndarray:
        """Appendix A: fractional slowdown vs own configuration.

        ``slowdown[i, j] = 1 - ipt[i, j] / ipt[i, i]``; the diagonal is 0.
        A negative entry means workload i actually prefers j's
        configuration (possible before cross-seeding, by construction
        absent after it).
        """
        own = np.diag(self.ipt)
        return 1.0 - self.ipt / own[:, None]

    def best_config_for(self, workload: str, available: Sequence[str]) -> str:
        """The configuration (among ``available``) this workload prefers."""
        if not available:
            raise CommunalError("no configurations available")
        i = self.index(workload)
        best = max(available, key=lambda c: self.ipt[i, self.index(c)])
        return best

    def subset(self, names: Sequence[str]) -> "CrossPerformance":
        """Restrict the matrix to a subset of workloads (both axes).

        Every requested name must be distinct — a repeated name would
        silently build a matrix with duplicated rows/columns, corrupting
        every averaged figure of merit downstream.
        """
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if list(names).count(n) > 1})
            raise CommunalError(
                f"subset names must be distinct; duplicated: {', '.join(duplicates)}"
            )
        idx = [self.index(n) for n in names]
        return CrossPerformance(
            names=tuple(self.names[i] for i in idx),
            ipt=self.ipt[np.ix_(idx, idx)].copy(),
            configs=tuple(self.configs[i] for i in idx),
            weights=tuple(self.weights[i] for i in idx),
        )


def cross_performance(
    explorer: XpScalar,
    profiles: Sequence[WorkloadProfile],
    configs: Mapping[str, CoreConfig],
) -> CrossPerformance:
    """Evaluate every workload on every customized configuration (Table 5).

    The N×N fill goes through the explorer's evaluation engine as one
    deduplicated batch: pairs already simulated during cross-seeding (or
    a previous fill) come from the cache, and any remaining misses run
    across the engine's worker pool.
    """
    names = tuple(p.name for p in profiles)
    missing = [n for n in names if n not in configs]
    if missing:
        raise CommunalError(f"missing configurations for: {', '.join(missing)}")
    n = len(names)
    pairs = [
        (profile, configs[config_name]) for profile in profiles for config_name in names
    ]
    engine = getattr(explorer, "engine", None)
    if engine is not None:
        sims = engine.evaluate_many(pairs)
        values = [
            apply_objective(explorer.objective, profile, config, sim)
            for (profile, config), sim in zip(pairs, sims)
        ]
    else:  # duck-typed explorer without an engine: evaluate pairwise
        values = [explorer.score(profile, config) for profile, config in pairs]
    ipt = np.asarray(values, dtype=float).reshape(n, n)
    return CrossPerformance(
        names=names,
        ipt=ipt,
        configs=tuple(configs[n] for n in names),
        weights=tuple(p.weight for p in profiles),
    )
