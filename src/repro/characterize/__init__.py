"""Configurational characterization: customized configurations (Table 4)
and cross-configuration performance (Table 5 / Appendix A)."""

from .configurational import (
    CONFIG_VECTOR_FIELDS,
    ConfigurationalCharacteristics,
    characterize_workloads,
    config_distance_matrix,
    from_results,
)
from .cross import CrossPerformance, cross_performance

__all__ = [
    "CONFIG_VECTOR_FIELDS",
    "ConfigurationalCharacteristics",
    "characterize_workloads",
    "config_distance_matrix",
    "from_results",
    "CrossPerformance",
    "cross_performance",
]
