"""Head-to-head strategy comparison: one benchmark set, one shared cache.

``repro search-compare`` answers the question the strategy abstraction
raises: does the paper's simulated annealing earn its complexity?  Every
registered strategy searches the same benchmarks from the same initial
configuration, under the same budget, with seeds derived from the same
base — and all evaluations route through one shared
:class:`~repro.engine.pool.EvaluationEngine`, so a configuration two
strategies both visit is simulated once.

The quality/cost ranking uses the *algorithmic* evaluation count from
each :class:`~repro.search.SearchResult` — not engine counters and not
wall time — so the ranking is bit-identical at any ``--jobs`` level
(worker-process counters are private and wall time is noise; elapsed
seconds are still reported, unranked, for context).

This module lazily imports :mod:`repro.explore` inside functions — the
package-level rule is explorers import the search layer, never the
reverse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from ..engine.keys import derive_seed
from ..errors import ExplorationError
from .base import SearchBudget, SearchDiagnostics, strategy_names

#: Strategies compared when the caller does not choose.
DEFAULT_STRATEGIES = ("anneal", "hillclimb", "random", "multistart")


@dataclass(frozen=True)
class CompareRow:
    """One (strategy, benchmark) cell of the comparison."""

    strategy: str
    benchmark: str
    score: float
    evaluations: int
    moves: int
    accepted: int
    acceptance_rate: float
    plateau: int
    stop_reason: str | None
    seconds: float

    def jsonable(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "benchmark": self.benchmark,
            "score": self.score,
            "evaluations": self.evaluations,
            "moves": self.moves,
            "accepted": self.accepted,
            "acceptance_rate": self.acceptance_rate,
            "plateau": self.plateau,
            "stop_reason": self.stop_reason,
            "seconds": self.seconds,
        }


@dataclass
class ComparisonReport:
    """All rows plus the deterministic quality/cost ranking."""

    rows: list[CompareRow]
    ranking: list[str]
    iterations: int
    seed: int

    def render(self) -> str:
        """The quality/cost table (plus the ranking line)."""
        from ..experiments import render_table  # lazy: experiments -> explore

        headers = [
            "strategy", "benchmark", "IPT", "evals", "moves",
            "accept%", "plateau", "stop", "seconds",
        ]
        table_rows = [
            [
                row.strategy,
                row.benchmark,
                f"{row.score:.2f}",
                row.evaluations,
                row.moves,
                f"{row.acceptance_rate * 100:.0f}%",
                row.plateau,
                row.stop_reason or "schedule",
                f"{row.seconds:.2f}",
            ]
            for row in self.rows
        ]
        table = render_table(
            headers, table_rows,
            title=f"search-compare (iterations {self.iterations}, seed {self.seed})",
        )
        return table + "\nranking (quality first, cost breaks ties): " + " > ".join(
            self.ranking
        )

    def to_jsonable(self) -> dict[str, Any]:
        """JSON form for ``--out`` / the CI benchmark artifact."""
        return {
            "iterations": self.iterations,
            "seed": self.seed,
            "ranking": list(self.ranking),
            "rows": [row.jsonable() for row in self.rows],
        }

    def write_json(self, path: Any) -> None:
        """Persist the comparison atomically (write-temp + fsync + rename)."""
        from ..engine.io_atomic import write_json_atomic  # lazy: thin IO dep

        write_json_atomic(path, self.to_jsonable(), indent=2)


def _rank(rows: Sequence[CompareRow]) -> list[str]:
    """Strategies best-first: mean score down, total evaluations up, name.

    Every key is computed from deterministic per-run quantities, so the
    ranking is identical across job counts and repeat runs.
    """
    by_strategy: dict[str, list[CompareRow]] = {}
    for row in rows:
        by_strategy.setdefault(row.strategy, []).append(row)
    return sorted(
        by_strategy,
        key=lambda name: (
            -sum(r.score for r in by_strategy[name]) / len(by_strategy[name]),
            sum(r.evaluations for r in by_strategy[name]),
            name,
        ),
    )


def compare_strategies(
    profiles: Sequence[Any],
    strategies: Sequence[str] | None = None,
    iterations: int = 400,
    seed: int = 0,
    budget: SearchBudget | None = None,
    engine: Any = None,
    restarts: int = 4,
) -> ComparisonReport:
    """Run every strategy over every profile and rank them.

    All strategies share ``engine`` (one result cache); each strategy
    gets its own :class:`~repro.explore.XpScalar` facade over it.
    Benchmark ``i`` searches under seed ``derive_seed(seed, index=i)``
    for every strategy — same starting stream, different policies.
    """
    from ..explore import AnnealingSchedule, XpScalar  # lazy: explore -> search

    profiles = list(profiles)
    if not profiles:
        raise ExplorationError("search-compare needs at least one workload")
    names = list(strategies) if strategies else list(DEFAULT_STRATEGIES)
    unknown = [n for n in names if n not in strategy_names()]
    if unknown:
        raise ExplorationError(
            f"unknown strategies: {', '.join(unknown)}; "
            f"known: {', '.join(strategy_names())}"
        )

    schedule = AnnealingSchedule(iterations=iterations)
    rows: list[CompareRow] = []
    for name in names:
        xp = XpScalar(
            engine=engine,
            schedule=schedule,
            strategy=name,
            budget=budget,
            restarts=restarts,
        )
        if engine is None:
            engine = xp.engine  # first facade's engine is shared onward
        for index, profile in enumerate(profiles):
            started = time.perf_counter()
            result = xp.customize(profile, seed=derive_seed(seed, index=index))
            seconds = time.perf_counter() - started
            diagnostics = SearchDiagnostics.from_result(
                name, profile.name, result.annealing
            )
            # Mirror the row into the event stream: a journaled
            # search-compare run is analyzable post-hoc (repro trace)
            # without --stats or the JSON artifact.
            xp.engine.events.emit(
                "strategy_timing",
                strategy=name,
                benchmark=profile.name,
                seconds=seconds,
                moves=diagnostics.moves,
                evaluations=diagnostics.evaluations,
            )
            rows.append(
                CompareRow(
                    strategy=name,
                    benchmark=profile.name,
                    score=result.score,
                    evaluations=diagnostics.evaluations,
                    moves=diagnostics.moves,
                    accepted=diagnostics.accepted,
                    acceptance_rate=diagnostics.acceptance_rate,
                    plateau=diagnostics.plateau,
                    stop_reason=diagnostics.stop_reason,
                    seconds=seconds,
                )
            )
    return ComparisonReport(
        rows=rows, ranking=_rank(rows), iterations=iterations, seed=seed
    )
