"""Pluggable design-space search: strategies, budgets, diagnostics.

Importing this package populates the strategy registry with the four
built-ins (``anneal``, ``multistart``, ``hillclimb``, ``random``);
:func:`make_strategy` constructs any of them by name.  The explorers in
:mod:`repro.explore` import this layer — never the reverse — so
strategies stay testable on toy problems.
"""

from .anneal import (
    AnnealingResult,
    AnnealingSchedule,
    AnnealStrategy,
    MultiStartAnneal,
    SimulatedAnnealing,
)
from .base import (
    BudgetMeter,
    SearchBudget,
    SearchDiagnostics,
    SearchProblem,
    SearchResult,
    SearchStrategy,
    make_strategy,
    plateau_length,
    register_strategy,
    strategy_names,
)
from .local import HillClimbStrategy, RandomSearchStrategy

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "AnnealStrategy",
    "BudgetMeter",
    "HillClimbStrategy",
    "MultiStartAnneal",
    "RandomSearchStrategy",
    "SearchBudget",
    "SearchDiagnostics",
    "SearchProblem",
    "SearchResult",
    "SearchStrategy",
    "SimulatedAnnealing",
    "make_strategy",
    "plateau_length",
    "register_strategy",
    "strategy_names",
]
