"""Simulated annealing — the paper's search — as a pluggable strategy.

The generic annealing engine with the paper's rollback rule lived in
``repro.explore.annealing`` when it was the only search; it now lives
here as one strategy among several (``repro.explore.annealing`` re-
exports it unchanged).  xp-scalar's search (§3) is a simulated-annealing
process over processor configurations with one distinctive twist: "When
a configuration is reached for which the IPT is less than half that of
the optimal configuration, the exploration process rolls back to the
optimal solution and is continued."  The engine is generic over the
state type so it can be tested independently of the processor design
space.

Two strategies are defined here:

* :class:`AnnealStrategy` (``anneal``) — one annealing run; the default
  everywhere, bit-identical to the pre-strategy explorer;
* :class:`MultiStartAnneal` (``multistart``) — N independent annealing
  restarts with derived seeds, fanned out through the evaluation
  engine's worker pool when the problem provides a fan-out hook, with
  the best-of-N winner picked deterministically (score, then earliest
  restart).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Generic, TypeVar

import numpy as np

from ..engine.keys import derive_seed
from ..errors import ExplorationError
from .base import (
    BudgetMeter,
    SearchBudget,
    SearchProblem,
    SearchResult,
    SearchStrategy,
    register_strategy,
)

State = TypeVar("State")

#: Backwards-compatible alias: the annealer's result shape is now the
#: shared result shape of every strategy.
AnnealingResult = SearchResult


@dataclass(frozen=True)
class AnnealingSchedule:
    """Parameters of the annealing process.

    ``temperature`` is expressed as a *relative* score tolerance: at
    temperature T, a move that loses a fraction T of the best score so
    far is accepted with probability 1/e.  Cooling is geometric from
    ``t_initial`` to ``t_final`` over ``iterations`` steps.
    ``rollback_fraction`` is the paper's rule: scores below this fraction
    of the best-so-far snap the search back to the best state.

    The hill-climbing and random-sampling strategies reuse the schedule
    for its ``iterations`` alone (they have no temperature).
    """

    iterations: int = 2500
    t_initial: float = 0.10
    t_final: float = 0.005
    rollback_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ExplorationError(f"iterations must be >= 1: {self.iterations}")
        if not 0 < self.t_final <= self.t_initial:
            raise ExplorationError(
                f"need 0 < t_final <= t_initial, got {self.t_final}, {self.t_initial}"
            )
        if not 0 < self.rollback_fraction < 1:
            raise ExplorationError(
                f"rollback_fraction must be in (0, 1): {self.rollback_fraction}"
            )

    def temperature(self, step: int) -> float:
        """Geometric cooling."""
        if self.iterations == 1:
            return self.t_initial
        ratio = self.t_final / self.t_initial
        return self.t_initial * ratio ** (step / (self.iterations - 1))


class SimulatedAnnealing(Generic[State]):
    """Maximize ``evaluate(state)`` by annealed local search.

    Parameters
    ----------
    propose:
        ``(state, rng) -> state`` neighbour generator.  May raise
        :class:`~repro.errors.TimingError` /
        :class:`~repro.errors.ConfigurationError` for untenable moves;
        those proposals are skipped (they still consume an iteration,
        mirroring a simulation that was not run).
    evaluate:
        ``state -> float`` fitness (higher is better, must be positive).
    schedule:
        Annealing parameters.
    """

    def __init__(
        self,
        propose: Callable[[State, np.random.Generator], State],
        evaluate: Callable[[State], float],
        schedule: AnnealingSchedule | None = None,
    ) -> None:
        self._propose = propose
        self._evaluate = evaluate
        self._schedule = schedule or AnnealingSchedule()

    def run(
        self,
        initial: State,
        seed: int = 0,
        budget: SearchBudget | None = None,
    ) -> SearchResult[State]:
        """Anneal from ``initial``; deterministic for a given seed.

        With a ``budget``, the run stops at the first exhausted limit
        (recorded as ``stop_reason``); without one the loop — including
        every RNG draw — is bit-identical to the pre-budget annealer.
        """
        rng = np.random.default_rng(seed)
        schedule = self._schedule
        meter = BudgetMeter(budget)

        current = initial
        current_score = self._evaluate(initial)
        if current_score <= 0:
            raise ExplorationError(
                f"initial state has non-positive score {current_score}"
            )
        meter.note_evaluation()
        best, best_score = current, current_score
        evaluations = 1
        accepted = 0
        rollbacks = 0
        history = [best_score]
        stop_reason: str | None = None

        from ..errors import ConfigurationError, TimingError

        for step in range(schedule.iterations):
            stop_reason = meter.stop_reason()
            if stop_reason is not None:
                break
            try:
                candidate = self._propose(current, rng)
            except (TimingError, ConfigurationError):
                meter.note_move(improved=False)
                history.append(best_score)
                continue
            score = self._evaluate(candidate)
            evaluations += 1
            meter.note_evaluation()

            improved = score > best_score
            if improved:
                best, best_score = candidate, score

            if score >= current_score or self._accept(
                score, current_score, best_score, schedule.temperature(step), rng
            ):
                current, current_score = candidate, score
                accepted += 1

            # The paper's rollback rule: a configuration below half the
            # best-so-far IPT snaps the search back to the best solution.
            if current_score < schedule.rollback_fraction * best_score:
                current, current_score = best, best_score
                rollbacks += 1

            meter.note_move(improved)
            history.append(best_score)

        return SearchResult(
            best_state=best,
            best_score=best_score,
            evaluations=evaluations,
            accepted=accepted,
            rollbacks=rollbacks,
            history=history,
            stop_reason=stop_reason,
        )

    @staticmethod
    def _accept(
        score: float,
        current_score: float,
        best_score: float,
        temperature: float,
        rng: np.random.Generator,
    ) -> bool:
        """Metropolis acceptance on the relative score loss."""
        loss = (current_score - score) / max(best_score, 1e-12)
        return rng.random() < math.exp(-loss / temperature)


@register_strategy
class AnnealStrategy(SearchStrategy):
    """The paper's simulated annealing, behind the strategy protocol.

    With ``neighborhood=1`` (the default) this is the sequential
    annealer, bit-identical to the pre-strategy explorer.  With
    ``neighborhood=N`` each round proposes up to N candidates from the
    round's starting state, scores them in one ``evaluate_many`` call
    (the vectorized batch path when the problem provides one), then
    applies the usual accept/rollback rules to each candidate in
    proposal order at its own temperature step.  That is a different —
    still fully deterministic — walk than the sequential chain, so the
    neighborhood width joins :meth:`identity` whenever it exceeds 1;
    default run signatures are unchanged.
    """

    name = "anneal"

    def __init__(
        self,
        schedule: AnnealingSchedule | None = None,
        budget: SearchBudget | None = None,
        neighborhood: int = 1,
    ) -> None:
        if neighborhood < 1:
            raise ExplorationError(f"neighborhood must be >= 1, got {neighborhood}")
        self.schedule = schedule or AnnealingSchedule()
        self.budget = budget
        self.neighborhood = neighborhood

    def identity(self) -> dict:
        ident = super().identity()
        if self.neighborhood > 1:
            ident["neighborhood"] = self.neighborhood
        return ident

    @classmethod
    def from_options(cls, schedule=None, budget=None, restarts=4, batch=1):
        return cls(schedule=schedule, budget=budget, neighborhood=batch)

    def run(self, problem: SearchProblem, seed: int = 0) -> SearchResult:
        if self.neighborhood <= 1:
            annealer = SimulatedAnnealing(
                propose=problem.propose,
                evaluate=problem.evaluate,
                schedule=self.schedule,
            )
            return annealer.run(problem.initial, seed=seed, budget=self.budget)
        return self._run_batched(problem, seed)

    def _run_batched(self, problem: SearchProblem, seed: int) -> SearchResult:
        """Neighborhood-batched annealing loop.

        ``max_evaluations`` stays exact (the neighborhood is clamped to
        the remaining allowance); ``max_moves``/``plateau_patience`` are
        checked between rounds, so a round may finish past the limit —
        the budget granularity a batch buys its throughput with.
        """
        from ..errors import ConfigurationError, TimingError

        rng = np.random.default_rng(seed)
        schedule = self.schedule
        budget = self.budget
        meter = BudgetMeter(budget)

        current = problem.initial
        current_score = problem.evaluate(current)
        if current_score <= 0:
            raise ExplorationError(
                f"initial state has non-positive score {current_score}"
            )
        meter.note_evaluation()
        best, best_score = current, current_score
        evaluations = 1
        accepted = 0
        rollbacks = 0
        history = [best_score]
        stop_reason: str | None = None

        step = 0
        iterations = schedule.iterations
        while step < iterations:
            stop_reason = meter.stop_reason()
            if stop_reason is not None:
                break
            width = min(self.neighborhood, iterations - step)
            if budget is not None and budget.max_evaluations is not None:
                width = min(width, budget.max_evaluations - meter.evaluations)
            candidates: list[tuple[int, object]] = []
            for _ in range(width):
                try:
                    candidates.append((step, problem.propose(current, rng)))
                except (TimingError, ConfigurationError):
                    meter.note_move(improved=False)
                    history.append(best_score)
                step += 1
            if not candidates:
                continue
            scores = self.evaluate_many(
                problem, [state for _, state in candidates]
            )
            for (cand_step, candidate), score in zip(candidates, scores):
                evaluations += 1
                meter.note_evaluation()
                improved = score > best_score
                if improved:
                    best, best_score = candidate, score
                if score >= current_score or SimulatedAnnealing._accept(
                    score,
                    current_score,
                    best_score,
                    schedule.temperature(cand_step),
                    rng,
                ):
                    current, current_score = candidate, score
                    accepted += 1
                if current_score < schedule.rollback_fraction * best_score:
                    current, current_score = best, best_score
                    rollbacks += 1
                meter.note_move(improved)
                history.append(best_score)

        return SearchResult(
            best_state=best,
            best_score=best_score,
            evaluations=evaluations,
            accepted=accepted,
            rollbacks=rollbacks,
            history=history,
            stop_reason=stop_reason,
        )


@register_strategy
class MultiStartAnneal(SearchStrategy):
    """Best-of-N independent annealing restarts.

    Restart ``r`` anneals under seed ``derive_seed(seed, restart=r)``
    (restart 0 is the plain seed, so a 1-restart multi-start equals the
    ``anneal`` strategy exactly).  When the problem carries a ``fanout``
    hook — explorers wire it to ``EvaluationEngine.map`` — the restarts
    run across the engine's worker pool; otherwise they run serially
    in-process.  Either way the winner is picked deterministically:
    highest score, ties to the earliest restart — so ``jobs=1`` and
    ``jobs=N`` agree bit-for-bit.

    The returned result is the winning restart's, except that
    ``evaluations`` is the *total across all restarts* — the honest
    search cost the quality/cost comparison charges multi-start for.
    """

    name = "multistart"

    def __init__(
        self,
        schedule: AnnealingSchedule | None = None,
        budget: SearchBudget | None = None,
        restarts: int = 4,
        neighborhood: int = 1,
    ) -> None:
        if restarts < 1:
            raise ExplorationError(f"restarts must be >= 1, got {restarts}")
        self.schedule = schedule or AnnealingSchedule()
        self.budget = budget
        self.restarts = restarts
        self.neighborhood = neighborhood
        self.inner = AnnealStrategy(
            schedule=self.schedule, budget=budget, neighborhood=neighborhood
        )

    def identity(self) -> dict:
        ident = {**super().identity(), "restarts": self.restarts}
        if self.neighborhood > 1:
            ident["neighborhood"] = self.neighborhood
        return ident

    @classmethod
    def from_options(cls, schedule=None, budget=None, restarts=4, batch=1):
        return cls(
            schedule=schedule, budget=budget, restarts=restarts, neighborhood=batch
        )

    def run(self, problem: SearchProblem, seed: int = 0) -> SearchResult:
        seeds = [derive_seed(seed, restart=r) for r in range(self.restarts)]
        if problem.fanout is not None:
            outcomes = list(problem.fanout(seeds, self.inner))
        else:
            outcomes = [self.inner.run(problem, seed=s) for s in seeds]
        if len(outcomes) != len(seeds) or any(o is None for o in outcomes):
            raise ExplorationError(
                f"multistart fan-out returned {len(outcomes)} results "
                f"for {len(seeds)} restarts"
            )
        winner = max(
            range(len(outcomes)), key=lambda i: (outcomes[i].best_score, -i)
        )
        total_evaluations = sum(o.evaluations for o in outcomes)
        return replace(outcomes[winner], evaluations=total_evaluations)
