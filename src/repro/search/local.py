"""Baseline search strategies: greedy hill climbing and random sampling.

These exist to calibrate the annealer — the paper argues simulated
annealing earns its complexity; ``repro search-compare`` puts that claim
on a quality/cost table by running these baselines under the same move
generator, fitness function, seeds and budget.

Both strategies reuse :class:`~repro.search.anneal.AnnealingSchedule`
purely for its ``iterations`` count (they have no temperature), keep the
annealer's history semantics (best-so-far per move, including untenable
proposals), and enforce :class:`~repro.search.base.SearchBudget`
through the same :class:`~repro.search.base.BudgetMeter` polling.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ExplorationError, TimingError
from .anneal import AnnealingSchedule
from .base import (
    BudgetMeter,
    SearchBudget,
    SearchProblem,
    SearchResult,
    SearchStrategy,
    register_strategy,
)


@register_strategy
class HillClimbStrategy(SearchStrategy):
    """Greedy local search: accept only strictly-improving moves.

    The cheapest strategy and the easiest to trap in a local optimum —
    the lower bound the annealer must beat.  Never rolls back (the
    current state *is* the best state at all times).

    With ``frontier=N`` each round proposes up to N candidates from the
    current state, scores them in one ``evaluate_many`` call, and climbs
    to the best strictly-improving candidate (ties to the earliest
    proposal).  A different deterministic walk than the sequential
    climb, so the frontier width joins :meth:`identity` when above 1.
    """

    name = "hillclimb"

    def __init__(
        self,
        schedule: AnnealingSchedule | None = None,
        budget: SearchBudget | None = None,
        frontier: int = 1,
    ) -> None:
        if frontier < 1:
            raise ExplorationError(f"frontier must be >= 1, got {frontier}")
        self.schedule = schedule or AnnealingSchedule()
        self.budget = budget
        self.frontier = frontier

    def identity(self) -> dict:
        ident = super().identity()
        if self.frontier > 1:
            ident["frontier"] = self.frontier
        return ident

    @classmethod
    def from_options(cls, schedule=None, budget=None, restarts=4, batch=1):
        return cls(schedule=schedule, budget=budget, frontier=batch)

    def run(self, problem: SearchProblem, seed: int = 0) -> SearchResult:
        if self.frontier > 1:
            return self._run_frontier(problem, seed)
        rng = np.random.default_rng(seed)
        meter = BudgetMeter(self.budget)

        current = problem.initial
        current_score = problem.evaluate(current)
        if current_score <= 0:
            raise ExplorationError(
                f"initial state has non-positive score {current_score}"
            )
        meter.note_evaluation()
        evaluations = 1
        accepted = 0
        history = [current_score]
        stop_reason: str | None = None

        for _ in range(self.schedule.iterations):
            stop_reason = meter.stop_reason()
            if stop_reason is not None:
                break
            try:
                candidate = problem.propose(current, rng)
            except (TimingError, ConfigurationError):
                meter.note_move(improved=False)
                history.append(current_score)
                continue
            score = problem.evaluate(candidate)
            evaluations += 1
            meter.note_evaluation()

            improved = score > current_score
            if improved:
                current, current_score = candidate, score
                accepted += 1
            meter.note_move(improved)
            history.append(current_score)

        return SearchResult(
            best_state=current,
            best_score=current_score,
            evaluations=evaluations,
            accepted=accepted,
            rollbacks=0,
            history=history,
            stop_reason=stop_reason,
        )

    def _run_frontier(self, problem: SearchProblem, seed: int) -> SearchResult:
        """Frontier-batched greedy climb.

        ``max_evaluations`` stays exact (the frontier is clamped to the
        remaining allowance); ``max_moves``/``plateau_patience`` are
        checked between rounds.
        """
        rng = np.random.default_rng(seed)
        budget = self.budget
        meter = BudgetMeter(budget)

        current = problem.initial
        current_score = problem.evaluate(current)
        if current_score <= 0:
            raise ExplorationError(
                f"initial state has non-positive score {current_score}"
            )
        meter.note_evaluation()
        evaluations = 1
        accepted = 0
        history = [current_score]
        stop_reason: str | None = None

        step = 0
        iterations = self.schedule.iterations
        while step < iterations:
            stop_reason = meter.stop_reason()
            if stop_reason is not None:
                break
            width = min(self.frontier, iterations - step)
            if budget is not None and budget.max_evaluations is not None:
                width = min(width, budget.max_evaluations - meter.evaluations)
            candidates = []
            failures = 0
            for _ in range(width):
                try:
                    candidates.append(problem.propose(current, rng))
                except (TimingError, ConfigurationError):
                    failures += 1
                step += 1
            if candidates:
                scores = self.evaluate_many(problem, candidates)
                evaluations += len(scores)
                for _ in scores:
                    meter.note_evaluation()
                best_i = max(range(len(scores)), key=lambda i: (scores[i], -i))
                improved = scores[best_i] > current_score
                if improved:
                    current, current_score = candidates[best_i], scores[best_i]
                    accepted += 1
                # One history entry per proposal, like the scalar climb:
                # the round's winner lands on its own slot, the rest
                # (and every untenable proposal) carry the running best.
                for i in range(len(scores)):
                    meter.note_move(improved and i == best_i)
                    history.append(current_score)
            for _ in range(failures):
                meter.note_move(improved=False)
                history.append(current_score)

        return SearchResult(
            best_state=current,
            best_score=current_score,
            evaluations=evaluations,
            accepted=accepted,
            rollbacks=0,
            history=history,
            stop_reason=stop_reason,
        )


@register_strategy
class RandomSearchStrategy(SearchStrategy):
    """Seeded random walk: accept every tenable move, remember the best.

    The "no search policy at all" baseline — pure design-space sampling
    along a neighbour chain.  Beating it is the minimum bar for any
    strategy that claims to *search*.  Every proposal depends on the one
    before it (the chain *is* the strategy), so there is no batched mode
    and the uniform ``batch`` option is ignored.
    """

    name = "random"

    def __init__(
        self,
        schedule: AnnealingSchedule | None = None,
        budget: SearchBudget | None = None,
    ) -> None:
        self.schedule = schedule or AnnealingSchedule()
        self.budget = budget

    def run(self, problem: SearchProblem, seed: int = 0) -> SearchResult:
        rng = np.random.default_rng(seed)
        meter = BudgetMeter(self.budget)

        current = problem.initial
        current_score = problem.evaluate(current)
        if current_score <= 0:
            raise ExplorationError(
                f"initial state has non-positive score {current_score}"
            )
        meter.note_evaluation()
        best, best_score = current, current_score
        evaluations = 1
        accepted = 0
        history = [best_score]
        stop_reason: str | None = None

        for _ in range(self.schedule.iterations):
            stop_reason = meter.stop_reason()
            if stop_reason is not None:
                break
            try:
                candidate = problem.propose(current, rng)
            except (TimingError, ConfigurationError):
                meter.note_move(improved=False)
                history.append(best_score)
                continue
            score = problem.evaluate(candidate)
            evaluations += 1
            meter.note_evaluation()

            improved = score > best_score
            if improved:
                best, best_score = candidate, score
            current, current_score = candidate, score
            accepted += 1
            meter.note_move(improved)
            history.append(best_score)

        return SearchResult(
            best_state=best,
            best_score=best_score,
            evaluations=evaluations,
            accepted=accepted,
            rollbacks=0,
            history=history,
            stop_reason=stop_reason,
        )
