"""The design-space search abstraction: strategies, budgets, diagnostics.

The paper's pipeline hinges on xp-scalar finding each workload's
customized optimal configuration, but *how* that optimum is searched is
a policy choice, not a fixed algorithm.  This module defines the pieces
every search policy shares:

* :class:`SearchProblem` — the thing being searched: an initial state, a
  seeded neighbour generator and a fitness function (plus an optional
  fan-out hook the multi-start strategy uses to spread restarts across
  the evaluation engine's worker pool);
* :class:`SearchStrategy` — the pluggable protocol.  A strategy maps
  ``(problem, seed)`` to a :class:`SearchResult` deterministically;
  concrete strategies register themselves under a name
  (:func:`register_strategy`) and are constructed by name via
  :func:`make_strategy`, so explorers, the pipeline and the CLI select
  them with a string (``--strategy``);
* :class:`SearchBudget` / :class:`BudgetMeter` — a uniform evaluation /
  move / plateau-patience budget enforced identically by every strategy
  (the redundancy-reduction argument: stop paying for evaluations once
  they stop buying score);
* :class:`SearchDiagnostics` — per-run convergence diagnostics (best-
  score trajectory, acceptance rate, plateau length, stop reason),
  derived from any strategy's result and emitted on the engine event bus
  as a ``search_run`` event.

This package deliberately does not import :mod:`repro.explore` — the
explorers import the search layer, never the reverse — so strategies are
testable on toy problems without the processor design space.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Generic, Sequence, TypeVar

import numpy as np

from ..errors import ExplorationError

State = TypeVar("State")

#: Neighbour generator signature shared with :class:`repro.explore.moves.MoveGenerator`.
Propose = Callable[[Any, np.random.Generator], Any]
#: Fitness signature: higher is better, must be positive.
Evaluate = Callable[[Any], float]
#: Batched fitness signature: one score per state, in state order.  Must
#: return exactly the floats ``evaluate`` would return one by one.
EvaluateMany = Callable[[Sequence[Any]], Sequence[float]]


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SearchBudget:
    """Uniform stopping budget for every search strategy.

    All limits are optional; an all-``None`` budget never stops a search
    (the strategy runs its schedule to completion, exactly as before the
    budget existed).

    Parameters
    ----------
    max_evaluations:
        Cap on fitness evaluations (the initial state's evaluation
        counts).  The search stops *before* the move that would exceed
        it — a budget of N never simulates more than N configurations.
    max_moves:
        Cap on move proposals, successful or not (an untenable move that
        raises still consumed exploration effort).
    plateau_patience:
        Stop after this many consecutive moves without a new best score
        — the "extra evaluations stopped paying" signal.
    """

    max_evaluations: int | None = None
    max_moves: int | None = None
    plateau_patience: int | None = None

    def __post_init__(self) -> None:
        for label, value in (
            ("max_evaluations", self.max_evaluations),
            ("max_moves", self.max_moves),
            ("plateau_patience", self.plateau_patience),
        ):
            if value is not None and value < 1:
                raise ExplorationError(f"{label} must be >= 1 when set: {value}")

    @property
    def unlimited(self) -> bool:
        """True when no limit is set (the search never budget-stops)."""
        return (
            self.max_evaluations is None
            and self.max_moves is None
            and self.plateau_patience is None
        )


class BudgetMeter:
    """Runtime enforcement of one :class:`SearchBudget`.

    Strategies call :meth:`note_evaluation` per fitness evaluation and
    :meth:`note_move` per proposal, and poll :meth:`stop_reason` at the
    top of each iteration.  With no budget (or an unlimited one) every
    call is a cheap no-op and :meth:`stop_reason` is always ``None`` —
    the budget-free code path is behaviourally identical to a strategy
    with no budget support at all.
    """

    def __init__(self, budget: SearchBudget | None) -> None:
        self._budget = None if budget is None or budget.unlimited else budget
        self.evaluations = 0
        self.moves = 0
        self.plateau = 0

    def note_evaluation(self) -> None:
        self.evaluations += 1

    def note_move(self, improved: bool) -> None:
        self.moves += 1
        self.plateau = 0 if improved else self.plateau + 1

    def stop_reason(self) -> str | None:
        """Why the search must stop now, or ``None`` to continue."""
        budget = self._budget
        if budget is None:
            return None
        if (
            budget.max_evaluations is not None
            and self.evaluations >= budget.max_evaluations
        ):
            return "max_evaluations"
        if budget.max_moves is not None and self.moves >= budget.max_moves:
            return "max_moves"
        if (
            budget.plateau_patience is not None
            and self.plateau >= budget.plateau_patience
        ):
            return "plateau"
        return None


# ----------------------------------------------------------------------
# problems and results
# ----------------------------------------------------------------------

#: Fan-out hook: ``(restart_seeds, inner_strategy) -> [SearchResult]``.
#: Provided by the explorer so the multi-start strategy can run its
#: restarts through the evaluation engine's worker pool; ``None`` means
#: "run restarts serially in-process".
Fanout = Callable[[Sequence[int], "SearchStrategy"], "list[SearchResult]"]


@dataclass
class SearchProblem(Generic[State]):
    """One design-space search instance, strategy-agnostic.

    ``evaluate_many`` is an optional batched fitness hook: the explorers
    wire it to the evaluation engine's vectorized batch path, and
    batching strategies (``neighborhood``/``frontier`` > 1) score a
    whole candidate set per call through it.  It must return exactly
    the floats ``evaluate`` would return one state at a time — the
    determinism suite holds both paths to bit-identity.
    """

    initial: State
    propose: Propose
    evaluate: Evaluate
    fanout: Fanout | None = None
    evaluate_many: EvaluateMany | None = None


@dataclass
class SearchResult(Generic[State]):
    """Outcome of one search run (any strategy).

    The field set is the annealer's historical result shape —
    :class:`repro.explore.annealing.AnnealingResult` is an alias of this
    class — so checkpoints, the CLI and every downstream consumer handle
    all strategies uniformly.  ``history`` is the best-score-so-far
    trajectory, one entry per move plus the initial evaluation.
    ``stop_reason`` is ``None`` when the schedule ran to completion, or
    the budget limit that ended the run early.
    """

    best_state: State
    best_score: float
    evaluations: int
    accepted: int
    rollbacks: int
    history: list[float] = field(default_factory=list)
    stop_reason: str | None = None


# ----------------------------------------------------------------------
# the strategy protocol and its registry
# ----------------------------------------------------------------------


class SearchStrategy(abc.ABC):
    """One pluggable search policy.

    Subclasses set the class attribute ``name`` (the ``--strategy``
    spelling), accept ``(schedule, budget)`` in ``__init__`` (extra
    knobs are strategy-specific), and implement :meth:`run`.  Register
    with :func:`register_strategy` to make the name constructible via
    :func:`make_strategy`.
    """

    name: ClassVar[str] = "?"

    @abc.abstractmethod
    def run(self, problem: SearchProblem, seed: int = 0) -> SearchResult:
        """Search ``problem``; deterministic for a given seed."""

    def identity(self) -> dict[str, Any]:
        """Canonically-encodable identity for run signatures.

        Two strategies with equal identities must produce bit-identical
        searches; anything that changes results (the schedule, the
        budget, restart counts) belongs here so checkpoints never resume
        across a strategy change.
        """
        return {
            "strategy": self.name,
            "schedule": getattr(self, "schedule", None),
            "budget": getattr(self, "budget", None),
        }

    def evaluate_many(
        self, problem: SearchProblem, states: Sequence[Any]
    ) -> list[float]:
        """Score a batch of states through the problem's batched hook.

        Falls back to a scalar ``problem.evaluate`` loop when the
        problem provides no batched path — bit-identical by the
        ``evaluate_many`` contract, so strategies can call this
        unconditionally.
        """
        if problem.evaluate_many is not None:
            return [float(score) for score in problem.evaluate_many(states)]
        return [problem.evaluate(state) for state in states]

    @classmethod
    def from_options(
        cls,
        schedule: Any = None,
        budget: SearchBudget | None = None,
        restarts: int = 4,
        batch: int = 1,
    ) -> "SearchStrategy":
        """Construct from the uniform option set (``restarts`` is only
        meaningful to multi-start strategies, ``batch`` only to
        strategies with a batched evaluation mode; others ignore
        them)."""
        return cls(schedule=schedule, budget=budget)  # type: ignore[call-arg]


_REGISTRY: dict[str, type[SearchStrategy]] = {}

StrategyType = TypeVar("StrategyType", bound=type[SearchStrategy])


def register_strategy(cls: StrategyType) -> StrategyType:
    """Class decorator: make ``cls`` constructible by name.

    Third-party strategies plug in the same way the built-ins do —
    subclass :class:`SearchStrategy`, set ``name``, decorate.  Re-using
    a taken name raises (silent replacement would make ``--strategy``
    ambiguous).
    """
    name = cls.name
    if not name or name == "?":
        raise ExplorationError(f"strategy {cls.__name__} must set a name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ExplorationError(
            f"strategy name {name!r} already registered by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def strategy_names() -> list[str]:
    """All registered strategy names, in registration order."""
    return list(_REGISTRY)


def make_strategy(
    name: str,
    schedule: Any = None,
    budget: SearchBudget | None = None,
    restarts: int = 4,
    batch: int = 1,
) -> SearchStrategy:
    """Construct a registered strategy by name."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ExplorationError(
            f"unknown search strategy {name!r}; known: {', '.join(_REGISTRY)}"
        )
    return cls.from_options(
        schedule=schedule, budget=budget, restarts=restarts, batch=batch
    )


# ----------------------------------------------------------------------
# convergence diagnostics
# ----------------------------------------------------------------------


def plateau_length(history: Sequence[float]) -> int:
    """Moves since the best score last improved (0 = improved on the last).

    ``history`` is a best-so-far trajectory, so the plateau is the
    length of the constant tail minus the entry that set it.
    """
    if len(history) < 2:
        return 0
    final = history[-1]
    tail = 0
    for value in reversed(history):
        if value < final:
            break
        tail += 1
    return min(tail, len(history)) - 1


@dataclass(frozen=True)
class SearchDiagnostics:
    """Per-run convergence summary, derivable from any strategy's result.

    ``trajectory`` is the full best-score history (kept on the object
    for plotting/analysis); :meth:`payload` flattens the scalars for the
    engine event bus's ``search_run`` event.
    """

    strategy: str
    workload: str
    best_score: float
    evaluations: int
    moves: int
    accepted: int
    acceptance_rate: float
    plateau: int
    rollbacks: int
    stop_reason: str | None
    trajectory: tuple[float, ...]

    @classmethod
    def from_result(
        cls, strategy: str, workload: str, result: SearchResult
    ) -> "SearchDiagnostics":
        moves = max(len(result.history) - 1, 0)
        return cls(
            strategy=strategy,
            workload=workload,
            best_score=result.best_score,
            evaluations=result.evaluations,
            moves=moves,
            accepted=result.accepted,
            acceptance_rate=result.accepted / moves if moves else 0.0,
            plateau=plateau_length(result.history),
            rollbacks=result.rollbacks,
            stop_reason=result.stop_reason,
            trajectory=tuple(result.history),
        )

    def payload(self) -> dict[str, Any]:
        """The ``search_run`` event payload (scalars only)."""
        return {
            "strategy": self.strategy,
            "workload": self.workload,
            "best_score": self.best_score,
            "evaluations": self.evaluations,
            "moves": self.moves,
            "accepted": self.accepted,
            "acceptance_rate": self.acceptance_rate,
            "plateau": self.plateau,
            "rollbacks": self.rollbacks,
            "stop_reason": self.stop_reason,
        }
