"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError``, ``ValueError`` from user code, ...)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An architectural configuration is malformed or violates the design space."""


class TimingError(ReproError):
    """A unit cannot meet its timing budget (no legal sizing exists)."""


class WorkloadError(ReproError):
    """A workload profile or trace is malformed."""


class ExplorationError(ReproError):
    """The design-space exploration was misconfigured or failed to produce a result."""


class CommunalError(ReproError):
    """A communal-customization computation received inconsistent inputs."""


class EngineError(ReproError):
    """The evaluation engine (cache, pool or checkpoint) was misused or failed."""
