"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError``, ``ValueError`` from user code, ...)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An architectural configuration is malformed or violates the design space."""


class TimingError(ReproError):
    """A unit cannot meet its timing budget (no legal sizing exists)."""


class WorkloadError(ReproError):
    """A workload profile or trace is malformed."""


class ExplorationError(ReproError):
    """The design-space exploration was misconfigured or failed to produce a result."""


class CommunalError(ReproError):
    """A communal-customization computation received inconsistent inputs."""


class EngineError(ReproError):
    """The evaluation engine (cache, pool or checkpoint) was misused or failed."""


class ResumeError(EngineError):
    """A checkpoint or run directory cannot be resumed.

    Raised when resume was *explicitly requested* but the on-disk state
    is from an older schema, a foreign format, or a different command —
    a clear message instead of a KeyError/JSON traceback.  (Implicit
    loads keep the start-fresh behaviour and never raise this.)
    """


class RunError(ReproError):
    """A run directory (manifest, lock, artifact registry) was misused or failed."""


class RunLockedError(RunError):
    """The run directory is locked by another live process."""


class ServeError(ReproError):
    """The exploration service was misconfigured or a request is invalid."""


class QueueFullError(ServeError):
    """A tenant's admission queue is at capacity (HTTP 429 territory)."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServeClientError(ServeError):
    """The serve HTTP client got an error response or could not connect."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status
