"""Constrained multi-objective design: envelopes, Pareto fronts, hetero cores.

The paper customizes for IPT alone and notes power/area stay "within
acceptable limits"; this package makes those limits first-class.
:mod:`~repro.design.constraints` defines the power/area/EPI envelope,
:mod:`~repro.design.objectives` turns it into explorer objectives,
:mod:`~repro.design.pareto` sweeps design spaces into non-dominated
(IPT, power, area) fronts, and :mod:`~repro.design.hetero` searches
constrained heterogeneous core combinations — core type and count per
workload group under a shared budget.
"""

from .constraints import ConstraintSet, DesignError
from .hetero import (
    INORDER_SUFFIX,
    CoreCandidate,
    DesignMatrix,
    HeteroResult,
    best_homogeneous,
    build_design_matrix,
    hetero_search,
)
from .objectives import (
    OBJECTIVE_NAMES,
    ConstrainedIptScore,
    Ed2Score,
    constrained_ipt_objective,
    ed2_objective,
    make_objective,
)
from .pareto import (
    DesignPoint,
    ParetoExplorer,
    ParetoFront,
    dominates,
    pareto_filter,
    sample_design_space,
)

__all__ = [
    "ConstraintSet",
    "DesignError",
    "INORDER_SUFFIX",
    "CoreCandidate",
    "DesignMatrix",
    "HeteroResult",
    "best_homogeneous",
    "build_design_matrix",
    "hetero_search",
    "OBJECTIVE_NAMES",
    "ConstrainedIptScore",
    "Ed2Score",
    "constrained_ipt_objective",
    "ed2_objective",
    "make_objective",
    "DesignPoint",
    "ParetoExplorer",
    "ParetoFront",
    "dominates",
    "pareto_filter",
    "sample_design_space",
]
