"""Per-workload (IPT, power, area) Pareto fronts.

The paper reports single-objective optima; this module reports the
whole tradeoff surface: a seeded random walk samples the legal design
space (every sampled point in both core types), the batch evaluator
scores all samples in one deduplicated ``evaluate_many`` call, the
power/area models attach the other two axes, and the non-dominated
subset — maximize IPT, minimize power, minimize area — is the result.

Dominance here is the standard strong-Pareto relation: ``a`` dominates
``b`` iff ``a`` is no worse on every axis and strictly better on at
least one.  :func:`pareto_filter` computes the front with a sort-and-
scan over the kept set; the test suite re-verifies every emitted front
with an independent brute-force O(n²) check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..engine import EvaluationEngine
from ..errors import TimingError
from ..explore.moves import MoveGenerator
from ..tech import CactiModel, TechnologyNode, default_technology
from ..uarch.config import (
    CORE_TYPES,
    CoreConfig,
    DesignSpace,
    initial_configuration,
)
from ..workloads.profile import WorkloadProfile
from .constraints import ConstraintSet, DesignError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design point with all three objective axes."""

    config: CoreConfig
    ipt: float
    power_w: float
    area_mm2: float
    epi_nj: float

    @property
    def metrics(self) -> tuple[float, float, float]:
        """The dominance axes: (IPT, power, area)."""
        return (self.ipt, self.power_w, self.area_mm2)


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """Strong Pareto dominance: a >= b everywhere, > somewhere.

    IPT is maximized; power and area are minimized.
    """
    if a.ipt < b.ipt or a.power_w > b.power_w or a.area_mm2 > b.area_mm2:
        return False
    return a.ipt > b.ipt or a.power_w < b.power_w or a.area_mm2 < b.area_mm2


def pareto_filter(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """The non-dominated subset, sorted by descending IPT.

    Points with exactly equal (IPT, power, area) are collapsed to their
    first representative (in input order) so a front never carries
    duplicate metric tuples.  After the descending-IPT sort, only
    already-kept points can dominate a candidate, so one scan over the
    kept set suffices.
    """
    seen: set[tuple[float, float, float]] = set()
    distinct: list[DesignPoint] = []
    for point in points:
        if point.metrics not in seen:
            seen.add(point.metrics)
            distinct.append(point)
    order = sorted(
        range(len(distinct)),
        key=lambda i: (
            -distinct[i].ipt,
            distinct[i].power_w,
            distinct[i].area_mm2,
            i,
        ),
    )
    front: list[DesignPoint] = []
    for i in order:
        candidate = distinct[i]
        if not any(dominates(kept, candidate) for kept in front):
            front.append(candidate)
    return front


@dataclass(frozen=True)
class ParetoFront:
    """The non-dominated surface of one workload's sampled design space."""

    workload: str
    points: tuple[DesignPoint, ...]
    explored: int
    feasible: int
    constraints: ConstraintSet = field(default_factory=ConstraintSet)

    def as_jsonable(self) -> dict:
        """Plain-JSON encoding (the CLI/serve artifact schema)."""
        from ..engine.serialize import config_to_jsonable

        return {
            "workload": self.workload,
            "explored": self.explored,
            "feasible": self.feasible,
            "constraints": {
                "peak_power_w": self.constraints.peak_power_w,
                "area_mm2": self.constraints.area_mm2,
                "epi_budget_nj": self.constraints.epi_budget_nj,
            },
            "front": [
                {
                    "ipt": p.ipt,
                    "power_w": p.power_w,
                    "area_mm2": p.area_mm2,
                    "epi_nj": p.epi_nj,
                    "core_type": p.config.core_type,
                    "config": config_to_jsonable(p.config),
                }
                for p in self.points
            ],
        }

    def render(self, top: int | None = None) -> str:
        """Human-readable front table, best IPT first."""
        lines = [
            f"{self.workload}: {len(self.points)} non-dominated of "
            f"{self.feasible} feasible ({self.explored} explored)"
        ]
        shown = self.points if top is None else self.points[:top]
        lines.append(
            f"  {'IPT':>8s} {'power W':>8s} {'area mm2':>9s} "
            f"{'EPI nJ':>7s} {'type':>7s} {'clock ns':>8s} {'width':>5s}"
        )
        for p in shown:
            lines.append(
                f"  {p.ipt:8.2f} {p.power_w:8.2f} {p.area_mm2:9.2f} "
                f"{p.epi_nj:7.3f} {p.config.core_type:>7s} "
                f"{p.config.clock_period_ns:8.2f} {p.config.width:5d}"
            )
        if top is not None and len(self.points) > top:
            lines.append(f"  ... {len(self.points) - top} more")
        return "\n".join(lines)


def sample_design_space(
    samples: int,
    seed: int,
    tech: TechnologyNode | None = None,
    space: DesignSpace | None = None,
    core_types: Sequence[str] = CORE_TYPES,
) -> list[CoreConfig]:
    """Seeded random-walk sample of the legal design space.

    Walks the paper's move structure (:class:`MoveGenerator`) from the
    Table 3 initial configuration, keeping every distinct visited
    configuration; each kept point is emitted once per requested core
    type, so both core types cover the *same* structural designs and
    their fronts are directly comparable.  Deterministic in ``seed``.
    """
    if samples < 1:
        raise DesignError(f"samples must be >= 1, got {samples}")
    for core_type in core_types:
        if core_type not in CORE_TYPES:
            raise DesignError(
                f"core type must be one of {CORE_TYPES}: {core_type!r}"
            )
    tech = tech or default_technology()
    space = space or DesignSpace()
    moves = MoveGenerator(tech, CactiModel(tech), space)
    rng = np.random.default_rng(seed)
    current = initial_configuration(tech)
    bases: list[CoreConfig] = [current]
    seen = {current}
    attempts = 0
    # Random walk with restarts: enough proposals to gather `samples`
    # distinct points even when many moves raise (untenable corners).
    while len(bases) < samples and attempts < 50 * samples:
        attempts += 1
        try:
            current = moves.propose(current, rng)
        except TimingError:
            continue
        if current not in seen:
            seen.add(current)
            bases.append(current)
    return [
        base.replace(core_type=core_type)
        for base in bases[:samples]
        for core_type in core_types
    ]


class ParetoExplorer:
    """Sweep workloads' design spaces into non-dominated fronts.

    All simulation goes through one :class:`EvaluationEngine` batch per
    workload — deduplicated, cached, vectorized through the batch
    interval model, and parallelized when the engine has workers.
    """

    def __init__(
        self,
        tech: TechnologyNode | None = None,
        space: DesignSpace | None = None,
        engine: EvaluationEngine | None = None,
        constraints: ConstraintSet | None = None,
    ) -> None:
        self.tech = tech or default_technology()
        self.space = space or DesignSpace()
        self.constraints = constraints or ConstraintSet()
        if engine is None:
            engine = EvaluationEngine(context=self.tech)
        elif not engine.context_bound:
            engine.bind_context(self.tech)
        self.engine = engine

    def front(
        self,
        profile: WorkloadProfile,
        samples: int = 128,
        seed: int = 0,
        configs: Sequence[CoreConfig] | None = None,
    ) -> ParetoFront:
        """One workload's Pareto front over the sampled design space.

        ``configs`` overrides the sampler (the serve/CLI path samples;
        tests may inject exact candidate sets).  Infeasible points —
        violating any active constraint — are dropped before dominance
        filtering, so the front is the non-dominated subset of the
        *feasible* region.
        """
        if configs is None:
            configs = sample_design_space(
                samples, seed, tech=self.tech, space=self.space
            )
        else:
            configs = list(configs)
        with self.engine.phase(f"pareto:{profile.name}"):
            results = self.engine.evaluate_many(
                [(profile, config) for config in configs]
            )
            points = []
            for config, result in zip(configs, results):
                measures = self.constraints.measure(
                    self.tech, profile, config, result
                )
                points.append(
                    DesignPoint(
                        config=config,
                        ipt=result.ipt,
                        power_w=measures["power_w"],
                        area_mm2=measures["area_mm2"],
                        epi_nj=measures["epi_nj"],
                    )
                )
            feasible = [
                p
                for p in points
                if self.constraints.satisfied(
                    {
                        "power_w": p.power_w,
                        "area_mm2": p.area_mm2,
                        "epi_nj": p.epi_nj,
                    }
                )
            ]
            front = ParetoFront(
                workload=profile.name,
                points=tuple(pareto_filter(feasible)),
                explored=len(points),
                feasible=len(feasible),
                constraints=self.constraints,
            )
        self.engine.events.emit(
            "pareto_front",
            workload=profile.name,
            explored=front.explored,
            feasible=front.feasible,
            front=len(front.points),
            constraints=self.constraints.identity,
        )
        return front

    def fronts(
        self,
        profiles: Sequence[WorkloadProfile],
        samples: int = 128,
        seed: int = 0,
    ) -> dict[str, ParetoFront]:
        """Fronts for a suite; the sampled configs are shared across
        workloads, so the engine's dedup/cache does the heavy lifting."""
        configs = sample_design_space(
            samples, seed, tech=self.tech, space=self.space
        )
        return {
            profile.name: self.front(profile, configs=configs)
            for profile in profiles
        }
