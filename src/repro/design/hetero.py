"""Constrained heterogeneous core-combination search (dark silicon).

The paper's §5.2 complete search picks the best *k* of the workloads'
customized (all out-of-order) configurations, unconstrained.  This
module generalizes it along both axes ROADMAP item 2 calls for:

* **core type** — every candidate configuration is offered in both core
  types (the in-order twin of a customized out-of-order core is smaller
  and cooler but slower), so the search picks *type* as well as
  configuration;
* **count under a budget** — combinations are multisets (a core may be
  replicated) and must fit a shared :class:`ConstraintSet` power/area
  envelope, the dark-silicon regime: when k big cores no longer fit the
  budget, mixes of big and little cores compete on merit.

The search reuses the communal machinery unchanged — the merit
functions only read ``names``/``weights``/``index``/``best_config_for``/
``ipt_on``, which the rectangular :class:`DesignMatrix` provides — and
with no constraints it *delegates* to
:func:`repro.communal.combination.best_combination`, reproducing the
paper's results bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from math import comb, inf
from typing import Mapping, Sequence

import numpy as np

from ..communal.combination import (
    DEFAULT_BEAM_WIDTH,
    EXACT_SUBSET_LIMIT,
    Combination,
    best_combination,
    evaluate_combination,
)
from ..communal.merit import MERITS
from ..engine import EvaluationEngine
from ..errors import CommunalError
from ..tech import TechnologyNode, default_technology
from ..tech.area import core_area_mm2
from ..tech.power import estimate_power
from ..uarch.config import CoreConfig
from ..workloads.profile import WorkloadProfile
from .constraints import ConstraintSet, DesignError

#: Suffix naming the in-order twin of a customized configuration.
INORDER_SUFFIX = "@io"


@dataclass(frozen=True)
class CoreCandidate:
    """One selectable core: a named configuration plus its silicon cost.

    ``peak_power_w`` is the worst case over the workload population —
    the figure a shared power envelope must provision for.
    """

    name: str
    config: CoreConfig
    area_mm2: float
    peak_power_w: float

    @property
    def core_type(self) -> str:
        return self.config.core_type


@dataclass(frozen=True, eq=False)
class DesignMatrix:
    """Rectangular workloads × candidate-cores IPT matrix.

    Duck-types the members the communal merit functions and the
    combination search read (``names``, ``weights``, ``index``,
    ``best_config_for``, ``ipt_on``), with candidate columns decoupled
    from workload rows — the square :class:`CrossPerformance` special
    case is the paper's setting.
    """

    names: tuple[str, ...]
    weights: tuple[float, ...]
    candidates: tuple[CoreCandidate, ...]
    ipt: np.ndarray  # rows: workloads, columns: candidates

    def __post_init__(self) -> None:
        rows, cols = len(self.names), len(self.candidates)
        if self.ipt.shape != (rows, cols):
            raise CommunalError(
                f"IPT matrix shape {self.ipt.shape} does not match "
                f"{rows} workloads x {cols} candidates"
            )
        if len(self.weights) != rows:
            raise CommunalError("need one weight per workload")
        if (self.ipt <= 0).any():
            raise CommunalError("IPT values must be positive")
        seen = set()
        for candidate in self.candidates:
            if candidate.name in seen:
                raise CommunalError(f"duplicate candidate {candidate.name!r}")
            seen.add(candidate.name)

    @property
    def candidate_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.candidates)

    def index(self, name: str) -> int:
        """Column index of a candidate (merit functions validate with it)."""
        for i, candidate in enumerate(self.candidates):
            if candidate.name == name:
                return i
        raise CommunalError(
            f"unknown candidate {name!r}; known: "
            f"{', '.join(self.candidate_names)}"
        )

    def candidate(self, name: str) -> CoreCandidate:
        return self.candidates[self.index(name)]

    def _row(self, workload: str) -> int:
        try:
            return self.names.index(workload)
        except ValueError:
            raise CommunalError(
                f"unknown workload {workload!r}; known: {', '.join(self.names)}"
            ) from None

    def ipt_on(self, workload: str, candidate_name: str) -> float:
        return float(self.ipt[self._row(workload), self.index(candidate_name)])

    def best_config_for(self, workload: str, available: Sequence[str]) -> str:
        if not available:
            raise CommunalError("no candidates available")
        i = self._row(workload)
        return max(available, key=lambda c: self.ipt[i, self.index(c)])


def build_design_matrix(
    engine: EvaluationEngine,
    profiles: Sequence[WorkloadProfile],
    configs: Mapping[str, CoreConfig],
    tech: TechnologyNode | None = None,
    include_inorder: bool = True,
) -> DesignMatrix:
    """Evaluate every workload on every candidate core, both core types.

    ``configs`` maps workload names to their customized configurations
    (the :meth:`~repro.explore.xpscalar.XpScalar.customize_all` output);
    each also contributes its in-order twin (same structures, suffix
    ``@io``) unless ``include_inorder`` is false.  One deduplicated
    engine batch fills the whole matrix; the power/area models then
    price each candidate (peak power = worst case over workloads).
    """
    tech = tech or default_technology()
    named: list[tuple[str, CoreConfig]] = []
    for name in configs:
        config = configs[name]
        named.append((name, config.replace(core_type="ooo")))
        if include_inorder:
            named.append(
                (f"{name}{INORDER_SUFFIX}", config.replace(core_type="inorder"))
            )
    pairs = [
        (profile, config) for profile in profiles for _, config in named
    ]
    results = engine.evaluate_many(pairs)
    rows, cols = len(profiles), len(named)
    ipt = np.empty((rows, cols), dtype=float)
    peak_power = [0.0] * cols
    for idx, ((profile, config), result) in enumerate(zip(pairs, results)):
        i, j = divmod(idx, cols)
        ipt[i, j] = result.ipt
        power = estimate_power(tech, profile, config, result).total_w
        if power > peak_power[j]:
            peak_power[j] = power
    candidates = tuple(
        CoreCandidate(
            name=name,
            config=config,
            area_mm2=core_area_mm2(tech, config),
            peak_power_w=peak_power[j],
        )
        for j, (name, config) in enumerate(named)
    )
    return DesignMatrix(
        names=tuple(p.name for p in profiles),
        weights=tuple(p.weight for p in profiles),
        candidates=candidates,
        ipt=ipt,
    )


@dataclass(frozen=True)
class HeteroResult:
    """One constrained heterogeneous combination and its standing."""

    combination: Combination
    counts: tuple[tuple[str, int], ...]  # (candidate, copies), chosen order
    core_types: tuple[tuple[str, str], ...]  # (candidate, core type)
    total_area_mm2: float
    total_peak_power_w: float
    constraints: ConstraintSet

    @property
    def merit(self) -> float:
        return self.combination.merit

    def as_jsonable(self) -> dict:
        """Plain-JSON encoding (the CLI/serve artifact schema)."""
        types = dict(self.core_types)
        return {
            "merit_name": self.combination.merit_name,
            "merit": self.combination.merit,
            "average": self.combination.average,
            "harmonic": self.combination.harmonic,
            "contention_weighted": self.combination.contention_weighted,
            "cores": [
                {"name": name, "count": count, "core_type": types[name]}
                for name, count in self.counts
            ],
            "assignment": [list(pair) for pair in self.combination.assignment],
            "total_area_mm2": self.total_area_mm2,
            "total_peak_power_w": self.total_peak_power_w,
            "constraints": {
                "peak_power_w": self.constraints.peak_power_w,
                "area_mm2": self.constraints.area_mm2,
                "epi_budget_nj": self.constraints.epi_budget_nj,
            },
        }

    def render(self) -> str:
        parts = [
            f"merit ({self.combination.merit_name}) "
            f"{self.combination.merit:.3f}",
            f"area {self.total_area_mm2:.1f} mm2",
            f"peak power {self.total_peak_power_w:.1f} W",
        ]
        types = dict(self.core_types)
        cores = ", ".join(
            f"{name} x{count} [{types[name]}]" for name, count in self.counts
        )
        return f"{cores}\n  " + "  ".join(parts)


def _totals(
    matrix: DesignMatrix, chosen: Sequence[str]
) -> tuple[float, float]:
    area = sum(matrix.candidate(name).area_mm2 for name in chosen)
    power = sum(matrix.candidate(name).peak_power_w for name in chosen)
    return area, power


def _feasible(
    matrix: DesignMatrix, chosen: Sequence[str], constraints: ConstraintSet
) -> bool:
    area, power = _totals(matrix, chosen)
    if constraints.area_mm2 is not None and area > constraints.area_mm2:
        return False
    if constraints.peak_power_w is not None and power > constraints.peak_power_w:
        return False
    return True


def _result_from_chosen(
    matrix: DesignMatrix,
    combination: Combination,
    constraints: ConstraintSet,
) -> HeteroResult:
    chosen = combination.configs
    counts: list[tuple[str, int]] = []
    for name in chosen:
        if counts and counts[-1][0] == name:
            counts[-1] = (name, counts[-1][1] + 1)
        else:
            counts.append((name, 1))
    area, power = _totals(matrix, chosen)
    return HeteroResult(
        combination=combination,
        counts=tuple(counts),
        core_types=tuple(
            (name, matrix.candidate(name).core_type) for name, _ in counts
        ),
        total_area_mm2=area,
        total_peak_power_w=power,
        constraints=constraints,
    )


def hetero_search(
    matrix: DesignMatrix,
    k: int,
    constraints: ConstraintSet | None = None,
    merit: str = "cw-har",
    candidates: Sequence[str] | None = None,
    mode: str = "auto",
    beam_width: int = DEFAULT_BEAM_WIDTH,
) -> HeteroResult:
    """Best k-core multiset under a shared power/area envelope.

    Unconstrained, this *is* the paper's complete search: it delegates
    to :func:`~repro.communal.combination.best_combination` (subsets,
    no replication) and reproduces its result bit-identically.  With an
    active envelope, combinations become multisets enumerated in
    non-decreasing candidate order (``mode="exact"``; ``"beam"`` prunes
    each prefix level to ``beam_width``; ``"auto"`` switches on
    :data:`~repro.communal.combination.EXACT_SUBSET_LIMIT`), infeasible
    multisets are discarded, and the feasible one maximizing the merit
    wins.  Raises :class:`DesignError` when nothing fits the envelope.
    """
    constraints = constraints or ConstraintSet()
    pool = tuple(candidates) if candidates is not None else matrix.candidate_names
    for name in pool:
        matrix.index(name)  # validates
    if k < 1:
        raise CommunalError(f"k must be >= 1, got {k}")
    try:
        merit_fn = MERITS[merit]
    except KeyError:
        raise CommunalError(
            f"unknown merit {merit!r}; known: {', '.join(MERITS)}"
        ) from None
    if constraints.unconstrained:
        combination = best_combination(
            matrix, k, merit, candidates=pool, mode=mode, beam_width=beam_width
        )
        return _result_from_chosen(matrix, combination, constraints)

    if mode == "auto":
        # C(n + k - 1, k) multisets of size k over n candidates.
        mode = (
            "exact"
            if comb(len(pool) + k - 1, k) <= EXACT_SUBSET_LIMIT
            else "beam"
        )
    if mode not in ("exact", "beam"):
        raise CommunalError(
            f"unknown combination search mode {mode!r}; known: auto, exact, beam"
        )
    if beam_width < 1:
        raise CommunalError(f"beam width must be >= 1, got {beam_width}")

    def score(chosen: tuple[str, ...]) -> float:
        if not _feasible(matrix, chosen, constraints):
            return -inf
        return float(merit_fn(matrix, chosen))

    if mode == "exact":
        best: tuple[float, tuple[str, ...]] | None = None
        for subset in combinations_with_replacement(pool, k):
            value = score(subset)
            if best is None or value > best[0] + 1e-12:
                best = (value, subset)
        assert best is not None
        best_score, winner = best
    else:
        best_score, winner = _beam_multiset(pool, k, score, beam_width)
    if best_score == -inf:
        raise DesignError(
            f"no feasible {k}-core combination under {constraints.identity}"
        )
    combination = _evaluate_multiset(matrix, winner, merit)
    return _result_from_chosen(matrix, combination, constraints)


def _beam_multiset(
    pool: tuple[str, ...],
    k: int,
    score,
    width: int,
) -> tuple[float, tuple[str, ...]]:
    """Beam search over non-decreasing index multisets (see
    :func:`repro.communal.combination._best_beam` for the subset twin).

    Partial multisets are scored on their current members — feasibility
    is monotone (adding a core only adds area/power), so infeasible
    prefixes score ``-inf`` and sink out of the beam early.
    """
    level: list[tuple[int, ...]] = [()]
    scores: dict[tuple[int, ...], float] = {(): -inf}
    for _depth in range(k):
        scored: list[tuple[float, tuple[int, ...]]] = []
        for partial in level:
            start = partial[-1] if partial else 0
            for i in range(start, len(pool)):
                multiset = partial + (i,)
                names = tuple(pool[j] for j in multiset)
                scored.append((score(names), multiset))
        if len(scored) > width:
            scored.sort(key=lambda item: (-item[0], item[1]))
            scored = scored[:width]
        scores = {multiset: value for value, multiset in scored}
        level = sorted(scores)
    best: tuple[float, tuple[int, ...]] | None = None
    for multiset in level:
        value = scores[multiset]
        if best is None or value > best[0] + 1e-12:
            best = (value, multiset)
    assert best is not None
    return best[0], tuple(pool[i] for i in best[1])


def _evaluate_multiset(
    matrix: DesignMatrix, chosen: tuple[str, ...], merit: str
) -> Combination:
    """A :class:`Combination` record for one (possibly replicated) choice."""
    return evaluate_combination(matrix, chosen, merit)


def best_homogeneous(
    matrix: DesignMatrix,
    k: int,
    constraints: ConstraintSet | None = None,
    merit: str = "cw-har",
    candidates: Sequence[str] | None = None,
) -> HeteroResult:
    """The best *homogeneous* assignment: k copies of one candidate.

    The baseline every heterogeneous result is judged against (the
    paper's Table 7 "homogeneous" row, generalized to the constrained
    multiset setting).  Raises :class:`DesignError` when no candidate
    fits the envelope even alone-replicated.
    """
    constraints = constraints or ConstraintSet()
    pool = tuple(candidates) if candidates is not None else matrix.candidate_names
    try:
        merit_fn = MERITS[merit]
    except KeyError:
        raise CommunalError(
            f"unknown merit {merit!r}; known: {', '.join(MERITS)}"
        ) from None
    best: tuple[float, tuple[str, ...]] | None = None
    for name in pool:
        chosen = (name,) * k
        if not constraints.unconstrained and not _feasible(
            matrix, chosen, constraints
        ):
            continue
        value = float(merit_fn(matrix, chosen))
        if best is None or value > best[0] + 1e-12:
            best = (value, chosen)
    if best is None:
        raise DesignError(
            f"no homogeneous {k}-core combination fits {constraints.identity}"
        )
    combination = _evaluate_multiset(matrix, best[1], merit)
    return _result_from_chosen(matrix, combination, constraints)
