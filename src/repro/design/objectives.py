"""Constrained figures of merit as first-class explorer objectives.

Each factory returns a *context objective*: a picklable callable with a
truthy ``needs_context`` attribute, invoked as ``objective(profile,
config, result)`` by :func:`repro.explore.xpscalar.apply_objective`, and
an ``identity`` folded into run signatures/checkpoints.  They plug into
``XpScalar(objective=...)``, ``SearchProblem`` evaluation and the CLI's
``--objective`` flag, completing the paper's sketched "combination of
performance, power and die area" extension:

* :func:`constrained_ipt_objective` — IPT discounted by every active
  envelope overrun (power / area / EPI), via
  :meth:`~repro.design.constraints.ConstraintSet.discount`;
* :func:`ed2_objective` — inverse energy-delay² product, the
  voltage-scaling-neutral figure of the low-power literature;
* the EDP / EPI / area scorers re-exported from :mod:`repro.tech`.

:func:`make_objective` maps CLI names to built objectives.
"""

from __future__ import annotations

from ..tech.area import area_aware_objective
from ..tech.power import edp_objective, energy_per_instruction_nj, epi_objective
from ..tech.technology import TechnologyNode
from .constraints import ConstraintSet, DesignError

#: CLI-selectable objective names (see :func:`make_objective`).
OBJECTIVE_NAMES = ("ipt", "edp", "epi", "ed2", "envelope")


class ConstrainedIptScore:
    """IPT discounted by the :class:`ConstraintSet` envelope overruns."""

    needs_context = True

    def __init__(self, tech: TechnologyNode, constraints: ConstraintSet) -> None:
        self.tech = tech
        self.constraints = constraints

    @property
    def identity(self) -> str:
        return f"envelope:{self.constraints.identity}"

    def __call__(self, profile, config, result) -> float:
        measures = self.constraints.measure(self.tech, profile, config, result)
        return result.ipt / self.constraints.discount(measures)


class Ed2Score:
    """Inverse energy-delay² product (maximize ``1 / (EPI * delay²)``)."""

    needs_context = True

    def __init__(self, tech: TechnologyNode) -> None:
        self.tech = tech

    @property
    def identity(self) -> str:
        return "ed2"

    def __call__(self, profile, config, result) -> float:
        epi = energy_per_instruction_nj(self.tech, profile, config, result)
        delay_per_instr = 1.0 / max(result.ipt, 1e-12)
        return 1.0 / (epi * delay_per_instr * delay_per_instr)


def constrained_ipt_objective(tech: TechnologyNode, constraints: ConstraintSet):
    """IPT under a power/area/EPI envelope (soft, multiplicative)."""
    return ConstrainedIptScore(tech, constraints)


def ed2_objective(tech: TechnologyNode):
    """Energy-delay² score hook."""
    return Ed2Score(tech)


def make_objective(
    name: str,
    tech: TechnologyNode,
    constraints: ConstraintSet | None = None,
):
    """Build the objective a CLI name refers to.

    ``"ipt"`` returns ``None`` — callers keep their default (the paper's
    plain-IPT objective, preserving historical run signatures).  The
    constrained names consume the relevant :class:`ConstraintSet`
    budgets; ``"epi"`` requires ``epi_budget_nj`` and ``"envelope"``
    requires at least one active budget.
    """
    constraints = constraints or ConstraintSet()
    if name == "ipt":
        return None
    if name == "edp":
        return edp_objective(tech)
    if name == "ed2":
        return ed2_objective(tech)
    if name == "epi":
        if constraints.epi_budget_nj is None:
            raise DesignError("--objective epi requires --epi-budget")
        return epi_objective(tech, constraints.epi_budget_nj)
    if name == "envelope":
        if constraints.unconstrained:
            raise DesignError(
                "--objective envelope requires at least one of "
                "--power-budget/--area-budget/--epi-budget"
            )
        return constrained_ipt_objective(tech, constraints)
    raise DesignError(
        f"unknown objective {name!r}; known: {', '.join(OBJECTIVE_NAMES)}"
    )


__all__ = [
    "OBJECTIVE_NAMES",
    "ConstrainedIptScore",
    "Ed2Score",
    "area_aware_objective",
    "constrained_ipt_objective",
    "ed2_objective",
    "edp_objective",
    "epi_objective",
    "make_objective",
]
