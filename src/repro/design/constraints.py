"""Design envelopes: peak power, die area, energy per instruction.

The paper optimizes IPT alone and merely observes that the customized
configurations stay "within acceptable limits" of power and area.  A
:class:`ConstraintSet` makes those limits first-class: it bundles the
three budgets modern design-space work constrains on — peak power (the
thermal/delivery envelope), die area (the silicon budget) and energy per
instruction (the EPI-throttling regime of Annavaram et al.) — and
evaluates one design point's standing against them through the
first-order models in :mod:`repro.tech.power` / :mod:`repro.tech.area`.

Every figure is per *core*; the heterogeneous combination search
(:mod:`repro.design.hetero`) additionally applies power/area budgets to
the *sum* over a chosen core combination (the dark-silicon tradeoff).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ReproError
from ..tech.area import core_area_mm2
from ..tech.power import energy_per_instruction_nj, estimate_power
from ..tech.technology import TechnologyNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.metrics import SimResult
    from ..uarch.config import CoreConfig
    from ..workloads.profile import WorkloadProfile


class DesignError(ReproError):
    """Invalid constraint set or design-space request."""


@dataclass(frozen=True)
class ConstraintSet:
    """Optional per-core budgets; ``None`` leaves a dimension unbounded.

    ``peak_power_w`` caps the estimated average power draw while running
    a workload, ``area_mm2`` caps the core's die area, and
    ``epi_budget_nj`` caps the energy burned per committed instruction.
    """

    peak_power_w: float | None = None
    area_mm2: float | None = None
    epi_budget_nj: float | None = None

    def __post_init__(self) -> None:
        for label, value in (
            ("peak_power_w", self.peak_power_w),
            ("area_mm2", self.area_mm2),
            ("epi_budget_nj", self.epi_budget_nj),
        ):
            if value is not None and value <= 0:
                raise DesignError(f"{label} must be positive, got {value}")

    @property
    def unconstrained(self) -> bool:
        """True when no budget is active (everything is feasible)."""
        return (
            self.peak_power_w is None
            and self.area_mm2 is None
            and self.epi_budget_nj is None
        )

    @property
    def identity(self) -> str:
        """Stable encoding for run signatures and journal events."""
        return (
            f"power={self.peak_power_w!r},area={self.area_mm2!r},"
            f"epi={self.epi_budget_nj!r}"
        )

    # ------------------------------------------------------------------
    # evaluation against one design point
    # ------------------------------------------------------------------

    def measure(
        self,
        tech: TechnologyNode,
        profile: "WorkloadProfile",
        config: "CoreConfig",
        result: "SimResult",
    ) -> dict[str, float]:
        """The three constrained figures of one evaluated design point."""
        return {
            "power_w": estimate_power(tech, profile, config, result).total_w,
            "area_mm2": core_area_mm2(tech, config),
            "epi_nj": energy_per_instruction_nj(tech, profile, config, result),
        }

    def overruns(self, measures: dict[str, float]) -> dict[str, float]:
        """Fractional overrun per *active* budget (0.0 when satisfied)."""
        out: dict[str, float] = {}
        for key, budget in (
            ("power_w", self.peak_power_w),
            ("area_mm2", self.area_mm2),
            ("epi_nj", self.epi_budget_nj),
        ):
            if budget is not None:
                out[key] = max(0.0, measures[key] / budget - 1.0)
        return out

    def satisfied(self, measures: dict[str, float]) -> bool:
        """True when every active budget holds for ``measures``."""
        return all(v == 0.0 for v in self.overruns(measures).values())

    def discount(self, measures: dict[str, float]) -> float:
        """Multiplicative objective discount: ``prod(1 + overrun)``.

        The soft-constraint idiom of the existing :mod:`repro.tech`
        scorers, generalized to several simultaneous envelopes: inside
        every budget the discount is exactly 1.0, so the constrained
        objective degenerates to its unconstrained form.
        """
        factor = 1.0
        for overrun in self.overruns(measures).values():
            factor *= 1.0 + overrun
        return factor
