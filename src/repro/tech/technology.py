"""Technology node description.

The paper's exploration couples the microarchitecture to "the physical
properties of the underlying technology": latch latency, wire and gate
delays, and the fixed latencies of the memory system and front end
(Table 2).  :class:`TechnologyNode` collects those constants; all delay
models in :mod:`repro.tech` are parameterized by one.

The default node (:func:`default_technology`) is calibrated so that the
resulting unit delays land in the same regime as the paper's Table 4
configurations: a ~32-64 KB L1 is accessible in roughly 1 ns, a 2-4 MB L2
in 7-12 ns, and a 32-64 entry issue queue in 0.3-0.45 ns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyNode:
    """Physical constants of a process technology.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"90nm-generic"``).
    latch_latency_ns:
        Overhead of a pipeline latch; subtracted from every stage's useful
        time budget (Table 2 uses 0.03 ns).
    memory_latency_ns:
        Flat main-memory access latency: the cost of a load that misses in
        all cache levels (Table 2 uses 50 ns).
    frontend_latency_ns:
        Total latency of fetch + decode + rename logic; determines the
        front-end pipeline depth at a given clock and hence the extra
        branch-misprediction penalty (Table 2 uses 2 ns).
    iq_entry_bits:
        Bit width of an issue-queue entry (Table 2 uses 64: CACTI does not
        model blocks below 8 bytes).
    sram_base_ns:
        Fixed component of an SRAM array access (sense amp, drivers).
    sram_sqrt_ns_per_sqrt_bit:
        Wire-dominated component: scales with the square root of the array's
        bit count (optimally banked square array).
    sram_linear_ns_per_bit:
        Long-wire component that dominates for multi-megabyte arrays.
    decode_ns_per_bit:
        Decoder delay per address bit (log2 of the number of sets).
    compare_ns_per_bit:
        Tag/way comparator delay per compared bit.
    cam_broadcast_ns_per_entry:
        CAM tag-broadcast wire delay per searched entry (wake-up logic).
    select_ns_per_level:
        Delay per level of the select arbitration tree.
    port_area_factor:
        Fractional wire-length growth per port beyond the 2-port baseline
        (each extra port widens every cell).
    min_clock_ns / max_clock_ns:
        Legal clock-period range for this node.
    """

    name: str = "90nm-generic"
    latch_latency_ns: float = 0.03
    memory_latency_ns: float = 50.0
    frontend_latency_ns: float = 2.0
    iq_entry_bits: int = 64
    sram_base_ns: float = 0.10
    sram_sqrt_ns_per_sqrt_bit: float = 7.0e-4
    sram_linear_ns_per_bit: float = 2.1e-7
    decode_ns_per_bit: float = 0.008
    compare_ns_per_bit: float = 0.002
    cam_broadcast_ns_per_entry: float = 0.0006
    select_ns_per_level: float = 0.008
    port_area_factor: float = 0.22
    min_clock_ns: float = 0.18
    max_clock_ns: float = 0.60

    def __post_init__(self) -> None:
        if self.latch_latency_ns < 0:
            raise ValueError("latch latency cannot be negative")
        if self.memory_latency_ns <= 0:
            raise ValueError("memory latency must be positive")
        if self.frontend_latency_ns <= 0:
            raise ValueError("front-end latency must be positive")
        if not 0 < self.min_clock_ns < self.max_clock_ns:
            raise ValueError(
                f"invalid clock range [{self.min_clock_ns}, {self.max_clock_ns}]"
            )

    def port_factor(self, read_ports: int, write_ports: int) -> float:
        """Wire-length multiplier for a cell with the given port count.

        A 2-port cell (1R/1W or the baseline 2 of Table 1) has factor 1.0;
        each additional port grows every dimension of the cell.
        """
        total = read_ports + write_ports
        if total < 1:
            raise ValueError("a memory structure needs at least one port")
        extra = max(0, total - 2)
        return 1.0 + self.port_area_factor * extra

    def usable_stage_time(self, clock_period_ns: float) -> float:
        """Logic time available in one pipeline stage after latch overhead."""
        return clock_period_ns - self.latch_latency_ns

    def budget(self, clock_period_ns: float, stages: int) -> float:
        """Total logic time available to a unit pipelined over ``stages``.

        Matches the paper: units are scaled "to fit the product of the clock
        period and their pipeline depth, minus the aggregate latch latency".
        """
        if stages < 1:
            raise ValueError(f"stages must be >= 1, got {stages}")
        return stages * clock_period_ns - stages * self.latch_latency_ns


def default_technology() -> TechnologyNode:
    """The calibrated technology node used throughout the reproduction."""
    return TechnologyNode()
