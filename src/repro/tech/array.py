"""Analytical SRAM array delay model.

This is the direct-mapped/RAM half of the CACTI-style model: decoder,
wordline/bitline wires (modelled together as an optimally banked square
array whose wire delay grows with the square root of the bit count, plus a
linear long-wire term for very large arrays), sense amplifier, way
comparison, and output drive.

The model is deliberately simple but preserves the properties the paper's
exploration relies on:

* delay is strictly increasing in capacity, associativity and port count;
* delay is sub-linear for small arrays and super-linear (wire dominated)
  for multi-megabyte arrays;
* extra ports grow every cell and therefore every wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import clog2, is_power_of_two
from .technology import TechnologyNode


@dataclass(frozen=True)
class ArrayGeometry:
    """Geometry of a RAM-style array (cache data/tag array, register file).

    ``line_bits`` is the width of one entry in bits; ``nsets`` the number of
    addressable rows; ``assoc`` the number of ways read in parallel.
    """

    nsets: int
    assoc: int
    line_bits: int
    read_ports: int = 2
    write_ports: int = 2

    def __post_init__(self) -> None:
        if not is_power_of_two(self.nsets):
            raise ValueError(f"nsets must be a power of two, got {self.nsets}")
        if self.assoc < 1:
            raise ValueError(f"assoc must be >= 1, got {self.assoc}")
        if self.line_bits < 8:
            raise ValueError(f"line_bits must be >= 8, got {self.line_bits}")
        if self.read_ports < 0 or self.write_ports < 0:
            raise ValueError("port counts cannot be negative")
        if self.read_ports + self.write_ports < 1:
            raise ValueError("array needs at least one port")

    @property
    def total_bits(self) -> int:
        """Total storage in bits across all sets and ways."""
        return self.nsets * self.assoc * self.line_bits


@dataclass(frozen=True)
class ArrayTiming:
    """Per-component delays (ns) of one array access."""

    decode_ns: float
    wire_ns: float
    sense_ns: float
    compare_ns: float
    output_ns: float

    @property
    def access_ns(self) -> float:
        """Full access time: every component in series."""
        return (
            self.decode_ns
            + self.wire_ns
            + self.sense_ns
            + self.compare_ns
            + self.output_ns
        )

    @property
    def datapath_ns(self) -> float:
        """Total data-path without output driver (Table 1's LSQ/select term)."""
        return self.decode_ns + self.wire_ns + self.sense_ns + self.compare_ns


def array_timing(geometry: ArrayGeometry, tech: TechnologyNode) -> ArrayTiming:
    """Compute the access timing of a RAM array in the given technology."""
    bits = geometry.total_bits
    pf = tech.port_factor(geometry.read_ports, geometry.write_ports)

    decode = tech.decode_ns_per_bit * clog2(geometry.nsets) if geometry.nsets > 1 else 0.0
    # Optimally banked array: wires span sqrt(area); ports widen each cell so
    # the wire term scales with the port factor.  The linear term models the
    # global H-tree that dominates for multi-megabyte arrays.
    wire = pf * (
        tech.sram_sqrt_ns_per_sqrt_bit * math.sqrt(bits)
        + tech.sram_linear_ns_per_bit * bits
    )
    sense = tech.sram_base_ns * 0.5
    # Way selection: comparing one tag per way, then an assoc-way mux.
    tag_bits = 32  # representative physical-tag width
    compare = (
        tech.compare_ns_per_bit * tag_bits * (0.5 + 0.5 * math.log2(geometry.assoc + 1))
        if geometry.assoc > 1
        else tech.compare_ns_per_bit * tag_bits * 0.5
    )
    output = tech.sram_base_ns * 0.5
    return ArrayTiming(
        decode_ns=decode,
        wire_ns=wire,
        sense_ns=sense,
        compare_ns=compare,
        output_ns=output,
    )
