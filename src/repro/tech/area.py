"""First-order die-area model.

The paper excludes power and die area from its objective ("extending the
tool to conduct exploration based on a metric that represents some
combination of performance, power and die area should not be
exceptionally difficult") but observes that customized configurations
stay "within acceptable limits".  This model makes that check concrete
and powers the area-aware objective ablation: SRAM-dominated units are
costed per bit with quadratic port scaling (each port widens both cell
dimensions); datapath and front-end logic scale with machine width.

Constants are calibrated to the 90 nm regime the timing model targets
(a mid-range core lands around 10-25 mm²); only *relative* area between
configurations matters for exploration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .technology import TechnologyNode

if TYPE_CHECKING:  # avoid a circular import: uarch depends on tech
    from ..uarch.config import CoreConfig

#: mm^2 per SRAM bit at the 2-port baseline (6T cell, 90 nm-ish).
_SRAM_MM2_PER_BIT = 1.0e-6
#: CAM cells are roughly twice the area of SRAM cells.
_CAM_FACTOR = 2.0
#: mm^2 of execution datapath per unit of machine width (squared term
#: models the bypass network).
_DATAPATH_MM2 = 0.35
#: Fixed front-end logic (fetch/decode/rename) plus per-width growth.
_FRONTEND_BASE_MM2 = 1.5
_FRONTEND_PER_WIDTH_MM2 = 0.4

#: Per-unit area multipliers for the in-order core type, in the lumos
#: tradition of modelling in-order cores as a constant-factor-leaner
#: silicon budget at equal width: the "regfile" shrinks to architectural
#: state (no rename/ROB entries), the scheduler is a RAM scoreboard
#: rather than a CAM wake-up matrix, the LSQ is a store buffer without
#: ordering CAMs, and the bypass/rename logic thins out.  Caches are
#: core-type independent and keep their full area.
_INORDER_AREA_SCALE = {
    "regfile": 0.25,
    "issue_queue": 0.3,
    "lsq": 0.5,
    "datapath": 0.6,
    "frontend": 0.7,
}


def unit_areas_mm2(tech: TechnologyNode, config: CoreConfig) -> dict[str, float]:
    """Per-unit area estimates for one configuration."""

    def sram(bits: int, read_ports: int, write_ports: int, cam: bool = False) -> float:
        pf = tech.port_factor(read_ports, write_ports)
        cell = _SRAM_MM2_PER_BIT * (_CAM_FACTOR if cam else 1.0)
        return bits * cell * pf * pf

    l1_bits = config.l1.capacity_bytes * 8
    l2_bits = config.l2.capacity_bytes * 8
    rob_bits = config.rob_size * 16 * 8
    iq_bits = config.iq_size * 8 * 8
    lsq_bits = config.lsq_size * 8 * 8
    width = config.width

    areas = {
        "l1": sram(l1_bits, 2, 2),
        "l2": sram(l2_bits, 2, 2),
        "regfile": sram(rob_bits, 2 * width, width),
        "issue_queue": sram(iq_bits, width, width, cam=True),
        "lsq": sram(lsq_bits, 2, 2, cam=True),
        "datapath": _DATAPATH_MM2 * width * width,
        "frontend": _FRONTEND_BASE_MM2 + _FRONTEND_PER_WIDTH_MM2 * width,
    }
    if config.is_inorder:
        for unit, scale in _INORDER_AREA_SCALE.items():
            areas[unit] *= scale
    return areas


def core_area_mm2(tech: TechnologyNode, config: CoreConfig) -> float:
    """Total core area estimate (mm^2)."""
    return sum(unit_areas_mm2(tech, config).values())


class _AreaAwareScore:
    """Callable scoring IPT, discounted beyond an area cap (picklable)."""

    needs_context = True

    def __init__(self, tech: TechnologyNode, mm2_budget: float) -> None:
        self.tech = tech
        self.mm2_budget = mm2_budget

    @property
    def identity(self) -> str:
        return f"area:{self.mm2_budget!r}"

    def __call__(self, profile, config, result) -> float:
        area = core_area_mm2(self.tech, config)
        overrun = max(0.0, area / self.mm2_budget - 1.0)
        return result.ipt / (1.0 + overrun)


def area_aware_objective(tech: TechnologyNode, mm2_budget: float = 20.0):
    """Build an IPT-per-area-overrun objective for the explorer.

    Below the budget the objective is plain IPT; beyond it, IPT is
    discounted proportionally to the overrun — the "combination of
    performance ... and die area" extension the paper sketches.
    """
    if mm2_budget <= 0:
        raise ValueError(f"area budget must be positive, got {mm2_budget}")
    return _AreaAwareScore(tech, mm2_budget)
