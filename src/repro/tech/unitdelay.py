"""Per-architectural-unit delay functions.

This module is the executable form of the paper's Table 1: it maps each
architectural unit of the superscalar core onto CACTI model queries with
the exact geometry and port counts the paper lists, and combines the CACTI
output components the same way.

=================  ==========  =========== ===============  ======  ======
Unit               Line size   Assoc       Sets/entries     R ports W ports
=================  ==========  =========== ===============  ======  ======
L1 data cache      cache line  cache assoc cache sets       2       2
L2 data cache      cache line  cache assoc cache sets       2       2
wake-up (CAM)      8 bytes     full        2 x IQ size      width   0
select (RAM)       8 bytes     direct      IQ size          width   0
reg file / ROB     16 bytes    direct      ROB size         2*width width
LSQ (CAM)          8 bytes     full        LSQ size         2       2
=================  ==========  =========== ===============  ======  ======

One deviation from Table 1: register-file/ROB entries are 16 bytes here
(value + status + rename metadata) rather than the paper's 8-byte line —
our SRAM model is otherwise too fast at large capacities for the
clock/window trade-off of the paper's Table 4 to appear.
"""

from __future__ import annotations

from .cacti import CactiModel
from .cam import select_tree_ns

IQ_ENTRY_BYTES = 8
ROB_ENTRY_BYTES = 16
LSQ_ENTRY_BYTES = 8


def l1_cache_ns(
    model: CactiModel, nsets: int, assoc: int, block_bytes: int
) -> float:
    """Access time of the L1 data cache (2 read / 2 write ports)."""
    return model.ram(nsets, assoc, block_bytes, read_ports=2, write_ports=2).access_time_ns


def l2_cache_ns(
    model: CactiModel, nsets: int, assoc: int, block_bytes: int
) -> float:
    """Access time of the L2 data cache (2 read / 2 write ports)."""
    return model.ram(nsets, assoc, block_bytes, read_ports=2, write_ports=2).access_time_ns


def wakeup_ns(model: CactiModel, iq_size: int, issue_width: int) -> float:
    """Wake-up delay: associative tag comparison over 2x IQ-size entries.

    Each issue-queue entry holds two source tags, hence the doubled entry
    count in the searched CAM (Table 1's "2 x size of issue queue").
    """
    result = model.cam(
        entries=2 * iq_size,
        block_bytes=IQ_ENTRY_BYTES,
        read_ports=issue_width,
        write_ports=0,
    )
    return result.tag_comparison_ns


def select_ns(model: CactiModel, iq_size: int, issue_width: int) -> float:
    """Select delay: direct-mapped data path plus the arbitration tree."""
    result = model.ram(
        nsets=_pow2_at_least(iq_size),
        assoc=1,
        block_bytes=IQ_ENTRY_BYTES,
        read_ports=issue_width,
        write_ports=1,
    )
    tree = select_tree_ns(iq_size, issue_width, model.tech)
    return result.datapath_ns + tree


def issue_queue_ns(model: CactiModel, iq_size: int, issue_width: int) -> float:
    """Total issue-queue loop delay: wake-up followed by select."""
    return wakeup_ns(model, iq_size, issue_width) + select_ns(model, iq_size, issue_width)


def regfile_ns(model: CactiModel, rob_size: int, issue_width: int) -> float:
    """Access time of the register file / ROB array.

    Ported for full-width operation: two read ports per issue slot and one
    write port per slot.
    """
    result = model.ram(
        nsets=_pow2_at_least(rob_size),
        assoc=1,
        block_bytes=ROB_ENTRY_BYTES,
        read_ports=2 * issue_width,
        write_ports=issue_width,
    )
    return result.access_time_ns


def lsq_ns(model: CactiModel, lsq_size: int) -> float:
    """LSQ search delay: associative data path without output driver."""
    result = model.cam(
        entries=lsq_size,
        block_bytes=LSQ_ENTRY_BYTES,
        read_ports=2,
        write_ports=2,
    )
    return result.datapath_ns


def _pow2_at_least(n: int) -> int:
    """Smallest power of two >= n (arrays are built in power-of-two rows)."""
    if n < 1:
        raise ValueError(f"size must be positive, got {n}")
    return 1 << (n - 1).bit_length() if n > 1 else 1
