"""First-order power/energy model.

Completes the paper's "performance, power and die area" objective trio
(§3).  The model follows the classic Wattch-style decomposition:

* **dynamic energy** — each unit access costs energy proportional to the
  bits switched (capacity-dependent for arrays, width-dependent for the
  datapath); per-instruction access counts come from the interval
  model's event rates;
* **static leakage** — proportional to die area (from
  :mod:`repro.tech.area`);
* **clock tree** — proportional to frequency and area.

The absolute scale is calibrated to the 90 nm regime (a mid-range core
around 10-40 W); as with the area model, only relative numbers between
configurations matter for exploration.  :func:`edp_objective` and
:func:`epi_objective` wrap the model as explorer score hooks (energy-
delay product and energy-per-instruction throttling, the objectives of
the heterogeneity literature the paper cites [14, 20, 24]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .area import core_area_mm2
from .technology import TechnologyNode

if TYPE_CHECKING:  # avoid circular imports (uarch/sim depend on tech)
    from ..sim.metrics import SimResult
    from ..uarch.config import CoreConfig
    from ..workloads.profile import WorkloadProfile

#: nJ per access per kilobyte of SRAM capacity (bitline/wordline energy
#: grows sub-linearly with capacity; sqrt models the banked array).
_SRAM_NJ_PER_SQRT_KB = 0.012
#: nJ per issued instruction per unit of machine width (datapath+bypass).
_DATAPATH_NJ = 0.04
#: Static leakage per mm^2 (W).
_LEAKAGE_W_PER_MM2 = 0.15
#: Clock-tree power per mm^2 per GHz (W).
_CLOCK_W_PER_MM2_GHZ = 0.04

#: Dynamic-energy multipliers for the in-order core type, mirroring the
#: per-unit area scaling in :mod:`repro.tech.area`: no rename/ROB writes
#: per instruction, a RAM scoreboard instead of a CAM wake-up broadcast,
#: and a thinner bypass network.  Cache access energy is core-type
#: independent; leakage and clock power scale automatically through the
#: per-type die area.
_INORDER_DATAPATH_SCALE = 0.6
_INORDER_ROB_SCALE = 0.25
_INORDER_IQ_SCALE = 0.3


@dataclass(frozen=True)
class PowerEstimate:
    """Power breakdown for one (workload, configuration) execution."""

    dynamic_w: float
    leakage_w: float
    clock_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w + self.clock_w


def _access_energy_nj(capacity_bytes: int) -> float:
    """Dynamic energy of one access to an SRAM of the given capacity."""
    return _SRAM_NJ_PER_SQRT_KB * math.sqrt(max(1.0, capacity_bytes / 1024))


def estimate_power(
    tech: TechnologyNode,
    profile: "WorkloadProfile",
    config: "CoreConfig",
    result: "SimResult",
) -> PowerEstimate:
    """Estimate average power while running ``profile`` on ``config``."""
    ipc = result.ipc
    freq_ghz = 1.0 / config.clock_period_ns

    # Per-instruction dynamic energy (nJ).
    mem_frac = profile.mix.memory
    l1_miss = profile.memory.miss_rate(
        config.l1.capacity_bytes, config.l1.block_bytes, config.l1.assoc
    )
    dp_scale, rob_scale, iq_scale = (
        (_INORDER_DATAPATH_SCALE, _INORDER_ROB_SCALE, _INORDER_IQ_SCALE)
        if config.is_inorder
        else (1.0, 1.0, 1.0)
    )
    energy_per_instr = (
        dp_scale * _DATAPATH_NJ * config.width ** 0.5
        + rob_scale * _access_energy_nj(config.rob_size * 16)  # rename/ROB access
        + iq_scale * _access_energy_nj(config.iq_size * 8)  # wakeup broadcast
        + mem_frac * _access_energy_nj(config.l1.capacity_bytes)
        + mem_frac * l1_miss * _access_energy_nj(config.l2.capacity_bytes)
    )
    # Dynamic power = energy/instr x instrs/ns = nJ x IPT (GW scale: nJ/ns = W).
    dynamic = energy_per_instr * ipc * freq_ghz

    area = core_area_mm2(tech, config)
    leakage = _LEAKAGE_W_PER_MM2 * area
    clock = _CLOCK_W_PER_MM2_GHZ * area * freq_ghz
    return PowerEstimate(dynamic_w=dynamic, leakage_w=leakage, clock_w=clock)


def energy_per_instruction_nj(
    tech: TechnologyNode,
    profile: "WorkloadProfile",
    config: "CoreConfig",
    result: "SimResult",
) -> float:
    """Average energy per committed instruction (nJ)."""
    power = estimate_power(tech, profile, config, result)
    # W / (instr/ns) = nJ per instruction.
    return power.total_w / max(result.ipt, 1e-12)


class _EdpScore:
    """Callable minimizing the energy-delay product (maximize 1/EDP).

    A module-level class (not a closure) so objective-carrying explorers
    pickle into engine worker processes; ``needs_context`` marks it as a
    3-argument context objective (see
    :func:`repro.explore.xpscalar.apply_objective`) and ``identity``
    folds it into run signatures.
    """

    needs_context = True

    def __init__(self, tech: TechnologyNode) -> None:
        self.tech = tech

    @property
    def identity(self) -> str:
        return "edp"

    def __call__(self, profile, config, result) -> float:
        epi = energy_per_instruction_nj(self.tech, profile, config, result)
        delay_per_instr = 1.0 / max(result.ipt, 1e-12)
        return 1.0 / (epi * delay_per_instr)


class _EpiScore:
    """Callable scoring IPT, discounted beyond an EPI cap (picklable)."""

    needs_context = True

    def __init__(self, tech: TechnologyNode, epi_budget_nj: float) -> None:
        self.tech = tech
        self.epi_budget_nj = epi_budget_nj

    @property
    def identity(self) -> str:
        return f"epi:{self.epi_budget_nj!r}"

    def __call__(self, profile, config, result) -> float:
        epi = energy_per_instruction_nj(self.tech, profile, config, result)
        overrun = max(0.0, epi / self.epi_budget_nj - 1.0)
        return result.ipt / (1.0 + overrun)


def edp_objective(tech: TechnologyNode):
    """Score hook minimizing the energy-delay product (maximize 1/EDP)."""
    return _EdpScore(tech)


def epi_objective(tech: TechnologyNode, epi_budget_nj: float):
    """Score hook: IPT, discounted beyond an energy-per-instruction cap.

    This is the EPI-throttling regime of Annavaram et al. [20]: cores may
    burn at most a budgeted energy per instruction.
    """
    if epi_budget_nj <= 0:
        raise ValueError(f"EPI budget must be positive, got {epi_budget_nj}")
    return _EpiScore(tech, epi_budget_nj)
