"""Analytical CAM (content-addressable memory) delay model.

CACTI's fully associative mode supplies the paper's wake-up and LSQ search
delays (Table 1).  A CAM search broadcasts a tag across every entry, each
entry compares locally, and a match line is resolved.  The dominant terms
are the broadcast wire (linear in the number of entries, widened by ports)
and the per-entry comparator.

The issue queue's *select* logic is modelled separately as an arbitration
tree whose depth is logarithmic in the number of entries and whose root
fans out to ``grant_count`` (issue width) grants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import TechnologyNode


@dataclass(frozen=True)
class CamGeometry:
    """Geometry of a CAM search structure.

    ``entries`` is the number of searched rows; ``tag_bits`` the compared
    width; ports follow the Table 1 conventions (wake-up uses issue-width
    read ports and zero write ports).
    """

    entries: int
    tag_bits: int = 64
    read_ports: int = 2
    write_ports: int = 0

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError(f"CAM needs at least one entry, got {self.entries}")
        if self.tag_bits < 1:
            raise ValueError(f"tag_bits must be positive, got {self.tag_bits}")
        if self.read_ports < 1:
            raise ValueError("CAM needs at least one search port")
        if self.write_ports < 0:
            raise ValueError("port counts cannot be negative")


def cam_search_ns(geometry: CamGeometry, tech: TechnologyNode) -> float:
    """Tag broadcast + per-entry compare + match-line resolution (ns)."""
    pf = tech.port_factor(geometry.read_ports, geometry.write_ports)
    broadcast = pf * tech.cam_broadcast_ns_per_entry * geometry.entries
    compare = tech.compare_ns_per_bit * geometry.tag_bits * 0.5
    matchline = tech.sram_base_ns * 0.3
    return broadcast + compare + matchline


def select_tree_ns(entries: int, grant_count: int, tech: TechnologyNode) -> float:
    """Delay of a select arbitration tree over ``entries`` requesters.

    The tree has ``log2(entries)`` levels; issuing ``grant_count``
    instructions per cycle requires replicated (cascaded) arbiters, modelled
    as a logarithmic widening term.
    """
    if entries < 1:
        raise ValueError(f"select tree needs at least one entry, got {entries}")
    if grant_count < 1:
        raise ValueError(f"grant_count must be positive, got {grant_count}")
    levels = max(1.0, math.log2(entries))
    width_factor = 1.0 + 0.35 * math.log2(grant_count) if grant_count > 1 else 1.0
    return tech.select_ns_per_level * levels * width_factor
