"""Technology and timing substrate: the reproduction's CACTI analog.

Public entry points:

* :class:`~repro.tech.technology.TechnologyNode` /
  :func:`~repro.tech.technology.default_technology` — process constants;
* :class:`~repro.tech.cacti.CactiModel` — RAM/CAM access-time model with
  CACTI's output interface (access time, tag comparison, data path);
* :mod:`~repro.tech.unitdelay` — per-architectural-unit delay functions
  implementing the paper's Table 1 mapping.
"""

from .area import area_aware_objective, core_area_mm2, unit_areas_mm2
from .power import (
    PowerEstimate,
    edp_objective,
    energy_per_instruction_nj,
    epi_objective,
    estimate_power,
)
from .array import ArrayGeometry, ArrayTiming, array_timing
from .cacti import MIN_BLOCK_BYTES, CactiModel, CactiResult
from .cam import CamGeometry, cam_search_ns, select_tree_ns
from .technology import TechnologyNode, default_technology
from .unitdelay import (
    issue_queue_ns,
    l1_cache_ns,
    l2_cache_ns,
    lsq_ns,
    regfile_ns,
    select_ns,
    wakeup_ns,
)

__all__ = [
    "area_aware_objective",
    "core_area_mm2",
    "unit_areas_mm2",
    "PowerEstimate",
    "edp_objective",
    "energy_per_instruction_nj",
    "epi_objective",
    "estimate_power",
    "ArrayGeometry",
    "ArrayTiming",
    "array_timing",
    "CactiModel",
    "CactiResult",
    "MIN_BLOCK_BYTES",
    "CamGeometry",
    "cam_search_ns",
    "select_tree_ns",
    "TechnologyNode",
    "default_technology",
    "issue_queue_ns",
    "l1_cache_ns",
    "l2_cache_ns",
    "lsq_ns",
    "regfile_ns",
    "select_ns",
    "wakeup_ns",
]
