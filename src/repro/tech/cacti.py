"""CACTI-style cache access and cycle time model.

The paper drives exploration with the CACTI tool of Wilton & Jouppi,
consuming three of its outputs (Table 1): the full *access time*, the *tag
comparison* time (for associative searches), and the *total data-path
without output driver*.  :class:`CactiModel` reproduces that interface on
top of the analytical :mod:`repro.tech.array` and :mod:`repro.tech.cam`
models.

Like the real tool, the model refuses block sizes below 8 bytes (the paper
notes "CACTI does not produce accurate modeling for block sizes smaller
than 8 bytes" and uses 8 bytes as the width of issue-queue entries).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TimingError
from .array import ArrayGeometry, ArrayTiming, array_timing
from .cam import CamGeometry, cam_search_ns
from .technology import TechnologyNode

MIN_BLOCK_BYTES = 8


@dataclass(frozen=True)
class CactiResult:
    """The subset of CACTI outputs consumed by the exploration tool.

    Attributes mirror Table 1's "used component of CACTI output" column:

    * ``access_time_ns`` — full read access (decoder through output driver);
    * ``tag_comparison_ns`` — associative tag match (the wake-up component);
    * ``datapath_ns`` — total data-path without the output driver (the
      select and LSQ component).
    """

    access_time_ns: float
    tag_comparison_ns: float
    datapath_ns: float


class CactiModel:
    """Access-time model for RAM and CAM structures in one technology node.

    Solutions are memoized per geometry: the model is pure per technology
    node, and exploration re-times the same handful of structures on
    every move, so repeat geometries are answered from ``_memo`` (hit
    and miss counts are kept on ``memo_hits``/``memo_misses``).
    """

    def __init__(self, tech: TechnologyNode) -> None:
        self._tech = tech
        self._memo: dict[tuple, CactiResult] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    @property
    def tech(self) -> TechnologyNode:
        """The technology node this model is instantiated for."""
        return self._tech

    def ram(
        self,
        nsets: int,
        assoc: int,
        block_bytes: int,
        read_ports: int,
        write_ports: int,
    ) -> CactiResult:
        """Model a set-associative or direct-mapped RAM structure.

        Raises :class:`TimingError` for block sizes below 8 bytes, matching
        the real tool's accuracy floor.
        """
        if block_bytes < MIN_BLOCK_BYTES:
            raise TimingError(
                f"CACTI model is inaccurate below {MIN_BLOCK_BYTES}-byte blocks "
                f"(got {block_bytes})"
            )
        key = ("ram", nsets, assoc, block_bytes, read_ports, write_ports)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        geometry = ArrayGeometry(
            nsets=nsets,
            assoc=assoc,
            line_bits=block_bytes * 8,
            read_ports=read_ports,
            write_ports=write_ports,
        )
        timing: ArrayTiming = array_timing(geometry, self._tech)
        result = CactiResult(
            access_time_ns=timing.access_ns,
            tag_comparison_ns=timing.compare_ns,
            datapath_ns=timing.datapath_ns,
        )
        self._memo[key] = result
        return result

    def cam(
        self,
        entries: int,
        block_bytes: int,
        read_ports: int,
        write_ports: int = 0,
    ) -> CactiResult:
        """Model a fully associative (CAM) search structure.

        For a CAM the "tag comparison" output is the full search (broadcast
        + compare + match), which is what the wake-up logic uses.
        """
        if block_bytes < MIN_BLOCK_BYTES:
            raise TimingError(
                f"CACTI model is inaccurate below {MIN_BLOCK_BYTES}-byte blocks "
                f"(got {block_bytes})"
            )
        key = ("cam", entries, block_bytes, read_ports, write_ports)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        geometry = CamGeometry(
            entries=entries,
            tag_bits=block_bytes * 8,
            read_ports=read_ports,
            write_ports=write_ports,
        )
        search = cam_search_ns(geometry, self._tech)
        # Reading out the matched entry adds a RAM-style data-path.
        data = array_timing(
            ArrayGeometry(
                nsets=1 if entries == 1 else _next_pow2(entries),
                assoc=1,
                line_bits=block_bytes * 8,
                read_ports=read_ports,
                write_ports=max(1, write_ports),
            ),
            self._tech,
        )
        result = CactiResult(
            access_time_ns=search + data.output_ns,
            tag_comparison_ns=search,
            datapath_ns=search + data.sense_ns,
        )
        self._memo[key] = result
        return result


def _next_pow2(n: int) -> int:
    """Smallest power of two >= n."""
    return 1 << (n - 1).bit_length() if n > 1 else 1
