"""Command-line interface: regenerate any paper artifact from a shell.

Examples::

    python -m repro customize mcf
    python -m repro customize gzip mcf --jobs 2        # parallel suite run
    python -m repro customize mcf --strategy multistart --restarts 4
    python -m repro table 5 --iterations 1200 --jobs 4
    python -m repro table 5 --cache-dir .repro-cache   # warm-cache reruns
    python -m repro figure 7
    python -m repro sweep gzip --clocks 0.18 0.30 0.42
    python -m repro search-compare gzip mcf --iterations 400 --max-evals 500
    python -m repro validate
    python -m repro pipeline --run-dir runs/full           # durable run
    python -m repro resume runs/full                       # after a kill
    python -m repro runs list && python -m repro runs verify runs/full

Every exploration-running command accepts the engine flags: ``--jobs N``
(worker processes), ``--cache-dir DIR`` (persistent result cache +
checkpoint), ``--no-cache`` (simulate everything), ``--resume`` (continue
an interrupted exploration from the checkpoint in ``--cache-dir``),
``--stats`` (print evaluation counts, cache hit rate, per-phase wall
time and resilience counters when done), plus the resilience knobs:
``--retries N`` and ``--task-timeout S`` (see ``docs/resilience.md``)
and the chaos-testing hook ``--inject-faults SPEC`` (also honoured from
the ``REPRO_INJECT_FAULTS`` environment variable), e.g.
``--inject-faults 'seed=7,crash=0.05,hang=0.02'``.

``--run-dir DIR`` upgrades any of those commands to a *supervised run*
(see ``docs/runs.md``): DIR gets a versioned manifest, an exclusive
lock, the cache/checkpoints (under ``DIR/state``), a durable event
journal (``DIR/events.jsonl``), and the produced artifacts;
SIGINT/SIGTERM interrupt it cleanly (exit ``128+signum``) and
``repro resume DIR`` continues it with the original arguments.

Observability (see ``docs/observability.md``): ``--journal FILE``
journals any invocation, ``--metrics-out FILE`` exports counters and
latency histograms (Prometheus textfile format, or JSON for ``.json``
paths), and ``repro trace summary|slowest|critical-path|export`` reads
a journal back to answer "where did the time go"::

    python -m repro pipeline --run-dir runs/full --metrics-out metrics.prom
    python -m repro trace summary runs/full
    python -m repro trace slowest runs/full --top 20
    python -m repro trace export runs/full --out trace.json
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import Sequence

from .communal import surrogate_merits
from .communal.combination import DEFAULT_BEAM_WIDTH
from .communal.merit import MERITS
from .design import (
    OBJECTIVE_NAMES,
    ConstraintSet,
    DesignError,
    ParetoExplorer,
    best_homogeneous,
    build_design_matrix,
    hetero_search,
    make_objective,
)
from .engine import (
    CheckpointManager,
    EvaluationEngine,
    FaultPlan,
    ProgressLine,
    RetryPolicy,
    RunDirectory,
    RunInterrupted,
    RunJournal,
    ShutdownCoordinator,
    TelemetryCollector,
    digest,
    list_runs,
)
from .engine import trace as trace_analysis
from .engine import bench as engine_bench
from .errors import RunError
from .experiments import (
    build_engine,
    write_artifact,
    figure1,
    figure2_scenarios,
    figure4,
    figure6,
    figure7,
    figure8,
    render_kv,
    render_matrix,
    render_surrogate_graph,
    render_table,
    run_pipeline,
    table1_unit_delays,
    table2_fixed_parameters,
    table3_initial_configuration,
    table4_rows,
    table6_rows,
    table7_summary,
)
from .errors import ReproError
from .explore import AnnealingSchedule, ClockSweep, XpScalar
from .search import SearchBudget, strategy_names
from .search.compare import compare_strategies
from .sim import validate_interval_model
from .uarch import initial_configuration
from .workloads import SPEC2000_INT_NAMES, spec2000_profile, spec2000_profiles


def _engine_options() -> argparse.ArgumentParser:
    """Shared evaluation-engine flags (a parent parser)."""
    p = argparse.ArgumentParser(add_help=False)
    group = p.add_argument_group("evaluation engine")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel evaluation, clamped to "
             "available cores (default: 1, serial)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="directory for the persistent result cache and checkpoint",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable result caching (every evaluation simulates)",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted exploration from --cache-dir's checkpoint",
    )
    group.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="supervise this invocation as a durable run under DIR: "
             "manifest + lock + checkpoints + artifacts, clean "
             "SIGINT/SIGTERM shutdown, `repro resume DIR` to continue "
             "(see docs/runs.md)",
    )
    group.add_argument(
        "--stats", action="store_true",
        help="print evaluation/cache/phase statistics when done",
    )
    group.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append every engine event to FILE as a JSONL journal "
             "(--run-dir runs journal to <run-dir>/events.jsonl "
             "automatically; see docs/observability.md)",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write engine metrics (counters + latency histograms) on "
             "exit: Prometheus textfile format, or JSON when FILE ends "
             "in .json",
    )
    group.add_argument(
        "--no-progress", action="store_true",
        help="suppress the TTY heartbeat/progress line on stderr",
    )
    group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per failing evaluation before giving up "
             "(default: 3)",
    )
    group.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="per-task deadline in seconds under --jobs > 1; a task "
             "overrunning it is retried on a fresh pool (default: none)",
    )
    group.add_argument(
        "--inject-faults", default=os.environ.get("REPRO_INJECT_FAULTS"),
        metavar="SPEC",
        help="arm deterministic fault injection for chaos testing, e.g. "
             "'seed=7,crash=0.05,hang=0.02,wrong=0.01' "
             "(default: $REPRO_INJECT_FAULTS)",
    )
    return p


def _search_options() -> argparse.ArgumentParser:
    """Shared search-strategy flags (a parent parser)."""
    p = argparse.ArgumentParser(add_help=False)
    group = p.add_argument_group("search strategy")
    group.add_argument(
        "--strategy", choices=strategy_names(), default="anneal",
        help="design-space search policy (default: anneal, the paper's "
             "simulated annealing)",
    )
    group.add_argument(
        "--max-evals", type=int, default=None, metavar="N",
        help="stop each search after N fitness evaluations",
    )
    group.add_argument(
        "--max-moves", type=int, default=None, metavar="N",
        help="stop each search after N move proposals",
    )
    group.add_argument(
        "--patience", type=int, default=None, metavar="N",
        help="stop each search after N consecutive moves without a new "
             "best score",
    )
    group.add_argument(
        "--restarts", type=int, default=4, metavar="N",
        help="independent restarts for multi-start strategies "
             "(default: 4; other strategies ignore it)",
    )
    group.add_argument(
        "--search-batch", type=int, default=1, metavar="N",
        help="evaluate N candidates per round through the vectorized "
             "batch model (anneal/hillclimb; default: 1 keeps the "
             "sequential, signature-stable walk)",
    )
    return p


def _envelope_options(with_objective: bool) -> argparse.ArgumentParser:
    """Shared design-envelope flags (a parent parser).

    ``with_objective`` adds ``--objective`` for the commands that run a
    single-objective search (customize/sweep); the multi-objective
    commands (pareto/hetero) take the budgets alone.
    """
    p = argparse.ArgumentParser(add_help=False)
    group = p.add_argument_group("design envelope")
    if with_objective:
        group.add_argument(
            "--objective", choices=OBJECTIVE_NAMES, default="ipt",
            help="figure of merit to optimize: ipt (the paper's default), "
                 "edp (inverse energy-delay product), ed2 (inverse "
                 "energy-delay^2), epi (IPT under --epi-budget), or "
                 "envelope (IPT discounted by every active budget overrun; "
                 "see docs/design.md)",
        )
    group.add_argument(
        "--power-budget", type=float, default=None, metavar="W",
        help="peak-power envelope in watts (per core; hetero also caps "
             "the sum over the chosen combination)",
    )
    group.add_argument(
        "--area-budget", type=float, default=None, metavar="MM2",
        help="die-area envelope in mm^2 (per core; hetero also caps the "
             "sum over the chosen combination)",
    )
    group.add_argument(
        "--epi-budget", type=float, default=None, metavar="NJ",
        help="energy-per-instruction budget in nanojoules per core",
    )
    return p


def _constraints(args) -> ConstraintSet:
    """The :class:`ConstraintSet` implied by the envelope flags."""
    return ConstraintSet(
        peak_power_w=getattr(args, "power_budget", None),
        area_mm2=getattr(args, "area_budget", None),
        epi_budget_nj=getattr(args, "epi_budget", None),
    )


def _objective_kwargs(args) -> dict:
    """``XpScalar`` objective override per ``--objective`` (empty for ipt)."""
    from .tech import default_technology

    objective = make_objective(
        getattr(args, "objective", "ipt"), default_technology(), _constraints(args)
    )
    return {} if objective is None else {"objective": objective}


def _search_budget(args) -> SearchBudget | None:
    """The uniform budget implied by search flags (None when unbounded)."""
    if (
        getattr(args, "max_evals", None) is None
        and getattr(args, "max_moves", None) is None
        and getattr(args, "patience", None) is None
    ):
        return None
    return SearchBudget(
        max_evaluations=args.max_evals,
        max_moves=args.max_moves,
        plateau_patience=args.patience,
    )


def _resilience(args) -> tuple[RetryPolicy | None, FaultPlan | None]:
    """The retry policy and fault plan implied by engine flags."""
    policy = None
    if args.retries is not None or args.task_timeout is not None:
        defaults = RetryPolicy()
        policy = RetryPolicy(
            max_retries=args.retries if args.retries is not None
            else defaults.max_retries,
            timeout_s=args.task_timeout,
        )
    faults = FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    return policy, faults


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Configurational Workload Characterization' "
        "(ISPASS 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine_opts = _engine_options()
    search_opts = _search_options()
    objective_opts = _envelope_options(with_objective=True)
    envelope_opts = _envelope_options(with_objective=False)

    p = sub.add_parser(
        "customize",
        parents=[engine_opts, search_opts, objective_opts],
        help="customize a core per benchmark (cross-seeded when several)",
    )
    p.add_argument("benchmark", nargs="+", choices=SPEC2000_INT_NAMES)
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("table", parents=[engine_opts, search_opts],
                       help="regenerate a table of the paper")
    p.add_argument("which", choices=["1", "2", "3", "4", "5", "6", "7", "a"])
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--seed", type=int, default=2008)

    p = sub.add_parser("figure", parents=[engine_opts, search_opts],
                       help="regenerate a figure of the paper")
    p.add_argument("which", choices=["1", "2", "4", "6", "7", "8"])
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--seed", type=int, default=2008)

    p = sub.add_parser("sweep", parents=[engine_opts, search_opts, objective_opts],
                       help="pinned-clock sweep for one benchmark")
    p.add_argument("benchmark", choices=SPEC2000_INT_NAMES)
    p.add_argument("--clocks", type=float, nargs="+", default=None)
    p.add_argument("--iterations", type=int, default=600)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "pareto", parents=[engine_opts, envelope_opts],
        help="sweep the design space into per-benchmark (IPT, power, "
             "area) Pareto fronts (see docs/design.md)",
    )
    p.add_argument("benchmark", nargs="+", choices=SPEC2000_INT_NAMES)
    p.add_argument("--samples", type=int, default=128, metavar="N",
                   help="design points in the seeded space walk, each "
                        "evaluated in both core types (default: 128)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="print only the N best-IPT front rows per benchmark")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write every front as JSON to FILE")

    p = sub.add_parser(
        "hetero", parents=[engine_opts, search_opts, envelope_opts],
        help="search the best heterogeneous k-core combination (core "
             "type + count) under a shared power/area envelope",
    )
    p.add_argument("benchmark", nargs="+", choices=SPEC2000_INT_NAMES)
    p.add_argument("--cores", "-k", type=int, default=2, metavar="K",
                   help="cores in the combination (default: 2)")
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--merit", choices=tuple(MERITS), default="cw-har",
                   help="figure of merit over the workload population "
                        "(default: cw-har)")
    p.add_argument("--mode", choices=["auto", "exact", "beam"], default="auto",
                   help="combination enumeration: exact, beam, or auto "
                        "(exact while the count stays tractable)")
    p.add_argument("--beam-width", type=int, default=DEFAULT_BEAM_WIDTH,
                   metavar="N",
                   help=f"partial combinations kept per beam level "
                        f"(default: {DEFAULT_BEAM_WIDTH})")
    p.add_argument("--no-inorder", action="store_true",
                   help="offer only the out-of-order candidates (no @io twins)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the result as JSON to FILE")

    p = sub.add_parser(
        "search-compare", parents=[engine_opts, search_opts],
        help="run every search strategy on the same benchmarks and rank "
             "them on a quality/cost table",
    )
    p.add_argument("benchmark", nargs="+", choices=SPEC2000_INT_NAMES)
    p.add_argument("--iterations", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--strategies", nargs="+", choices=strategy_names(), default=None,
        help="strategies to compare (default: all registered)",
    )
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the comparison as JSON to FILE",
    )

    p = sub.add_parser(
        "validate", help="cross-validate the interval model against the cycle simulator"
    )
    p.add_argument("--trace-length", type=int, default=12000)

    p = sub.add_parser(
        "report", parents=[engine_opts, search_opts],
        help="regenerate every table/figure artifact into a directory",
    )
    p.add_argument("--out", default="results")
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--seed", type=int, default=2008)

    p = sub.add_parser(
        "pipeline", parents=[engine_opts, search_opts],
        help="run the full pipeline as a durable, resumable run "
             "(exploration + cross matrix + report artifacts)",
    )
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--seed", type=int, default=2008)
    p.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory (default: <run-dir>/artifacts)",
    )

    p = sub.add_parser(
        "resume",
        help="continue an interrupted supervised run with its original "
             "arguments",
    )
    p.add_argument("run_dir", metavar="RUN_DIR")

    p = sub.add_parser("runs", help="inspect supervised run directories")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    lp = runs_sub.add_parser("list", help="list run directories under a root")
    lp.add_argument(
        "--root", default="runs", metavar="DIR",
        help="directory holding run directories (default: runs)",
    )
    vp = runs_sub.add_parser(
        "verify",
        help="re-checksum a run's recorded artifacts and report corruption",
    )
    vp.add_argument("run_dir", metavar="RUN_DIR")
    vp.add_argument(
        "--quarantine", action="store_true",
        help="move corrupt artifacts aside (<name>.corrupt) so a resume "
             "cannot consume them",
    )

    p = sub.add_parser(
        "serve",
        help="run the long-lived exploration service: submit jobs over "
             "HTTP, stream progress as SSE, share one result store "
             "across replicas (see docs/serve.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="TCP port (default: 8023; 0 picks an ephemeral port)")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="concurrent job slots / engine leases (default: 2)")
    p.add_argument(
        "--cache-backend", default="memory", metavar="SPEC",
        help="shared result store: 'memory', 'sqlite:<file>', "
             "'file:<dir>', or 'none' (default: memory; use one "
             "sqlite:<file> across replicas to share results)",
    )
    p.add_argument(
        "--tenant-budget", default=None, metavar="SPEC",
        help="per-tenant limits, e.g. "
             "'queued=16,running=2,evals=5000,moves=8000,patience=500'",
    )
    p.add_argument("--max-queued", type=int, default=64, metavar="N",
                   help="global admission queue bound (default: 64)")
    p.add_argument("--serve-dir", default=None, metavar="DIR",
                   help="directory for per-job event journals "
                        "(default: a temp dir)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the serve metrics registry on exit "
                        "(Prometheus textfile, or JSON for .json paths)")
    p.add_argument("--replica-id", default=None, metavar="ID",
                   help="stable replica identity stamped on journals and "
                        "surfaced by /v1/healthz (default: host:pid)")

    p = sub.add_parser(
        "client",
        help="talk to a running exploration service "
             "(submit/status/result/watch/list)",
    )
    p.add_argument(
        "--url", default=os.environ.get("REPRO_SERVE_URL", "http://127.0.0.1:8023"),
        help="service base URL (default: $REPRO_SERVE_URL or "
             "http://127.0.0.1:8023)",
    )
    client_sub = p.add_subparsers(dest="client_command", required=True)
    sp = client_sub.add_parser("submit", help="submit one job")
    sp.add_argument(
        "kind",
        choices=["customize", "sweep", "cross-matrix", "search-compare",
                 "pareto"],
    )
    sp.add_argument("benchmark", nargs="+", choices=SPEC2000_INT_NAMES)
    sp.add_argument("--samples", type=int, default=None, metavar="N",
                    help="design points for pareto jobs")
    sp.add_argument("--iterations", type=int, default=None)
    sp.add_argument("--seed", type=int, default=None)
    sp.add_argument("--strategy", choices=strategy_names(), default=None)
    sp.add_argument("--restarts", type=int, default=None)
    sp.add_argument("--max-evals", type=int, default=None)
    sp.add_argument("--max-moves", type=int, default=None)
    sp.add_argument("--patience", type=int, default=None)
    sp.add_argument("--clocks", type=float, nargs="+", default=None)
    sp.add_argument("--strategies", nargs="+", choices=strategy_names(),
                    default=None)
    sp.add_argument("--tenant", default=None)
    sp.add_argument("--wait", action="store_true",
                    help="block until the job finishes and print its result")
    sp.add_argument("--stream", action="store_true",
                    help="stream progress events (SSE), then print the result")
    sp = client_sub.add_parser("status", help="one job's state")
    sp.add_argument("job_id")
    sp = client_sub.add_parser("result", help="one finished job's result")
    sp.add_argument("job_id")
    sp = client_sub.add_parser(
        "watch", help="stream a job's events (reconnects resume losslessly)"
    )
    sp.add_argument("job_id")
    sp.add_argument("--after", type=int, default=0, metavar="SEQ",
                    help="resume after this event sequence number")
    sp.add_argument("--json", action="store_true",
                    help="one JSON object per event (machine form; the "
                         "default human lines surface trace ids)")
    client_sub.add_parser("list", help="every job the service knows")
    client_sub.add_parser("health", help="service liveness")

    p = sub.add_parser(
        "serve-bench",
        help="load-test a service (self-booted unless --url) and write "
             "latency percentiles + cache-hit rate to BENCH_serve.json",
    )
    p.add_argument("--url", default=None,
                   help="target an already-running service instead of "
                        "booting one in-process")
    p.add_argument("--jobs", type=int, default=12, metavar="N",
                   help="total jobs to submit (default: 12)")
    p.add_argument("--clients", type=int, default=4, metavar="N",
                   help="concurrent client threads (default: 4)")
    p.add_argument("--iterations", type=int, default=40, metavar="N",
                   help="annealing iterations per job (default: 40)")
    p.add_argument("--repeat-every", type=int, default=3, metavar="N",
                   help="every Nth job repeats the first spec verbatim "
                        "(default: 3)")
    p.add_argument("--service-jobs", type=int, default=2, metavar="N",
                   help="job slots for the self-booted service (default: 2)")
    p.add_argument("--cache-backend", default=None, metavar="SPEC",
                   help="backend for the self-booted service "
                        "(default: sqlite under a temp dir)")
    p.add_argument("--out", default="BENCH_serve.json", metavar="FILE",
                   help="report path (default: BENCH_serve.json)")
    p.add_argument("--check-slo", nargs="?", const="SLO.json", default=None,
                   metavar="SLO_FILE",
                   help="after the run, check the report against a "
                        "committed SLO file (default file: SLO.json); "
                        "exit nonzero on violation")

    p = sub.add_parser(
        "chaos",
        help="network-chaos acceptance run: replicas behind seeded fault "
             "proxies versus a fault-free baseline; exits nonzero on any "
             "non-identical result (see docs/serve.md)",
    )
    p.add_argument("--benchmark", nargs="+", default=["gzip"],
                   choices=SPEC2000_INT_NAMES,
                   help="one job per benchmark (default: gzip)")
    p.add_argument("--iterations", type=int, default=20, metavar="N",
                   help="annealing iterations per job (default: 20)")
    p.add_argument("--seed", type=int, default=5,
                   help="job seed of the first payload; later payloads "
                        "increment it (default: 5)")
    p.add_argument("--replicas", type=int, default=2, metavar="N",
                   help="service replicas behind fault proxies (default: 2)")
    p.add_argument(
        "--faults",
        default="seed=11,refuse=0.08,reset=0.06,truncate=0.06,"
                "error5xx=0.1,delay=0.08,delay-s=0.05",
        metavar="SPEC",
        help="seeded network fault plan, e.g. "
             "'seed=7,refuse=0.1,reset=0.05,truncate=0.05,error5xx=0.1,"
             "delay=0.1,delay-s=0.2,max-consecutive=2' (replayable: the "
             "same spec injects the same fault sequence)",
    )
    p.add_argument("--kill-one", action="store_true",
                   help="kill the replica that served the first job "
                        "mid-run; the survivors must finish the work")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="scratch directory for stores and journals "
                        "(default: a temp dir)")
    p.add_argument("--journal", default=None, metavar="FILE",
                   help="append every proxied connection's fate as JSON "
                        "lines (the chaos artifact CI uploads)")
    p.add_argument("--timeout", type=float, default=600.0, metavar="S",
                   help="per-job wait budget in seconds (default: 600)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the full chaos report (summary + journal) "
                        "as JSON")
    p.add_argument("--fleet-trace", default=None, metavar="FILE",
                   help="after the run, stitch every replica journal and "
                        "write the merged Chrome trace to FILE (the fleet "
                        "trace artifact CI uploads)")

    p = sub.add_parser(
        "bench-engine",
        help="benchmark scalar vs vectorized batch evaluation and write "
             "configs/sec + speedups to BENCH_engine.json",
    )
    p.add_argument("--profile", default="gzip", choices=SPEC2000_INT_NAMES,
                   help="workload profile to evaluate (default: gzip)")
    p.add_argument("--configs", type=int, default=512, metavar="N",
                   help="length of the seeded design-space walk "
                        "(default: 512)")
    p.add_argument("--batch-sizes", type=int, nargs="+",
                   default=list(engine_bench.DEFAULT_BATCH_SIZES), metavar="N",
                   help="batch widths to sweep (default: 16 64 256 512)")
    p.add_argument("--repeats", type=int, default=3, metavar="N",
                   help="timing repeats per measurement, best is kept "
                        "(default: 3)")
    p.add_argument("--seed", type=int, default=7,
                   help="seed for the config walk (default: 7)")
    p.add_argument("--out", default="BENCH_engine.json", metavar="FILE",
                   help="report path (default: BENCH_engine.json)")

    p = sub.add_parser(
        "trace",
        help="analyze a run's event journal: where did the time go? "
             "(see docs/observability.md)",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    def _journal_args(sp) -> None:
        sp.add_argument("target", nargs="?", default=None,
                        metavar="RUN_DIR_OR_JOURNAL")
        sp.add_argument("--journal", action="append", default=None,
                        metavar="PATH",
                        help="read this journal file/dir (repeatable; "
                             "multiple journals are concatenated)")

    sp = trace_sub.add_parser(
        "summary",
        help="phase totals, evaluation/cache counts, search breakdowns",
    )
    _journal_args(sp)
    sp.add_argument("--json", action="store_true",
                    help="emit the summary as JSON instead of text")
    sp = trace_sub.add_parser(
        "slowest", help="the top-N slowest worker tasks/evaluations"
    )
    _journal_args(sp)
    sp.add_argument("--top", type=int, default=10, metavar="N",
                    help="how many tasks to show (default: 10)")
    sp = trace_sub.add_parser(
        "critical-path",
        help="the chain of nested spans dominating the run's wall clock",
    )
    _journal_args(sp)
    sp = trace_sub.add_parser(
        "export",
        help="export the journal as Chrome trace-event JSON "
             "(chrome://tracing, ui.perfetto.dev)",
    )
    _journal_args(sp)
    sp.add_argument("--out", default=None, metavar="FILE",
                    help="write to FILE instead of stdout")
    sp = trace_sub.add_parser(
        "fleet",
        help="stitch multiple replica journals into one span tree with "
             "skew alignment; render cross-replica critical paths and "
             "failover seams (see docs/observability.md)",
    )
    sp.add_argument("journals", nargs="+", metavar="SERVE_DIR_OR_JOURNAL",
                    help="replica serve dirs and/or journal files")
    sp.add_argument("--trace", default=None, metavar="TRACE_ID",
                    help="restrict to one distributed trace id")
    sp.add_argument("--json", action="store_true",
                    help="emit the stitched summary as JSON")
    sp.add_argument("--export", default=None, metavar="FILE",
                    help="also write the merged Chrome trace to FILE")

    p = sub.add_parser(
        "fleet",
        help="operate on a fleet of serve replicas: aggregate status "
             "and metrics across every replica's API",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    for name, blurb in (
        ("status", "per-replica health/jobs one-liners + fleet totals"),
        ("metrics", "merged Prometheus metrics (histograms summed "
                    "bucket-wise) with per-replica JSON breakdown"),
    ):
        sp = fleet_sub.add_parser(name, help=blurb)
        sp.add_argument("--url", action="append", required=True,
                        metavar="URL", dest="urls",
                        help="replica base URL (repeatable)")
        sp.add_argument("--json", action="store_true",
                        help="emit the full JSON snapshot")
        sp.add_argument("--out", default=None, metavar="FILE",
                        help="write the output to FILE (metrics: "
                             "Prometheus textfile, or JSON for .json "
                             "paths)")
        sp.add_argument("--timeout", type=float, default=10.0, metavar="S",
                        help="per-replica scrape timeout (default: 10)")

    p = sub.add_parser(
        "bench-compare",
        help="diff current bench reports against committed ones with "
             "tolerances; optionally check the serve report against "
             "SLO.json — exits nonzero on regression (the CI perf gate)",
    )
    p.add_argument("--serve", default="BENCH_serve.json", metavar="FILE",
                   help="current serve bench report "
                        "(default: BENCH_serve.json)")
    p.add_argument("--engine", default="BENCH_engine.json", metavar="FILE",
                   help="current engine bench report "
                        "(default: BENCH_engine.json)")
    p.add_argument("--committed", default=".", metavar="DIR",
                   help="directory holding the committed BENCH_*.json "
                        "(default: the repo root)")
    p.add_argument("--latency-tolerance", type=float, default=1.0,
                   metavar="FRAC",
                   help="allowed fractional p99 latency growth "
                        "(default: 1.0 = up to 2x)")
    p.add_argument("--throughput-tolerance", type=float, default=0.6,
                   metavar="FRAC",
                   help="allowed fractional throughput loss "
                        "(default: 0.6 = down to 0.4x)")
    p.add_argument("--speedup-tolerance", type=float, default=0.5,
                   metavar="FRAC",
                   help="allowed fractional engine-speedup loss "
                        "(default: 0.5 = down to 0.5x)")
    p.add_argument("--check-slo", nargs="?", const="SLO.json", default=None,
                   metavar="SLO_FILE",
                   help="also check the current serve report against "
                        "this SLO file (default file: SLO.json)")
    p.add_argument("--json", action="store_true",
                   help="emit the comparison as JSON")

    return parser


def _build_engine(args) -> EvaluationEngine:
    policy, faults = _resilience(args)
    engine = build_engine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        policy=policy,
        faults=faults,
    )
    run = getattr(args, "_run", None)
    if run is not None:
        # Route durability events (storage_degraded, lock_takeover,
        # quarantine) through the engine bus and mirror engine phases
        # and checkpoint heartbeats into the run manifest.
        run.events = engine.events
        run.lock.events = engine.events
        run.attach_engine(engine.events)
    _attach_telemetry(args, engine)
    return engine


def _attach_telemetry(args, engine: EvaluationEngine) -> None:
    """Hook the journal, metrics collector and TTY heartbeat to the bus.

    All three are strictly passive subscribers: they never touch stdout
    (the golden/determinism suites diff stdout) and never change what
    the engine computes.  A run directory journals automatically;
    ``--journal`` opts standalone invocations in.
    """
    run = getattr(args, "_run", None)
    journal_path = getattr(args, "journal", None)
    if journal_path is None and run is not None:
        journal_path = run.journal_path
    if journal_path is not None:
        args._journal = RunJournal(journal_path).attach(engine.events)
    if getattr(args, "metrics_out", None) is not None:
        args._collector = TelemetryCollector(engine.events)
    if not getattr(args, "no_progress", False):
        heartbeat = ProgressLine(engine.events)
        if heartbeat.active:
            args._heartbeat = heartbeat
        else:
            heartbeat.close()  # non-TTY: don't even subscribe


def _finish(args, engine: EvaluationEngine | None) -> int:
    """Common epilogue: flush the engine and honour ``--stats``."""
    heartbeat = getattr(args, "_heartbeat", None)
    if heartbeat is not None:
        heartbeat.close()
    if engine is not None:
        if getattr(args, "stats", False):
            print(f"--- engine stats ---\n{engine.metrics.summary()}")
        engine.close()
    collector = getattr(args, "_collector", None)
    if collector is not None:
        collector.registry.write(pathlib.Path(args.metrics_out))
    journal = getattr(args, "_journal", None)
    if journal is not None:
        journal.close()
    return 0


def _pipeline(args):
    explorer = XpScalar(
        schedule=AnnealingSchedule(iterations=args.iterations),
        engine=_build_engine(args),
        strategy=getattr(args, "strategy", "anneal"),
        budget=_search_budget(args),
        restarts=getattr(args, "restarts", 4),
        search_batch=getattr(args, "search_batch", 1),
    )
    return run_pipeline(
        explorer=explorer,
        seed=args.seed,
        cache_dir=args.cache_dir,
        resume=args.resume,
    )


def _persist_run_artifact(args, name: str, text: str) -> None:
    """Under ``--run-dir``, persist a rendered result as a run artifact."""
    run = getattr(args, "_run", None)
    if run is None:
        return
    path = run.artifact_dir / name
    write_artifact(path, text)
    run.record_artifact(path)


def _strip_resume(argv: Sequence[str]) -> list[str]:
    """The invocation minus ``--resume``: resuming is implied by run state."""
    return [token for token in argv if token != "--resume"]


def _orchestrated(args, fn) -> int:
    """Run ``fn(args)`` as a supervised run inside ``args.run_dir``.

    A fresh directory is initialized with a manifest recording the
    invocation; an existing one is resumed — provided it was created by
    the same command line (minus ``--resume``), so a resumed run cannot
    silently compute something different from what the manifest claims.
    """
    path = pathlib.Path(args.run_dir)
    argv = _strip_resume(getattr(args, "_argv", []))
    if (path / "manifest.json").exists():
        run = RunDirectory.open(path)
        if run.manifest.command != args.command or run.manifest.args_digest != digest(argv):
            raise RunError(
                f"{path} holds a different run "
                f"({' '.join(run.manifest.argv)!r}); refusing to resume it "
                f"with {' '.join(argv)!r} — use a fresh --run-dir"
            )
        args.resume = True
        print(f"resuming run {run.manifest.run_id} in {path}")
    else:
        run = RunDirectory.create(path, args.command, argv)
    if args.cache_dir is None:
        args.cache_dir = str(run.state_dir)
    args._run = run
    coordinator = ShutdownCoordinator()
    try:
        with run.supervise(coordinator):
            return fn(args)
    except RunInterrupted:
        print(
            f"interrupted; the run is resumable:\n  repro resume {path}",
            file=sys.stderr,
        )
        raise


def cmd_customize(args) -> int:
    engine = _build_engine(args)
    xp = XpScalar(
        schedule=AnnealingSchedule(iterations=args.iterations),
        engine=engine,
        strategy=args.strategy,
        budget=_search_budget(args),
        restarts=args.restarts,
        search_batch=args.search_batch,
        **_objective_kwargs(args),
    )
    profiles = [spec2000_profile(name) for name in args.benchmark]
    if len(profiles) == 1:
        results = {profiles[0].name: xp.customize(profiles[0], seed=args.seed)}
    else:
        checkpoint = None
        if args.cache_dir is not None:
            checkpoint = CheckpointManager(
                pathlib.Path(args.cache_dir) / "checkpoint.json"
            )
        results = xp.customize_all(
            profiles, seed=args.seed, checkpoint=checkpoint, resume=args.resume
        )
    objective = getattr(args, "objective", "ipt")
    label = "IPT" if objective == "ipt" else f"{objective} score"
    lines = []
    for name in args.benchmark:
        result = results[name]
        evaluations = result.annealing.evaluations if result.annealing else 0
        seeded = f" (adopted from {result.cross_seeded_from})" if result.cross_seeded_from else ""
        lines.append(f"{name}: {label} {result.score:.2f} ({evaluations} evaluations){seeded}")
        lines.append(result.config.describe())
    text = "\n".join(lines)
    print(text)
    _persist_run_artifact(args, "customize.txt", text)
    return _finish(args, engine)


def cmd_table(args) -> int:
    which = args.which
    if which == "1":
        config = initial_configuration(XpScalar().tech)
        print(render_kv({k: f"{v:.3f} ns" for k, v in table1_unit_delays(config).items()},
                        title="Table 1: unit delays (Table 3 configuration)"))
        return 0
    if which == "2":
        print(render_kv(table2_fixed_parameters(), title="Table 2: fixed parameters"))
        return 0
    if which == "3":
        print("Table 3: initial configuration")
        print(table3_initial_configuration().describe())
        return 0

    pipe = _pipeline(args)
    cross = pipe.cross
    if which == "4":
        headers, rows = table4_rows(pipe.characteristics, list(cross.names))
        print(render_table(headers, rows, title="Table 4: customized configurations"))
    elif which == "5":
        print(render_matrix(list(cross.names), cross.ipt,
                            title="Table 5: cross-configuration IPT"))
    elif which == "6":
        print("Table 6: best core combinations")
        for row in table6_rows(cross):
            c = row.combination
            print(f"  {row.label:35s} {', '.join(c.configs):30s} "
                  f"avg {c.average:.2f}  har {c.harmonic:.2f}  "
                  f"cw {c.contention_weighted:.2f}")
    elif which == "7":
        s = table7_summary(cross)
        rows = [
            ["ideal", f"{s.ideal_harmonic:.2f}", "0%"],
            [f"homogeneous ({s.homogeneous_config})",
             f"{s.homogeneous_harmonic:.2f}",
             f"{s.slowdown_vs_ideal(s.homogeneous_harmonic) * 100:.0f}%"],
            [f"complete search ({', '.join(s.complete_search_configs)})",
             f"{s.complete_search_harmonic:.2f}",
             f"{s.slowdown_vs_ideal(s.complete_search_harmonic) * 100:.0f}%"],
            [f"greedy surrogates ({', '.join(s.surrogate_configs)})",
             f"{s.surrogate_harmonic:.2f}",
             f"{s.slowdown_vs_ideal(s.surrogate_harmonic) * 100:.0f}%"],
        ]
        print(render_table(["scenario", "har IPT", "slowdown"], rows,
                           title="Table 7: dual-core summary"))
    else:  # appendix a
        print(render_matrix(list(cross.names), cross.slowdown_matrix(),
                            percent=True, fmt="{:5.1f}",
                            title="Appendix A: slowdowns"))
    return _finish(args, pipe.engine)


def cmd_figure(args) -> int:
    which = args.which
    if which == "1":
        graphs, dist = figure1()
        rows = [[g.name] + [f"{v:.1f}" for v in g.values] for g in graphs]
        print(render_table(["workload", *graphs[0].axes], rows,
                           title="Figure 1: Kiviat values (0-10)"))
        return 0
    if which == "2":
        rows = [
            [s.name, f"{s.clock_ns:.2f}", s.iq_size, f"{s.iq_slack_ns:.2f}",
             f"{s.l1_capacity_bytes // 1024}K", f"{s.l1_slack_ns:.2f}"]
            for s in figure2_scenarios()
        ]
        print(render_table(
            ["scenario", "clock", "IQ", "IQ slack", "L1", "L1 slack"], rows,
            title="Figure 2: slack scenarios"))
        return 0

    pipe = _pipeline(args)
    cross = pipe.cross
    if which == "4":
        series = figure4(cross)
        rows = [[w] + [f"{s.ipt[w]:.2f}" for s in series] for w in cross.names]
        print(render_table(["benchmark"] + [s.label for s in series], rows,
                           title="Figure 4: IPT per configuration set"))
    else:
        graph = {"6": figure6, "7": figure7, "8": figure8}[which](cross)
        print(render_surrogate_graph(graph))
        merits = surrogate_merits(cross, graph)
        print(f"harmonic IPT {merits['harmonic_ipt']:.2f}, "
              f"average slowdown {merits['average_slowdown'] * 100:.1f}%")
    return _finish(args, pipe.engine)


def cmd_sweep(args) -> int:
    engine = _build_engine(args)
    xp = XpScalar(engine=engine, **_objective_kwargs(args))
    sweep = ClockSweep(
        xp,
        iterations=args.iterations,
        strategy=args.strategy,
        budget=_search_budget(args),
        restarts=args.restarts,
        search_batch=args.search_batch,
    )
    checkpoint = None
    if args.cache_dir is not None:
        checkpoint = CheckpointManager(
            pathlib.Path(args.cache_dir) / "sweep-checkpoint.json"
        )
    points = sweep.run(
        spec2000_profile(args.benchmark),
        args.clocks,
        seed=args.seed,
        checkpoint=checkpoint,
        resume=args.resume,
    )
    rows = [
        [f"{p.clock_period_ns:.2f}", f"{p.score:.2f}", p.config.width,
         p.config.rob_size, p.config.iq_size,
         f"{p.config.l1.capacity_bytes // 1024}K",
         f"{p.config.l2.capacity_bytes // 1024}K"]
        for p in points
    ]
    text = render_table(["clock", "IPT", "W", "ROB", "IQ", "L1", "L2"], rows,
                        title=f"clock sweep: {args.benchmark}")
    print(text)
    _persist_run_artifact(args, "sweep.txt", text)
    return _finish(args, engine)


def _write_json_out(args, payload) -> None:
    """Honour ``--out FILE``: write JSON, record it under ``--run-dir``."""
    import json as _json

    if getattr(args, "out", None) is None:
        return
    out = pathlib.Path(args.out)
    if out.parent != pathlib.Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(_json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    run = getattr(args, "_run", None)
    if run is not None:
        run.record_artifact(out)
    print(f"wrote {out}")


def cmd_pareto(args) -> int:
    engine = _build_engine(args)
    explorer = ParetoExplorer(engine=engine, constraints=_constraints(args))
    profiles = [spec2000_profile(name) for name in args.benchmark]
    fronts = explorer.fronts(profiles, samples=args.samples, seed=args.seed)
    text = "\n\n".join(fronts[name].render(top=args.top) for name in args.benchmark)
    print(text)
    _persist_run_artifact(args, "pareto.txt", text)
    _write_json_out(
        args, {name: front.as_jsonable() for name, front in fronts.items()}
    )
    return _finish(args, engine)


def cmd_hetero(args) -> int:
    engine = _build_engine(args)
    xp = XpScalar(
        schedule=AnnealingSchedule(iterations=args.iterations),
        engine=engine,
        strategy=args.strategy,
        budget=_search_budget(args),
        restarts=args.restarts,
        search_batch=args.search_batch,
    )
    profiles = [spec2000_profile(name) for name in args.benchmark]
    if len(profiles) == 1:
        results = {profiles[0].name: xp.customize(profiles[0], seed=args.seed)}
    else:
        results = xp.customize_all(profiles, seed=args.seed)
    configs = {name: results[name].config for name in args.benchmark}
    matrix = build_design_matrix(
        engine,
        profiles,
        configs,
        tech=xp.tech,
        include_inorder=not args.no_inorder,
    )
    constraints = _constraints(args)
    best = hetero_search(
        matrix,
        args.cores,
        constraints,
        merit=args.merit,
        mode=args.mode,
        beam_width=args.beam_width,
    )
    lines = [
        f"heterogeneous {args.cores}-core search ({constraints.identity})",
        best.render(),
    ]
    payload = {"hetero": best.as_jsonable(), "homogeneous": None}
    try:
        homogeneous = best_homogeneous(
            matrix, args.cores, constraints, merit=args.merit
        )
        lines.append("best homogeneous:")
        lines.append(homogeneous.render())
        lines.append(
            f"hetero/homogeneous merit ratio: "
            f"{best.merit / homogeneous.merit:.4f}"
        )
        payload["homogeneous"] = homogeneous.as_jsonable()
    except DesignError as exc:
        lines.append(f"best homogeneous: none ({exc})")
    text = "\n".join(lines)
    print(text)
    _persist_run_artifact(args, "hetero.txt", text)
    _write_json_out(args, payload)
    return _finish(args, engine)


def cmd_search_compare(args) -> int:
    engine = _build_engine(args)
    profiles = [spec2000_profile(name) for name in args.benchmark]
    report = compare_strategies(
        profiles,
        strategies=args.strategies,
        iterations=args.iterations,
        seed=args.seed,
        budget=_search_budget(args),
        engine=engine,
        restarts=args.restarts,
    )
    text = report.render()
    print(text)
    _persist_run_artifact(args, "search-compare.txt", text)
    if args.out is not None:
        out = pathlib.Path(args.out)
        report.write_json(out)
        run = getattr(args, "_run", None)
        if run is not None:
            run.record_artifact(out)
        print(f"wrote {out}")
    return _finish(args, engine)


def cmd_validate(args) -> int:
    config = initial_configuration(XpScalar().tech)
    pairs = [(p, config) for p in spec2000_profiles()]
    report = validate_interval_model(pairs, trace_length=args.trace_length)
    print(f"pairs: {report.pairs}")
    print(f"rank correlation (IPT): {report.rank_correlation:.2f}")
    print(f"geometric-mean IPC ratio (interval/cycle): {report.mean_ratio:.2f}")
    print(f"worst ratio: {report.worst_ratio:.2f}")
    return 0


def _report_artifacts(pipe) -> dict[str, str]:
    """Every report rendering, keyed by artifact stem."""
    from .experiments import appendix_a_matrix, render_heatmap

    cross = pipe.cross
    headers, rows = table4_rows(pipe.characteristics, list(cross.names))
    artifacts = {
        "table4_customization": render_table(
            headers, rows, title="Table 4: customized configurations"
        ),
        "table5_cross_ipt": render_matrix(
            list(cross.names), cross.ipt, title="Table 5: cross-configuration IPT"
        ),
        "appendix_a_slowdowns": render_matrix(
            list(cross.names), appendix_a_matrix(cross), percent=True,
            fmt="{:5.1f}", title="Appendix A: slowdowns",
        ),
        "slowdown_heatmap": render_heatmap(
            list(cross.names), cross.slowdown_matrix(),
            title="cross-configuration slowdowns",
        ),
    }
    for figure_fn, name in ((figure6, "figure6"), (figure7, "figure7"), (figure8, "figure8")):
        artifacts[name] = render_surrogate_graph(figure_fn(cross))
    table6_lines = ["Table 6: best core combinations"]
    for row in table6_rows(cross):
        c = row.combination
        table6_lines.append(
            f"  {row.label:35s} {', '.join(c.configs):30s} "
            f"avg {c.average:.2f}  har {c.harmonic:.2f}"
        )
    artifacts["table6_combinations"] = "\n".join(table6_lines)
    s = table7_summary(cross)
    artifacts["table7_summary"] = (
        f"ideal {s.ideal_harmonic:.2f} | "
        f"homogeneous {s.homogeneous_harmonic:.2f} ({s.homogeneous_config}) | "
        f"search {s.complete_search_harmonic:.2f} "
        f"({', '.join(s.complete_search_configs)}) | "
        f"surrogates {s.surrogate_harmonic:.2f} ({', '.join(s.surrogate_configs)})"
    )
    return artifacts


def _write_report(args, pipe, out: pathlib.Path) -> None:
    """Atomically persist every report artifact into ``out``."""
    out.mkdir(parents=True, exist_ok=True)
    run = getattr(args, "_run", None)
    for name, text in _report_artifacts(pipe).items():
        path = out / f"{name}.txt"
        write_artifact(path, text)
        if run is not None:
            run.record_artifact(path, save=False)
        print(f"wrote {path}")
    if run is not None:
        run.save_manifest()


def cmd_report(args) -> int:
    pipe = _pipeline(args)
    _write_report(args, pipe, pathlib.Path(args.out))
    return _finish(args, pipe.engine)


def cmd_pipeline(args) -> int:
    """The full pipeline as a durable run: explore, cross-evaluate, report."""
    pipe = _pipeline(args)
    run = getattr(args, "_run", None)
    if args.out is not None:
        out = pathlib.Path(args.out)
    elif run is not None:
        out = run.artifact_dir
    else:
        out = pathlib.Path("results")
    _write_report(args, pipe, out)
    names = list(pipe.cross.names)
    print(f"pipeline complete: {len(names)} workloads, "
          f"{len(names) ** 2} cross-configuration cells")
    return _finish(args, pipe.engine)


def cmd_resume(args) -> int:
    """Re-dispatch an interrupted run with its recorded arguments."""
    run = RunDirectory.open(args.run_dir)
    manifest = run.manifest
    if manifest.status == "completed":
        print(f"{manifest.run_id}: already completed (exit {manifest.exit_code})")
        return 0
    resumed = build_parser().parse_args(list(manifest.argv))
    resumed._argv = list(manifest.argv)
    if getattr(resumed, "run_dir", None) is None:
        resumed.run_dir = str(args.run_dir)
    return _dispatch(resumed)


def cmd_runs(args) -> int:
    if args.runs_command == "verify":
        run = RunDirectory.open(args.run_dir)
        report = run.verify(quarantine=args.quarantine)
        print(report.render())
        return 0 if report.clean else 1
    rows = []
    for path, manifest in list_runs(args.root):
        if manifest is None:
            rows.append([str(path), "?", "UNREADABLE", "-", "-", "-"])
            continue
        done = sum(1 for p in manifest.phases if p.get("status") == "done")
        rows.append([
            str(path),
            manifest.run_id,
            manifest.status,
            f"{done}/{len(manifest.phases)}",
            len(manifest.artifacts),
            f"{manifest.wall_seconds:.1f}s",
        ])
    if not rows:
        print(f"no runs under {args.root}")
        return 0
    print(render_table(
        ["directory", "run", "status", "phases", "artifacts", "wall"], rows,
        title=f"runs under {args.root}",
    ))
    return 0


def _trace_events(args) -> tuple[list, str]:
    """Resolve a trace subcommand's input: one target and/or --journal paths.

    Returns ``(events, label)`` where *label* names the source for error
    messages.  Multiple journals are concatenated in path order.
    """
    from .serve.fleet import collect_journal_files

    targets = list(args.journal or [])
    if args.target is not None:
        targets.insert(0, args.target)
    if not targets:
        raise ReproError(
            "trace needs a RUN_DIR_OR_JOURNAL argument or --journal"
        )
    if len(targets) == 1 and args.journal is None:
        return list(trace_analysis.read_events(targets[0])), targets[0]
    events: list = []
    for path in collect_journal_files(targets):
        events.extend(trace_analysis.read_events(path))
    return events, ", ".join(str(t) for t in targets)


def cmd_trace(args) -> int:
    """Answer "where did the time go" from a run's event journal."""
    import json as _json

    if args.trace_command == "fleet":
        return _cmd_trace_fleet(args)
    events, label = _trace_events(args)
    if args.trace_command == "summary":
        summary = trace_analysis.summarize(events)
        if summary.events == 0:
            print(f"error: journal at {label} holds no events", file=sys.stderr)
            return 1
        if args.json:
            print(_json.dumps(summary.to_jsonable(), indent=2))
        else:
            print(summary.render())
        return 0
    if args.trace_command == "slowest":
        tasks = trace_analysis.slowest_tasks(events, top=args.top)
        print(trace_analysis.render_slowest(tasks))
        return 0
    if args.trace_command == "critical-path":
        path = trace_analysis.critical_path(events)
        print(trace_analysis.render_critical_path(path))
        return 0
    # export
    payload = trace_analysis.chrome_trace(events)
    text = _json.dumps(payload)
    if args.out is not None:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {out} ({len(payload['traceEvents'])} trace events)")
    else:
        print(text)
    return 0


def _span_jsonable(node, recurse: bool = True) -> dict:
    """JSON form of a :class:`~repro.engine.trace.SpanNode` subtree."""
    out = {
        "span": node.span,
        "name": node.name,
        "kind": node.kind,
        "seconds": round(node.seconds, 6),
        "start_ts": node.start_ts,
    }
    if recurse:
        out["children"] = [_span_jsonable(child) for child in node.children]
    return out


def _cmd_trace_fleet(args) -> int:
    """Stitch replica journals into one cross-replica span tree."""
    import json as _json

    from .serve import fleet as fleet_mod

    stitched = fleet_mod.stitch_journals(args.journals, trace_id=args.trace)
    roots = fleet_mod.fleet_span_tree(stitched)
    if args.export is not None:
        payload = fleet_mod.fleet_chrome_trace(stitched)
        out = pathlib.Path(args.export)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(payload) + "\n", encoding="utf-8")
        print(
            f"wrote {out} ({len(payload['traceEvents'])} trace events)",
            file=sys.stderr,
        )
    if args.json:
        print(_json.dumps(
            {
                "trace_ids": sorted(stitched.trace_ids),
                "journals": [
                    {
                        "path": str(view.path),
                        "replica_id": view.replica_id,
                        "events": len(view.events),
                        "shift_s": view.shift_s,
                    }
                    for view in stitched.journals
                ],
                "tree": [_span_jsonable(root) for root in roots],
                "critical_path": [
                    _span_jsonable(node, recurse=False)
                    for node in fleet_mod.fleet_critical_path(roots)
                ],
            },
            indent=2,
        ))
        return 0
    print(fleet_mod.render_fleet_tree(roots))
    print()
    print(fleet_mod.render_fleet_critical_path(
        fleet_mod.fleet_critical_path(roots)
    ))
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived exploration service until SIGINT/SIGTERM."""
    from .serve import ExplorationService, TenantPolicy

    policy = (
        TenantPolicy.parse(args.tenant_budget)
        if args.tenant_budget is not None
        else None
    )
    service = ExplorationService(
        jobs=args.jobs,
        cache_backend=args.cache_backend,
        serve_dir=args.serve_dir,
        tenant_policy=policy,
        max_total_queued=args.max_queued,
        replica_id=args.replica_id,
    )
    shown = args.port if args.port else "<ephemeral>"
    print(
        f"repro serve on http://{args.host}:{shown} "
        f"(jobs={args.jobs}, backend={args.cache_backend}) — "
        "Ctrl-C or SIGTERM drains and exits"
    )
    exit_code = service.serve_forever(host=args.host, port=args.port)
    if args.metrics_out is not None:
        out = service.registry.write(pathlib.Path(args.metrics_out))
        print(f"wrote {out}")
    return exit_code


def _print_client_counters(client) -> None:
    """Nonzero client counters on stderr (stdout stays parseable JSON)."""
    active = {name: count for name, count in client.counters.items() if count}
    if active:
        print(
            "client counters: "
            + " ".join(f"{name}={count}" for name, count in sorted(active.items())),
            file=sys.stderr,
        )


_WATCH_DETAIL_KEYS = (
    "job", "phase", "name", "benchmark", "config", "status", "key",
    "method", "from", "to", "replica", "replica_id", "seconds", "error",
)


def _format_watch_event(event: dict) -> str:
    """One human line per journal event, surfacing the trace id."""
    seq = event.get("seq", "?")
    kind = event.get("event", "?")
    details = " ".join(
        f"{key}={event[key]}"
        for key in _WATCH_DETAIL_KEYS
        if event.get(key) is not None
    )
    trace_id = event.get("trace_id")
    trace = f" trace={trace_id}" if trace_id else ""
    return f"[{seq}] {kind}" + (f" {details}" if details else "") + trace


def cmd_client(args) -> int:
    """One-shot interactions with a running service."""
    import json as _json

    from .serve import ServeClient

    client = ServeClient(args.url)
    command = args.client_command
    if command == "health":
        print(_json.dumps(client.health(), indent=2))
        return 0
    if command == "list":
        print(_json.dumps(client.list_jobs(), indent=2))
        return 0
    if command == "status":
        print(_json.dumps(client.status(args.job_id), indent=2))
        return 0
    if command == "result":
        print(_json.dumps(client.result(args.job_id), indent=2))
        return 0
    if command == "watch":
        for event in client.events(args.job_id, after_seq=args.after):
            if args.json:
                print(_json.dumps(event))
            else:
                print(_format_watch_event(event))
        _print_client_counters(client)
        return 0
    # submit
    payload = {"kind": args.kind, "benchmarks": args.benchmark}
    optional = {
        "iterations": args.iterations,
        "seed": args.seed,
        "strategy": args.strategy,
        "restarts": args.restarts,
        "max_evaluations": args.max_evals,
        "max_moves": args.max_moves,
        "plateau_patience": args.patience,
        "clocks": args.clocks,
        "strategies": args.strategies,
        "samples": args.samples,
        "tenant": args.tenant,
    }
    payload.update({key: value for key, value in optional.items() if value is not None})
    submitted = client.submit(payload)
    if args.stream:
        for event in client.events(submitted["id"]):
            print(_json.dumps(event))
        print(_json.dumps(client.result(submitted["id"]), indent=2))
        _print_client_counters(client)
    elif args.wait:
        print(_json.dumps(client.wait(submitted["id"]), indent=2))
        _print_client_counters(client)
    else:
        print(_json.dumps(submitted, indent=2))
    return 0


def cmd_serve_bench(args) -> int:
    """Load-test a service and write BENCH_serve.json."""
    from .serve import run_load_test

    report = run_load_test(
        url=args.url,
        total_jobs=args.jobs,
        clients=args.clients,
        iterations=args.iterations,
        repeat_every=args.repeat_every,
        service_jobs=args.service_jobs,
        cache_backend=args.cache_backend,
    )
    out = report.write(args.out)
    summary = report.to_jsonable()
    latency = summary["latency_s"]
    print(
        f"{report.completed}/{report.jobs} jobs completed "
        f"({report.failed} failed, {report.rejected} rejected) "
        f"in {report.wall_seconds:.2f}s"
    )
    print(
        f"latency p50={latency['p50']:.3f}s p95={latency['p95']:.3f}s "
        f"p99={latency['p99']:.3f}s; cache hit rate "
        f"{report.cache_hit_rate:.1%} ({report.cache_hits} hits)"
    )
    print(
        f"repeated jobs served from the store: "
        f"{report.repeated_with_zero_evaluations}/{report.repeated_jobs}"
    )
    print(f"wrote {out}")
    exit_code = 0 if report.failed == 0 else 1
    if args.check_slo is not None:
        from .serve.fleet import load_slo, slo_violations

        slo = load_slo(args.check_slo)
        violations = slo_violations(summary, slo)
        if violations:
            for line in violations:
                print(f"SLO violation: {line}", file=sys.stderr)
            exit_code = 1
        else:
            print(f"SLO check against {args.check_slo}: ok")
    return exit_code


def cmd_chaos(args) -> int:
    """Network-chaos acceptance run (see docs/serve.md)."""
    import json as _json
    import tempfile

    from .serve import NetworkFaultPlan, run_chaos

    plan = NetworkFaultPlan.parse(args.faults)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    payloads = [
        {
            "kind": "customize",
            "benchmarks": [name],
            "iterations": args.iterations,
            "seed": args.seed + index,
        }
        for index, name in enumerate(args.benchmark)
    ]
    report = run_chaos(
        payloads,
        plan,
        workdir,
        replicas=args.replicas,
        seed=plan.seed,
        kill_first_replica=args.kill_one,
        timeout_s=args.timeout,
        journal_path=args.journal,
    )
    summary = report.as_jsonable()
    print(_json.dumps(summary, indent=2, sort_keys=True))
    if args.out:
        pathlib.Path(args.out).write_text(
            _json.dumps(
                {**summary, "journal": report.journal}, indent=2, sort_keys=True
            )
            + "\n"
        )
        print(f"wrote {args.out}", file=sys.stderr)
    if args.fleet_trace and report.journal_dirs:
        from .serve import fleet as fleet_mod

        try:
            stitched = fleet_mod.stitch_journals(report.journal_dirs)
            payload = fleet_mod.fleet_chrome_trace(stitched)
            out_path = pathlib.Path(args.fleet_trace)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(_json.dumps(payload) + "\n", encoding="utf-8")
            print(
                f"wrote {out_path} "
                f"({len(payload['traceEvents'])} trace events, "
                f"{len(stitched.journals)} journal(s), "
                f"{len(stitched.trace_ids)} trace id(s))",
                file=sys.stderr,
            )
        except fleet_mod.FleetError as exc:
            print(f"fleet trace skipped: {exc}", file=sys.stderr)
    if not report.identical:
        print(
            "error: chaos run diverged from the fault-free baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_fleet(args) -> int:
    """Aggregate status/metrics across every replica of a serve fleet."""
    import json as _json

    from .serve import fleet as fleet_mod

    scrape = fleet_mod.scrape_fleet(args.urls, timeout=args.timeout)
    aggregate = fleet_mod.aggregate_fleet(scrape)
    if args.fleet_command == "status":
        text = (
            _json.dumps(aggregate, indent=2, sort_keys=True)
            if args.json
            else fleet_mod.render_fleet_status(aggregate)
        )
    else:  # metrics
        text = (
            _json.dumps(aggregate, indent=2, sort_keys=True)
            if args.json
            else fleet_mod.render_fleet_metrics(aggregate)
        )
    if args.out is not None:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        if args.fleet_command == "metrics" and out.suffix == ".json":
            out.write_text(
                _json.dumps(aggregate, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        else:
            out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {out}", file=sys.stderr)
    print(text)
    if aggregate["errors"]:
        for url, error in sorted(aggregate["errors"].items()):
            print(f"error: {url} unreachable: {error}", file=sys.stderr)
        return 1
    if aggregate["fleet_size"] == 0:
        print("error: no replicas reachable", file=sys.stderr)
        return 1
    return 0


def cmd_bench_compare(args) -> int:
    """Perf gate: diff bench reports vs committed ones, check the SLO."""
    import json as _json

    from .serve import fleet as fleet_mod

    result = fleet_mod.compare_benches(
        serve_current=args.serve,
        engine_current=args.engine,
        committed_dir=args.committed,
        latency_tolerance=args.latency_tolerance,
        throughput_tolerance=args.throughput_tolerance,
        speedup_tolerance=args.speedup_tolerance,
    )
    slo_failures: list[str] = []
    if args.check_slo is not None:
        slo = fleet_mod.load_slo(args.check_slo)
        current = fleet_mod._load_report(args.serve)
        if current is None:
            result["skipped"].append(
                f"SLO check: no current serve report at {args.serve}"
            )
        else:
            slo_failures = fleet_mod.slo_violations(current, slo)
    ok = result["ok"] and not slo_failures
    if args.json:
        print(_json.dumps(
            {**result, "ok": ok, "slo_violations": slo_failures}, indent=2
        ))
    else:
        for entry in result["compared"]:
            print(
                f"{entry['metric']}: current={entry['current']:.4g} "
                f"committed={entry['committed']:.4g} "
                f"ratio={entry['ratio']:.2f}"
            )
        for line in result["skipped"]:
            print(f"skipped: {line}")
        for line in result["regressions"]:
            print(f"REGRESSION: {line}", file=sys.stderr)
        for line in slo_failures:
            print(f"SLO violation: {line}", file=sys.stderr)
        print("bench-compare: ok" if ok else "bench-compare: FAILED")
    return 0 if ok else 1


def cmd_bench_engine(args) -> int:
    report = engine_bench.run_engine_bench(
        profile_name=args.profile,
        configs=args.configs,
        batch_sizes=args.batch_sizes,
        repeats=args.repeats,
        seed=args.seed,
    )
    out = engine_bench.write_report(report, args.out)
    print(engine_bench.format_report(report))
    print(f"wrote {out}")
    return 0 if report["equivalence"]["equivalent"] else 1


_COMMANDS = {
    "customize": cmd_customize,
    "table": cmd_table,
    "figure": cmd_figure,
    "sweep": cmd_sweep,
    "pareto": cmd_pareto,
    "hetero": cmd_hetero,
    "search-compare": cmd_search_compare,
    "validate": cmd_validate,
    "report": cmd_report,
    "pipeline": cmd_pipeline,
    "resume": cmd_resume,
    "runs": cmd_runs,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "client": cmd_client,
    "serve-bench": cmd_serve_bench,
    "chaos": cmd_chaos,
    "fleet": cmd_fleet,
    "bench-compare": cmd_bench_compare,
    "bench-engine": cmd_bench_engine,
}


def _dispatch(args) -> int:
    """Route a parsed invocation, orchestrating when a run dir is in play.

    ``pipeline`` is always supervised (defaulting to ``runs/pipeline``);
    other commands opt in with ``--run-dir``.
    """
    fn = _COMMANDS[args.command]
    if args.command == "pipeline" and args.run_dir is None:
        args.run_dir = os.path.join("runs", "pipeline")
    if getattr(args, "run_dir", None) and args.command not in ("resume", "runs"):
        return _orchestrated(args, fn)
    return fn(args)


def main(argv: Sequence[str] | None = None) -> int:
    raw = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(raw)
    args._argv = raw
    try:
        return _dispatch(args)
    except RunInterrupted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
