"""Seeded, exactly-replayable network-fault injection for the service.

The engine's :class:`~repro.engine.faults.FaultPlan` made worker crashes
reproducible; this module does the same for *network weather*.  Three
pieces:

* :class:`NetworkFaultPlan` — decides, as a pure function of
  ``(seed, connection-index)``, what happens to each TCP connection:
  nothing, a refusal (RST before any bytes), a mid-body reset, a torn
  response (clean FIN mid-body, producing truncated JSON), an injected
  ``503`` with ``Retry-After``, or a latency spike.  The same plan
  replays the same fault sequence on every run —
  :meth:`NetworkFaultPlan.expected_sequence` is the replay oracle the
  tests assert against;
* :class:`ChaosProxy` — a stdlib TCP proxy that sits in front of a real
  replica (or the shared store) and enacts the plan, journalling every
  connection's fate as JSON lines;
* :func:`run_chaos` — the acceptance harness: a fault-free baseline run
  versus a multi-replica run where every byte crosses fault proxies (and
  optionally one replica is killed mid-run), ending in a bit-identity
  verdict over the result payloads.  ``repro chaos`` is a thin CLI
  wrapper over it.

Faults are *bounded*: at most ``max_consecutive`` faulted connections in
a row, chosen below the clients' retry budgets, so a retrying caller
always makes progress — and, because every retried operation re-runs the
deterministic engine (or replays the shared store), finishes with
results bit-identical to a fault-free run.  Wrong answers are never on
the menu; only slowness and explicit errors are.
"""

from __future__ import annotations

import contextlib
import json
import socket
import struct
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..engine.keys import derive_seed, unit_draw
from ..errors import ServeError
from .client import ServeClient
from .replicas import ReplicaSet

#: Fault kinds a plan can inject on one connection.
REFUSE = "refuse"
RESET = "reset"
TRUNCATE = "truncate"
ERROR5XX = "error5xx"
DELAY = "delay"
KINDS = (REFUSE, RESET, TRUNCATE, ERROR5XX, DELAY)

#: Canned response for injected server errors (always ``Connection:
#: close``, like the real service).
_INJECTED_503_BODY = b'{"error": "injected 5xx fault", "status": 503}'
_INJECTED_503 = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Retry-After: 0.05\r\n"
    b"Connection: close\r\n"
    + f"Content-Length: {len(_INJECTED_503_BODY)}\r\n\r\n".encode("ascii")
    + _INJECTED_503_BODY
)


@dataclass(frozen=True)
class NetworkFaultPlan:
    """A seeded, replayable schedule of per-connection network faults.

    The fate of connection ``n`` through a :class:`ChaosProxy` is a pure
    function of ``(seed, n)``: a SHA-256 draw in ``[0, 1)`` is compared
    against the cumulative ``refuse``/``reset``/``truncate``/
    ``error5xx``/``delay`` rates.  Two proxies built from equal plans
    enact identical fault sequences — and a replayed run's clients, whose
    backoff is seeded too, observe the identical event order.

    Parameters
    ----------
    seed:
        Replay seed; equal fields ⇒ identical fault sequences.
    refuse, reset, truncate, error5xx, delay:
        Per-connection injection probabilities (sum must be <= 1).
        ``refuse`` kills the connection before any bytes; ``reset`` cuts
        the response mid-body with an RST; ``truncate`` cuts it with a
        clean FIN (a torn JSON body); ``error5xx`` answers a canned 503
        with ``Retry-After``; ``delay`` stalls the connection before
        proxying it cleanly.
    delay_s:
        How long an injected latency spike sleeps.
    cut_after_bytes:
        Upper bound of the deterministic mid-body cut point for
        ``reset``/``truncate`` (the exact point is drawn per
        connection).
    max_consecutive:
        Ceiling on *consecutive* faulted connections; the next
        connection after a full streak is forced clean.  Keep it below
        the clients' retry budget and every retried operation
        eventually lands.
    overrides:
        Explicit ``(connection-index, kind)`` pairs that fire regardless
        of rates or streak (``(n, "none")`` forces a clean connection) —
        for tests that target one exact connection.
    """

    seed: int = 0
    refuse: float = 0.0
    reset: float = 0.0
    truncate: float = 0.0
    error5xx: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.2
    cut_after_bytes: int = 64
    max_consecutive: int = 2
    overrides: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        rates = {
            "refuse": self.refuse,
            "reset": self.reset,
            "truncate": self.truncate,
            "error5xx": self.error5xx,
            "delay": self.delay,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ServeError(f"fault rate {name} must be in [0, 1]: {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise ServeError("fault rates must sum to at most 1")
        if self.delay_s < 0:
            raise ServeError(f"delay_s cannot be negative: {self.delay_s}")
        if self.cut_after_bytes < 1:
            raise ServeError(
                f"cut_after_bytes must be >= 1: {self.cut_after_bytes}"
            )
        if self.max_consecutive < 1:
            raise ServeError(
                f"max_consecutive must be >= 1: {self.max_consecutive}"
            )
        for entry in self.overrides:
            if len(entry) != 2 or entry[1] not in KINDS + ("none",):
                raise ServeError(f"malformed network fault override: {entry!r}")

    # ------------------------------------------------------------------
    # decisions (pure)
    # ------------------------------------------------------------------

    def _override(self, conn: int) -> str | None:
        for over_conn, kind in self.overrides:
            if over_conn == conn:
                return kind
        return None

    def _drawn(self, conn: int) -> str | None:
        """The rate-based (streak-blind) draw for connection ``conn``."""
        unit = unit_draw("netfault", self.seed, conn)
        edge = 0.0
        for kind, rate in (
            (REFUSE, self.refuse),
            (RESET, self.reset),
            (TRUNCATE, self.truncate),
            (ERROR5XX, self.error5xx),
            (DELAY, self.delay),
        ):
            edge += rate
            if unit < edge:
                return kind
        return None

    def expected_sequence(self, count: int) -> list[str | None]:
        """The exact fates of the first ``count`` connections, in order.

        This is the replay oracle: a proxy run under this plan journals
        precisely this sequence (``None`` meaning a clean tunnel), and a
        re-run under an equal plan journals it again.  Rate-drawn faults
        respect the ``max_consecutive`` streak bound; overrides fire
        regardless (tests pinning a hopeless streak mean it), though
        they still count toward the streak.
        """
        fates: list[str | None] = []
        streak = 0
        for conn in range(count):
            over = self._override(conn)
            if over is not None:
                kind = None if over == "none" else over
            elif streak < self.max_consecutive:
                kind = self._drawn(conn)
            else:
                kind = None
            streak = streak + 1 if kind is not None else 0
            fates.append(kind)
        return fates

    def fault_for(self, conn: int) -> str | None:
        """The fate of connection ``conn`` (streak bound applied)."""
        return self.expected_sequence(conn + 1)[-1]

    def cut_point(self, conn: int) -> int:
        """Deterministic mid-body cut offset for reset/truncate faults."""
        unit = unit_draw("netfault-cut", self.seed, conn)
        return 1 + int(unit * (self.cut_after_bytes - 1))

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(self.overrides) or (
            self.refuse + self.reset + self.truncate + self.error5xx + self.delay
        ) > 0.0

    def reseeded(self, index: int) -> "NetworkFaultPlan":
        """An equal-rates plan with a derived seed (per-proxy streams)."""
        return replace(self, seed=derive_seed(self.seed, index=index))

    # ------------------------------------------------------------------
    # CLI / env spec
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "NetworkFaultPlan":
        """Build a plan from a ``repro chaos --faults`` spec string.

        Format: comma-separated ``key=value``, e.g.
        ``"seed=7,refuse=0.1,reset=0.05,truncate=0.05,error5xx=0.1,delay=0.1,delay-s=0.2,max-consecutive=2"``.
        Unknown settings are rejected so typos cannot silently disable
        injection.
        """
        fields = {
            "seed": ("seed", int),
            "refuse": ("refuse", float),
            "reset": ("reset", float),
            "truncate": ("truncate", float),
            "error5xx": ("error5xx", float),
            "delay": ("delay", float),
            "delay-s": ("delay_s", float),
            "cut-bytes": ("cut_after_bytes", int),
            "max-consecutive": ("max_consecutive", int),
        }
        kwargs: dict[str, object] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            name, eq, raw = part.partition("=")
            if not eq or name not in fields:
                raise ServeError(
                    f"bad network fault spec entry {part!r}; known: "
                    f"{', '.join(fields)}"
                )
            attr, cast = fields[name]
            try:
                kwargs[attr] = cast(raw)
            except ValueError as exc:
                raise ServeError(
                    f"bad network fault spec value {part!r}: {exc}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]


class ChaosProxy:
    """A TCP proxy that enacts a :class:`NetworkFaultPlan` per connection.

    Sits between a client and one upstream (a service replica or the
    shared store) and gives each accepted connection the fate the plan
    drew for its index.  Connection indices are assigned in accept
    order; with the deterministic plans and seeded client backoff used
    in the chaos suite, accept order itself is deterministic, so whole
    runs replay.

    Every connection's fate lands in :attr:`journal` (and, when
    ``journal_path`` is given, as JSON lines on disk) plus the
    per-kind :attr:`counters`.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: NetworkFaultPlan,
        host: str = "127.0.0.1",
        journal_path: str | Path | None = None,
        name: str = "",
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan
        self.name = name or f"{upstream_host}:{upstream_port}"
        self.journal_path = Path(journal_path) if journal_path else None
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accepting = threading.Event()
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._conn_counter = 0
        self._workers: list[threading.Thread] = []
        self.journal: list[dict[str, Any]] = []
        self.counters: dict[str, int] = {"clean": 0}
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"chaos-proxy-{self.port}", daemon=True
        )

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @classmethod
    def for_url(
        cls, base_url: str, plan: NetworkFaultPlan, **kwargs: Any
    ) -> "ChaosProxy":
        """A proxy in front of ``http://host:port``."""
        from urllib.parse import urlsplit

        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname or not split.port:
            raise ServeError(f"cannot proxy {base_url!r}")
        return cls(split.hostname, split.port, plan, **kwargs)

    def start(self) -> "ChaosProxy":
        self._accepting.set()
        self._thread.start()
        return self

    def kill(self) -> None:
        """Stop accepting — from the outside this replica just died.

        New connections are refused by the OS (the listener closes), so
        clients see exactly what a SIGKILLed replica produces.
        """
        self._accepting.clear()
        self._stopped.set()
        with self._lock:
            listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()

    def stop(self) -> None:
        self.kill()
        self._thread.join(timeout=5)
        for worker in list(self._workers):
            worker.join(timeout=2)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _journal(self, conn: int, fault: str | None, **extra: Any) -> None:
        entry = {
            "proxy": self.name,
            "conn": conn,
            "fault": fault or "clean",
            **extra,
        }
        with self._lock:
            self.journal.append(entry)
            name = fault or "clean"
            self.counters[name] = self.counters.get(name, 0) + 1
            if self.journal_path is not None:
                with self.journal_path.open("a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def _accept_loop(self) -> None:
        while self._accepting.is_set():
            with self._lock:
                listener = self._listener
            if listener is None:
                return
            try:
                client, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                conn = self._conn_counter
                self._conn_counter += 1
            worker = threading.Thread(
                target=self._handle,
                args=(client, conn),
                name=f"chaos-conn-{conn}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    @staticmethod
    def _abort(sock: socket.socket) -> None:
        """Close with an RST (SO_LINGER 0) — the reset the plan promised."""
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        sock.close()

    def _handle(self, client: socket.socket, conn: int) -> None:
        fault = self.plan.fault_for(conn)
        try:
            if fault == REFUSE:
                self._journal(conn, fault)
                self._abort(client)
                return
            if fault == ERROR5XX:
                # Consume the request head first, then answer the canned
                # 503 — a well-formed error the client must handle.
                client.settimeout(2.0)
                head = b""
                try:
                    while b"\r\n\r\n" not in head:
                        data = client.recv(65536)
                        if not data:
                            break
                        head += data
                except OSError:
                    pass
                with contextlib.suppress(OSError):
                    client.sendall(_INJECTED_503)
                self._journal(conn, fault)
                client.close()
                return
            if fault == DELAY:
                time.sleep(self.plan.delay_s)
            cut = (
                self.plan.cut_point(conn) if fault in (RESET, TRUNCATE) else None
            )
            self._tunnel(client, conn, fault, cut)
        except Exception as exc:  # pragma: no cover - defensive
            self._journal(conn, fault, error=str(exc))
            with contextlib.suppress(Exception):
                client.close()

    def _tunnel(
        self,
        client: socket.socket,
        conn: int,
        fault: str | None,
        cut: int | None,
    ) -> None:
        """Proxy one connection, optionally cutting the response at ``cut``."""
        try:
            upstream = socket.create_connection(self.upstream, timeout=10)
        except OSError as exc:
            # The upstream itself is gone (e.g. a killed replica): the
            # client sees a reset, journalled as what it really was.
            self._journal(conn, fault, upstream_error=str(exc))
            self._abort(client)
            return
        self._journal(conn, fault, cut=cut)

        def pump_request() -> None:
            try:
                while True:
                    data = client.recv(65536)
                    if not data:
                        break
                    upstream.sendall(data)
                with contextlib.suppress(Exception):
                    upstream.shutdown(socket.SHUT_WR)
            except OSError:
                pass

        request_thread = threading.Thread(
            target=pump_request, name=f"chaos-req-{conn}", daemon=True
        )
        request_thread.start()
        sent = 0
        torn = False
        try:
            while True:
                data = upstream.recv(65536)
                if not data:
                    break
                if cut is not None and sent + len(data) >= cut:
                    client.sendall(data[: cut - sent])
                    torn = True
                    break
                client.sendall(data)
                sent += len(data)
        except OSError:
            pass
        finally:
            with contextlib.suppress(Exception):
                upstream.close()
            if torn and fault == RESET:
                self._abort(client)
            else:
                # TRUNCATE (and the clean path) end with an orderly FIN;
                # a truncated declared-JSON body is the torn-response
                # case the client maps to a transport fault.
                with contextlib.suppress(Exception):
                    client.close()
            request_thread.join(timeout=2)



# ----------------------------------------------------------------------
# the acceptance harness
# ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` round (JSON-ready via as_jsonable)."""

    identical: bool
    jobs: int
    store_served_repeats: int
    killed_replica: str | None
    faults: dict[str, int]
    client: dict[str, int]
    store: list[dict[str, Any]]
    baseline_digests: list[str]
    chaos_digests: list[str]
    journal: list[dict[str, Any]]
    #: Fleet-wide trace ids minted by the chaos submits (round major,
    #: payload minor) — the pivot from this report into journal stitching.
    trace_ids: list[str] = field(default_factory=list)
    #: Per-replica journal directories (``serve_dir``s) of the fleet,
    #: store service included — ``repro trace fleet`` fodder.
    journal_dirs: list[str] = field(default_factory=list)

    def as_jsonable(self) -> dict[str, Any]:
        return {
            "identical": self.identical,
            "jobs": self.jobs,
            "store_served_repeats": self.store_served_repeats,
            "killed_replica": self.killed_replica,
            "faults": self.faults,
            "client": self.client,
            "store": self.store,
            "baseline_digests": self.baseline_digests,
            "chaos_digests": self.chaos_digests,
            "trace_ids": self.trace_ids,
            "journal_dirs": self.journal_dirs,
        }


def run_chaos(
    payloads: list[dict[str, Any]],
    plan: NetworkFaultPlan,
    workdir: str | Path,
    replicas: int = 2,
    seed: int = 0,
    kill_first_replica: bool = False,
    timeout_s: float = 600.0,
    journal_path: str | Path | None = None,
) -> ChaosReport:
    """Chaos acceptance round: faulted fleet vs fault-free baseline.

    Topology under test: ``replicas`` in-process service replicas, each
    reached only through its own :class:`ChaosProxy`, all sharing one
    network store — a store service whose ``/v1/cache`` API the replicas
    reach through *another* fault proxy via the ``http:`` backend (so
    the circuit breaker and degrade tier are genuinely exercised).

    Every payload runs once on the fault-free baseline service, then
    twice through the chaotic fleet (the repeat asserts store reuse).
    With ``kill_first_replica`` the replica the first chaos job landed
    on is killed *mid-flight* (its proxy refuses, its service stops,
    the job's wait must fail over) — the surviving replicas finish the
    work and the report's ``client["failovers"]`` is necessarily >= 1.

    The verdict is strict bit-identity: every chaos result payload must
    equal its baseline twin, byte for byte, no matter what the plan did
    to the wire.
    """
    from ..engine.keys import digest
    from .service import ExplorationService, ServiceThread

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    # -- baseline: one clean replica, its own store ---------------------
    baseline = ServiceThread(
        ExplorationService(
            jobs=1,
            cache_backend=f"sqlite:{workdir / 'baseline.sqlite'}",
            serve_dir=workdir / "baseline",
        )
    )
    baseline_digests: list[str] = []
    with baseline:
        client = ServeClient(baseline.base_url)
        for payload in payloads:
            record = client.wait(
                client.submit(dict(payload))["id"], timeout=timeout_s
            )
            if record["state"] != "completed":
                raise ServeError(f"baseline job failed: {record.get('error')}")
            baseline_digests.append(digest(record["result"]))

    # -- the chaotic fleet ---------------------------------------------
    store_service = ServiceThread(
        ExplorationService(
            jobs=1,
            cache_backend=f"sqlite:{workdir / 'shared.sqlite'}",
            serve_dir=workdir / "store",
        )
    )
    chaos_digests: list[str] = []
    proxies: list[ChaosProxy] = []
    threads: list[ServiceThread] = []
    replica_set: ReplicaSet | None = None
    killed: str | None = None
    store_served = 0
    store_snapshots: list[dict[str, Any]] = []
    try:
        store_service.start()
        store_proxy = ChaosProxy.for_url(
            store_service.base_url,
            plan.reseeded(0),
            journal_path=journal_path,
        ).start()
        proxies.append(store_proxy)

        for index in range(replicas):
            service = ExplorationService(
                jobs=1,
                cache_backend=store_proxy.base_url,
                serve_dir=workdir / f"replica-{index}",
            )
            thread = ServiceThread(service)
            thread.start()
            threads.append(thread)
            proxy = ChaosProxy.for_url(
                thread.base_url,
                plan.reseeded(index + 1),
                journal_path=journal_path,
            ).start()
            proxies.append(proxy)

        replica_urls = [proxy.base_url for proxy in proxies[1:]]
        # Per-request timeout stays short: a wedged connection should
        # fall to the retry/hedge machinery, not stall for the whole
        # job budget (timeout_s bounds the *wait*, below).
        replica_set = ReplicaSet(
            replica_urls, seed=seed, timeout=min(timeout_s, 15.0)
        )

        trace_ids: list[str] = []
        for round_no in range(2):
            for index, payload in enumerate(payloads):
                handle = replica_set.submit(dict(payload))
                if handle.trace_id is not None:
                    trace_ids.append(handle.trace_id)
                if (
                    kill_first_replica
                    and killed is None
                    and round_no == 0
                    and index == 0
                ):
                    # Kill the replica the first job just landed on,
                    # mid-flight: its proxy refuses from now on and its
                    # service stops.  The wait below MUST fail the job
                    # over to a survivor.
                    victim_url = handle.replica
                    position = replica_urls.index(victim_url)
                    proxies[position + 1].kill()
                    threads[position].stop()
                    killed = victim_url
                record = replica_set.wait(handle, timeout=timeout_s)
                if record["state"] != "completed":
                    raise ServeError(
                        f"chaos job failed: {record.get('error')}"
                    )
                if round_no == 1 and record["stats"]["evaluations"] == 0:
                    store_served += 1
                if round_no == 0:
                    chaos_digests.append(digest(record["result"]))
                else:
                    if digest(record["result"]) != chaos_digests[index]:
                        raise ServeError(
                            "chaos repeat diverged from its first run"
                        )

        # Collect store telemetry (breaker transitions live here) from
        # the surviving replicas before shutdown.
        for position, thread in enumerate(threads):
            if killed is not None and replica_urls[position] == killed:
                continue
            for snap in thread.service.stats().get("store", []):
                store_snapshots.append(snap)
    finally:
        if replica_set is not None:
            replica_set.close()
        for proxy in proxies:
            proxy.stop()
        for thread in threads:
            with contextlib.suppress(Exception):
                thread.stop()
        with contextlib.suppress(Exception):
            store_service.stop()

    faults: dict[str, int] = {}
    journal: list[dict[str, Any]] = []
    for proxy in proxies:
        journal.extend(proxy.journal)
        for kind, count in proxy.counters.items():
            faults[kind] = faults.get(kind, 0) + count

    return ChaosReport(
        identical=chaos_digests == baseline_digests,
        jobs=len(payloads),
        store_served_repeats=store_served,
        killed_replica=killed,
        faults=faults,
        client=replica_set.counters_snapshot() if replica_set else {},
        store=store_snapshots,
        baseline_digests=baseline_digests,
        chaos_digests=chaos_digests,
        journal=journal,
        trace_ids=trace_ids,
        journal_dirs=[str(workdir / "store")]
        + [str(workdir / f"replica-{index}") for index in range(replicas)],
    )
