"""Minimal HTTP/1.1 plumbing for the exploration service.

The service is stdlib-only by charter, and ``http.server`` is
thread-per-connection while the service is asyncio — so this module
hand-rolls the small HTTP subset the API needs on top of asyncio
streams: request-line + headers + ``Content-Length`` bodies in,
fixed-length JSON responses and unbounded ``text/event-stream``
responses out, one request per connection (``Connection: close``).
That subset is deliberate: no keep-alive, no chunked encoding, no
pipelining — every simplification is one less state machine to get
wrong, and SSE (the one long-lived response) works on a closed
connection by definition.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

#: Hard caps so a misbehaving client cannot balloon service memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def query_one(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> Any:
        """The request body as JSON (raises ``ValueError`` when invalid)."""
        if not self.body:
            raise ValueError("empty request body")
        return json.loads(self.body.decode("utf-8"))


class BadRequest(Exception):
    """The bytes on the wire are not the HTTP subset we speak."""


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request from ``reader`` (``None`` on a clean EOF)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest("request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path)
    query = parse_qs(split.query)

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise BadRequest(f"bad Content-Length {length_header!r}") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"unacceptable Content-Length {length}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise BadRequest("truncated request body") from exc

    return Request(method=method, path=path, query=query, headers=headers, body=body)


def response_bytes(
    status: int,
    body: bytes | str = b"",
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """A complete fixed-length HTTP response."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int, payload: Any, extra_headers: dict[str, str] | None = None
) -> bytes:
    return response_bytes(
        status,
        json.dumps(payload, indent=2, default=repr) + "\n",
        extra_headers=extra_headers,
    )


def error_response(
    status: int, message: str, extra_headers: dict[str, str] | None = None
) -> bytes:
    return json_response(
        status, {"error": message, "status": status}, extra_headers=extra_headers
    )


def sse_head() -> bytes:
    """The response head opening an unbounded SSE stream."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
