"""Multi-tenant exploration service over a pluggable shared result store.

``repro serve`` runs the long-lived HTTP front-end
(:class:`ExplorationService`), ``repro client`` talks to it
(:class:`ServeClient`), and ``repro serve-bench`` measures it
(:func:`run_load_test`).  See ``docs/serve.md`` for the API, the
tenancy/budget model, and backend selection.
"""

from .client import ServeClient
from .fleet import (
    FleetError,
    StitchedTrace,
    aggregate_fleet,
    collect_journal_files,
    compare_benches,
    fleet_chrome_trace,
    fleet_critical_path,
    fleet_span_tree,
    load_slo,
    render_fleet_critical_path,
    render_fleet_metrics,
    render_fleet_status,
    render_fleet_tree,
    scrape_fleet,
    slo_violations,
    stitch_journals,
)
from .jobs import Job, JobSpec, merge_budgets
from .loadtest import LoadReport, run_load_test
from .netfaults import ChaosProxy, ChaosReport, NetworkFaultPlan, run_chaos
from .replicas import JobHandle, ReplicaSet
from .runner import execute_job
from .scheduler import FairShareScheduler, TenantPolicy
from .service import ExplorationService, ServiceThread
from .sse import JournalFollower, format_sse

__all__ = [
    "ServeClient",
    "FleetError",
    "StitchedTrace",
    "aggregate_fleet",
    "collect_journal_files",
    "compare_benches",
    "fleet_chrome_trace",
    "fleet_critical_path",
    "fleet_span_tree",
    "load_slo",
    "render_fleet_critical_path",
    "render_fleet_metrics",
    "render_fleet_status",
    "render_fleet_tree",
    "scrape_fleet",
    "slo_violations",
    "stitch_journals",
    "Job",
    "JobSpec",
    "merge_budgets",
    "LoadReport",
    "run_load_test",
    "ChaosProxy",
    "ChaosReport",
    "NetworkFaultPlan",
    "run_chaos",
    "JobHandle",
    "ReplicaSet",
    "execute_job",
    "FairShareScheduler",
    "TenantPolicy",
    "ExplorationService",
    "ServiceThread",
    "JournalFollower",
    "format_sse",
]
