"""Fleet-wide observability: journal stitching, metric aggregation, SLOs.

PR 5 made one run legible (journal + ``repro trace``); PRs 6 and 9 grew
the system into a multi-replica, failover-capable service whose requests
cross client → ReplicaSet → replica → engine → http store backend.  This
module is the read side that makes the *fleet* legible:

* **journal stitching** — :func:`stitch_journals` merges N replica
  journals (per-job ``events.jsonl`` files plus the store service's
  ``service-events.jsonl``) onto one timeline.  Each journal is re-timed
  from its own monotonic clock (``mono``) anchored at its first wall
  timestamp, so wall-clock skew between replicas cannot reorder causally
  linked events; cross-journal links (``parent_span_id`` pointing at a
  ``job_start`` span in another journal) then repair any residual skew
  by shifting whole journals forward to respect causality;
* **fleet span trees** — :func:`fleet_span_tree` groups stitched events
  by trace id and chains a job's incarnations (failover re-runs share
  the trace id) through explicit ``failover`` seam nodes, so
  :func:`fleet_critical_path` walks *across* the seam; journalled store
  calls (``cache_call``) attach under the job span that made them;
* **fleet Chrome export** — :func:`fleet_chrome_trace` renders every
  journal as its own process lane (named after the replica) in one
  Chrome/Perfetto trace;
* **metric aggregation** — :func:`scrape_fleet` /
  :func:`aggregate_fleet` scrape every replica's ``/v1/metrics`` +
  ``/v1/stats`` and merge the snapshots (counters sum, histograms sum
  bucket-wise) into one Prometheus textfile plus a JSON snapshot with a
  per-replica breakdown;
* **SLO gating** — :func:`load_slo` / :func:`slo_violations` check a
  committed ``SLO.json`` against a serve-bench report, and
  :func:`compare_benches` diffs current ``BENCH_serve.json`` /
  ``BENCH_engine.json`` against committed ones with tolerances — the
  ``repro bench-compare`` CI gate.

Everything here is stdlib-only and read-only over the journals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..engine.telemetry import merge_metric_snapshots, render_prometheus_snapshot
from ..engine.trace import SpanNode, chrome_trace, read_events
from ..errors import ReproError, ServeClientError
from .client import ServeClient

__all__ = [
    "FleetError",
    "JournalView",
    "StitchedTrace",
    "collect_journal_files",
    "stitch_journals",
    "fleet_span_tree",
    "fleet_critical_path",
    "render_fleet_tree",
    "render_fleet_critical_path",
    "fleet_chrome_trace",
    "scrape_fleet",
    "aggregate_fleet",
    "render_fleet_metrics",
    "render_fleet_status",
    "load_slo",
    "slo_violations",
    "compare_benches",
]


class FleetError(ReproError):
    """Fleet tooling could not make sense of its inputs."""


# ----------------------------------------------------------------------
# journal discovery
# ----------------------------------------------------------------------


def collect_journal_files(targets: Iterable[str | Path]) -> list[Path]:
    """Expand targets (serve dirs, run dirs, journal files) to journals.

    A serve directory contributes every per-job journal under
    ``jobs/*/events.jsonl`` plus its ``service-events.jsonl`` (the store
    side of distributed traces); a plain directory with an
    ``events.jsonl`` contributes that; a file contributes itself.
    Directories with no journals (a replica that never ran a job, or
    was killed before its first) contribute nothing rather than failing
    the stitch; a named *file* that is missing is an error.  The result
    is deduplicated and sorted so stitching is deterministic in the
    *set* of inputs, not their order.
    """
    found: set[Path] = set()
    for target in targets:
        target = Path(target)
        if target.is_dir():
            jobs_dir = target / "jobs"
            if jobs_dir.is_dir():
                found.update(jobs_dir.glob("*/events.jsonl"))
            for name in ("service-events.jsonl", "events.jsonl"):
                candidate = target / name
                if candidate.exists():
                    found.add(candidate)
        elif target.exists():
            found.add(target)
        elif target.suffix:  # a named file that is not there
            raise FleetError(f"no journal at {target}")
    if not found:
        raise FleetError("no journals to stitch")
    return sorted(found, key=str)


# ----------------------------------------------------------------------
# stitching (skew alignment + causal repair)
# ----------------------------------------------------------------------


@dataclass
class JournalView:
    """One journal's events on the stitched timeline."""

    path: Path
    events: list[dict[str, Any]]
    replica_id: str | None = None
    #: Total shift applied by skew alignment + causal repair (seconds,
    #: relative to the journal's raw wall timestamps).
    shift_s: float = 0.0

    @property
    def label(self) -> str:
        if self.replica_id:
            return f"{self.replica_id} ({self.path.parent.name})"
        return str(self.path)


@dataclass
class StitchedTrace:
    """N journals merged onto one causally consistent timeline."""

    journals: list[JournalView]
    #: Distinct trace ids seen across all journals, sorted.
    trace_ids: list[str] = field(default_factory=list)

    def events(self) -> list[dict[str, Any]]:
        """Every event, globally ordered by aligned time (stable)."""
        merged: list[tuple[float, str, int, dict[str, Any]]] = []
        for view in self.journals:
            for record in view.events:
                merged.append(
                    (
                        float(record.get("aligned_ts", 0.0)),
                        str(view.path),
                        int(record.get("seq", 0) or 0),
                        record,
                    )
                )
        merged.sort(key=lambda item: item[:3])
        return [item[3] for item in merged]


def _align_journal(path: Path) -> JournalView:
    """Load one journal and re-time it from its monotonic clock.

    The first record carrying both ``ts`` (wall) and ``mono``
    (monotonic) anchors the journal: every later record with ``mono``
    gets ``aligned_ts = anchor_ts + (mono - anchor_mono)``, so the
    journal's internal timeline is immune to wall-clock steps; records
    without ``mono`` (older journals) keep their wall ``ts``.
    """
    events: list[dict[str, Any]] = []
    replica_id: str | None = None
    anchor_ts: float | None = None
    anchor_mono: float | None = None
    for record in read_events(path):
        record = dict(record)
        ts, mono = record.get("ts"), record.get("mono")
        if (
            anchor_ts is None
            and isinstance(ts, (int, float))
            and isinstance(mono, (int, float))
        ):
            anchor_ts, anchor_mono = float(ts), float(mono)
        if (
            anchor_mono is not None
            and anchor_ts is not None
            and isinstance(mono, (int, float))
        ):
            record["aligned_ts"] = anchor_ts + (float(mono) - anchor_mono)
        elif isinstance(ts, (int, float)):
            record["aligned_ts"] = float(ts)
        else:
            record["aligned_ts"] = 0.0
        if replica_id is None and isinstance(record.get("replica_id"), str):
            replica_id = record["replica_id"]
        events.append(record)
    return JournalView(path=path, events=events, replica_id=replica_id)


#: Minimum causal gap enforced between a parent span's start and its
#: cross-journal children (seconds) — keeps the order strict, not just
#: non-negative, so renders never show a child at its parent's instant.
_CAUSAL_EPSILON = 1e-6


def stitch_journals(
    targets: Iterable[str | Path], trace_id: str | None = None
) -> StitchedTrace:
    """Merge journals onto one timeline with skew alignment + repair.

    After per-journal monotonic re-timing, cross-journal causality is
    enforced: any event whose ``parent_span_id`` names a ``job_start``
    span recorded in *another* journal must not precede that span's
    start — a violation shifts the whole child journal forward (its
    internal timeline is trustworthy; its absolute offset is not).
    Repair iterates to a fixpoint, bounded by the journal count.  The
    result is deterministic in the set of journals: inputs are sorted,
    and every shift is a pure function of journal contents.

    ``trace_id`` filters the stitched view to one distributed trace
    (journals with no matching events drop out entirely).
    """
    views = [_align_journal(path) for path in collect_journal_files(targets)]
    if trace_id is not None:
        filtered: list[JournalView] = []
        for view in views:
            kept = [
                record
                for record in view.events
                if record.get("trace_id") == trace_id
                or "trace_id" not in record
            ]
            if any(record.get("trace_id") == trace_id for record in kept):
                view.events = kept
                filtered.append(view)
        views = filtered
        if not views:
            raise FleetError(f"no journal mentions trace {trace_id!r}")

    # Where does each span start?  (journal index, aligned start time)
    for _ in range(len(views) + 1):
        span_starts: dict[str, tuple[int, float]] = {}
        for index, view in enumerate(views):
            for record in view.events:
                span = record.get("span")
                if record.get("event") == "job_start" and isinstance(span, str):
                    span_starts.setdefault(
                        span, (index, float(record["aligned_ts"]))
                    )
        shifted = False
        for index, view in enumerate(views):
            delta = 0.0
            for record in view.events:
                parent = record.get("parent_span_id")
                if not isinstance(parent, str) or parent not in span_starts:
                    continue
                owner, parent_start = span_starts[parent]
                if owner == index:
                    continue
                gap = (parent_start + _CAUSAL_EPSILON) - float(
                    record["aligned_ts"]
                )
                delta = max(delta, gap)
            if delta > 0.0:
                for record in view.events:
                    record["aligned_ts"] = float(record["aligned_ts"]) + delta
                view.shift_s += delta
                shifted = True
        if not shifted:
            break

    trace_ids = sorted(
        {
            record["trace_id"]
            for view in views
            for record in view.events
            if isinstance(record.get("trace_id"), str)
        }
    )
    return StitchedTrace(journals=views, trace_ids=trace_ids)


# ----------------------------------------------------------------------
# fleet span tree + critical path
# ----------------------------------------------------------------------


@dataclass
class _Incarnation:
    job_id: str
    span_id: str | None
    replica_id: str
    start: float
    seconds: float
    state: str
    journal: Path


def _trace_incarnations(stitched: StitchedTrace, trace_id: str) -> list[_Incarnation]:
    incarnations: list[_Incarnation] = []
    for view in stitched.journals:
        start_record = None
        end_record = None
        for record in view.events:
            if record.get("trace_id") != trace_id:
                continue
            if record.get("event") == "job_start" and start_record is None:
                start_record = record
            elif record.get("event") == "job_end":
                end_record = record
        if start_record is None:
            continue
        seconds = 0.0
        state = "unknown"
        if end_record is not None:
            try:
                seconds = float(end_record.get("seconds", 0.0) or 0.0)
            except (TypeError, ValueError):
                seconds = 0.0
            state = str(end_record.get("state", "unknown"))
        else:
            # Killed mid-flight: the journal simply stops.  Extent of
            # what was recorded is the honest lower bound.
            tail = max(float(r["aligned_ts"]) for r in view.events)
            seconds = max(tail - float(start_record["aligned_ts"]), 0.0)
            state = "lost"
        incarnations.append(
            _Incarnation(
                job_id=str(start_record.get("job", "?")),
                span_id=(
                    start_record.get("span")
                    if isinstance(start_record.get("span"), str)
                    else None
                ),
                replica_id=str(
                    start_record.get("replica_id") or view.replica_id or "?"
                ),
                start=float(start_record["aligned_ts"]),
                seconds=seconds,
                state=state,
                journal=view.path,
            )
        )
    incarnations.sort(key=lambda inc: (inc.start, inc.job_id))
    return incarnations


def fleet_span_tree(
    stitched: StitchedTrace, trace_id: str | None = None
) -> list[SpanNode]:
    """One root span per distributed trace, failover seams made explicit.

    A trace's incarnations (the same logical job run on successive
    replicas — failover re-runs share the trace id) chain through
    ``failover`` seam nodes whose weight is the whole downstream chain,
    so the max-seconds walk of :func:`fleet_critical_path` crosses every
    seam instead of stopping at the killed replica.  Journalled store
    calls (``cache_call`` with a ``parent_span_id`` naming a job span)
    attach under the incarnation that made them.
    """
    wanted = [trace_id] if trace_id is not None else stitched.trace_ids
    roots: list[SpanNode] = []
    for tid in wanted:
        incarnations = _trace_incarnations(stitched, tid)
        if not incarnations:
            continue
        # Store calls grouped by the job span that made them.
        calls_by_span: dict[str, list[dict[str, Any]]] = {}
        for view in stitched.journals:
            for record in view.events:
                if (
                    record.get("event") == "cache_call"
                    and record.get("trace_id") == tid
                    and isinstance(record.get("parent_span_id"), str)
                ):
                    calls_by_span.setdefault(
                        record["parent_span_id"], []
                    ).append(record)

        chain_weights = [0.0] * (len(incarnations) + 1)
        for position in range(len(incarnations) - 1, -1, -1):
            chain_weights[position] = (
                incarnations[position].seconds + chain_weights[position + 1]
            )

        root = SpanNode(
            span=f"trace:{tid}",
            name=f"trace {tid[:8]}",
            kind="trace",
            parent=None,
            seconds=chain_weights[0],
            start_ts=incarnations[0].start,
        )
        previous: SpanNode = root
        for position, inc in enumerate(incarnations):
            node = SpanNode(
                span=f"{tid}/{inc.span_id or inc.job_id}",
                name=f"{inc.job_id}@{inc.replica_id}",
                kind="job" if inc.state != "lost" else "job-lost",
                parent=previous.span,
                seconds=inc.seconds,
                start_ts=inc.start,
            )
            for call in calls_by_span.get(inc.span_id or "", []):
                node.children.append(
                    SpanNode(
                        span=f"{tid}/call/{call.get('seq')}",
                        name=(
                            f"{call.get('method', '?')} "
                            f"cache:{call.get('key') or '*'}"
                        ),
                        kind="cache_call",
                        parent=node.span,
                        seconds=0.0,
                        start_ts=float(call["aligned_ts"]),
                    )
                )
            if position == 0:
                previous.children.append(node)
            else:
                seam = SpanNode(
                    span=f"{tid}/failover/{position}",
                    name=(
                        f"failover "
                        f"{incarnations[position - 1].replica_id}"
                        f" -> {inc.replica_id}"
                    ),
                    kind="failover",
                    parent=previous.span,
                    # The seam carries the whole downstream chain so the
                    # critical-path walk descends through it.
                    seconds=chain_weights[position],
                    start_ts=inc.start,
                )
                seam.children.append(node)
                previous.children.append(seam)
            previous = node
        roots.append(root)
    return roots


def fleet_critical_path(roots: list[SpanNode]) -> list[SpanNode]:
    """Root-to-leaf max-seconds walk over a fleet span forest."""
    if not roots:
        return []
    path: list[SpanNode] = []
    node: SpanNode | None = max(roots, key=lambda n: n.seconds)
    while node is not None:
        path.append(node)
        node = max(node.children, key=lambda n: n.seconds, default=None)
    return path


def render_fleet_critical_path(path: list[SpanNode]) -> str:
    if not path:
        return "no spans in these journals"
    total = path[0].seconds
    lines = [f"fleet critical path ({total:.2f}s at the root):"]
    for depth, node in enumerate(path):
        share = node.seconds / total * 100 if total > 0 else 0.0
        lines.append(
            f"{'  ' * depth}{node.name} [{node.kind}] "
            f"{node.seconds:.2f}s ({share:.0f}%)"
        )
    return "\n".join(lines)


def render_fleet_tree(roots: list[SpanNode]) -> str:
    """Indented text render of the whole fleet span forest."""
    if not roots:
        return "no spans in these journals"
    lines: list[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        lines.append(
            f"{'  ' * depth}{node.name} [{node.kind}] {node.seconds:.2f}s"
        )
        for child in sorted(
            node.children, key=lambda n: (n.start_ts or 0.0, n.span)
        ):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def fleet_chrome_trace(stitched: StitchedTrace) -> dict[str, Any]:
    """One Chrome/Perfetto trace with a process lane per journal.

    Each journal renders at its aligned timestamps under its own pid,
    with a ``process_name`` metadata record naming the replica — load
    the export in https://ui.perfetto.dev and the fleet reads as one
    timeline.
    """
    combined: list[dict[str, Any]] = []
    unknown: dict[str, int] = {}
    for index, view in enumerate(stitched.journals, start=1):
        combined.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": index,
                "args": {"name": view.label},
            }
        )
        retimed = [
            dict(record, ts=record.get("aligned_ts", record.get("ts")))
            for record in view.events
        ]
        sub = chrome_trace(retimed, pid=index)
        combined.extend(sub["traceEvents"])
        for kind, count in (
            sub.get("metadata", {}).get("unknown_events", {}).items()
        ):
            unknown[kind] = unknown.get(kind, 0) + count
    out: dict[str, Any] = {"traceEvents": combined, "displayTimeUnit": "ms"}
    if unknown:
        out["metadata"] = {"unknown_events": unknown}
    return out


# ----------------------------------------------------------------------
# fleet metrics aggregation
# ----------------------------------------------------------------------


def scrape_fleet(
    urls: Iterable[str], timeout: float = 10.0
) -> dict[str, Any]:
    """Scrape every replica's health, stats and metrics (JSON form).

    Unreachable replicas land in ``errors`` instead of failing the whole
    scrape — a fleet status that dies when one replica is down would be
    useless exactly when it matters.
    """
    replicas: list[dict[str, Any]] = []
    errors: dict[str, str] = {}
    for url in urls:
        try:
            client = ServeClient(url, timeout=timeout, propagate_trace=False)
            replicas.append(
                {
                    "url": url,
                    "health": client.health(),
                    "stats": client.stats(),
                    "metrics": client.metrics_json(),
                }
            )
        except (ServeClientError, OSError) as exc:
            errors[url] = str(exc)
    return {"replicas": replicas, "errors": errors}


def aggregate_fleet(scrape: dict[str, Any]) -> dict[str, Any]:
    """Merge a fleet scrape into one snapshot with per-replica breakdown.

    ``merged`` is the series-wise sum of every replica's metrics
    (counters/gauges add, histograms add bucket-wise) — exactly
    :func:`~repro.engine.telemetry.merge_metric_snapshots` over the
    scrapes, which the tests assert.
    """
    replicas = scrape.get("replicas", [])
    merged = merge_metric_snapshots([r["metrics"] for r in replicas])
    return {
        "fleet_size": len(replicas),
        "errors": dict(scrape.get("errors", {})),
        "replicas": [
            {
                "url": r["url"],
                "replica_id": r["health"].get("replica_id"),
                "status": r["health"].get("status"),
                "uptime_s": r["health"].get("uptime_s"),
                "jobs": r["health"].get("jobs"),
                "stats": r["stats"],
                "metrics": r["metrics"],
            }
            for r in replicas
        ],
        "merged": merged,
    }


def render_fleet_metrics(aggregate: dict[str, Any]) -> str:
    """The merged snapshot as a Prometheus textfile."""
    return render_prometheus_snapshot(aggregate["merged"])


def render_fleet_status(aggregate: dict[str, Any]) -> str:
    """Human one-liner per replica plus fleet totals."""
    lines = [
        f"fleet: {aggregate['fleet_size']} replica(s) up, "
        f"{len(aggregate['errors'])} unreachable"
    ]
    for replica in aggregate["replicas"]:
        stats = replica.get("stats", {})
        states = stats.get("jobs_by_state", {})
        lines.append(
            f"  {replica.get('replica_id') or '?'} {replica['url']} "
            f"status={replica.get('status')} jobs={replica.get('jobs')} "
            f"completed={states.get('completed', 0)} "
            f"failed={states.get('failed', 0)} "
            f"uptime={replica.get('uptime_s', 0):.0f}s"
        )
    for url, error in sorted(aggregate.get("errors", {}).items()):
        lines.append(f"  DOWN {url}: {error}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SLOs and bench comparison
# ----------------------------------------------------------------------


def load_slo(path: str | Path) -> dict[str, Any]:
    """Read and validate a committed SLO file.

    Schema (all thresholds optional, missing means not enforced)::

        {
          "schema": 1,
          "p99_latency_s":      <max p99 submit->completed seconds>,
          "max_error_rate":     <max failed/(completed+failed)>,
          "min_cache_hit_rate": <min repeat-round cache hit rate>
        }
    """
    path = Path(path)
    try:
        slo = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FleetError(f"cannot read SLO file {path}: {exc}") from exc
    except ValueError as exc:
        raise FleetError(f"SLO file {path} is not valid JSON: {exc}") from exc
    if not isinstance(slo, dict):
        raise FleetError(f"SLO file {path} must hold a JSON object")
    for key in ("p99_latency_s", "max_error_rate", "min_cache_hit_rate"):
        value = slo.get(key)
        if value is not None and not isinstance(value, (int, float)):
            raise FleetError(f"SLO {key} must be a number, got {value!r}")
    return slo


def slo_violations(report: dict[str, Any], slo: dict[str, Any]) -> list[str]:
    """Every way ``report`` (a BENCH_serve.json payload) misses the SLO."""
    violations: list[str] = []
    p99 = report.get("latency_s", {}).get("p99")
    limit = slo.get("p99_latency_s")
    if limit is not None and p99 is not None and p99 > limit:
        violations.append(f"p99 latency {p99:.3f}s exceeds SLO {limit:.3f}s")
    completed = int(report.get("completed", 0))
    failed = int(report.get("failed", 0))
    finished = completed + failed
    limit = slo.get("max_error_rate")
    if limit is not None and finished:
        error_rate = failed / finished
        if error_rate > limit:
            violations.append(
                f"error rate {error_rate:.3f} exceeds SLO {limit:.3f}"
            )
    hit_rate = report.get("cache", {}).get("hit_rate")
    limit = slo.get("min_cache_hit_rate")
    if limit is not None and hit_rate is not None and hit_rate < limit:
        violations.append(
            f"cache hit rate {hit_rate:.3f} below SLO {limit:.3f}"
        )
    return violations


def _load_report(path: str | Path) -> dict[str, Any] | None:
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FleetError(f"cannot read bench report {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise FleetError(f"bench report {path} must hold a JSON object")
    return payload


def compare_benches(
    serve_current: str | Path | None = None,
    engine_current: str | Path | None = None,
    committed_dir: str | Path = ".",
    latency_tolerance: float = 1.0,
    throughput_tolerance: float = 0.6,
    speedup_tolerance: float = 0.5,
) -> dict[str, Any]:
    """Diff current bench reports against committed ones with tolerances.

    Regressions (fail-the-build findings):

    * serve p99 latency grew beyond ``latency_tolerance`` (fractional —
      1.0 means "more than twice the committed p99");
    * serve throughput fell beyond ``throughput_tolerance``;
    * engine best batch/scoring speedup fell beyond
      ``speedup_tolerance``.

    Defaults are deliberately loose: CI machines vary wildly, and the
    gate exists to catch order-of-magnitude regressions loudly, not to
    flake on noise.  A missing current or committed report is *skipped*
    (reported, not failed) so the gate degrades gracefully while reports
    are first being committed.
    """
    committed_dir = Path(committed_dir)
    regressions: list[str] = []
    skipped: list[str] = []
    compared: list[dict[str, Any]] = []

    current = _load_report(serve_current) if serve_current else None
    committed = _load_report(committed_dir / "BENCH_serve.json")
    if current is None or committed is None:
        skipped.append(
            "serve: missing "
            + ("current" if current is None else "committed")
            + " report"
        )
    else:
        cur_p99 = current.get("latency_s", {}).get("p99")
        old_p99 = committed.get("latency_s", {}).get("p99")
        if cur_p99 is not None and old_p99:
            ratio = cur_p99 / old_p99
            compared.append(
                {"metric": "serve.p99_latency_s", "current": cur_p99,
                 "committed": old_p99, "ratio": ratio}
            )
            if ratio > 1.0 + latency_tolerance:
                regressions.append(
                    f"serve p99 latency {cur_p99:.3f}s is {ratio:.2f}x the "
                    f"committed {old_p99:.3f}s "
                    f"(tolerance {1.0 + latency_tolerance:.2f}x)"
                )
        cur_tp = current.get("throughput_jobs_per_s")
        old_tp = committed.get("throughput_jobs_per_s")
        if cur_tp is not None and old_tp:
            ratio = cur_tp / old_tp
            compared.append(
                {"metric": "serve.throughput_jobs_per_s", "current": cur_tp,
                 "committed": old_tp, "ratio": ratio}
            )
            if ratio < 1.0 - throughput_tolerance:
                regressions.append(
                    f"serve throughput {cur_tp:.2f} jobs/s fell to "
                    f"{ratio:.2f}x the committed {old_tp:.2f} "
                    f"(tolerance {1.0 - throughput_tolerance:.2f}x)"
                )

    current = _load_report(engine_current) if engine_current else None
    committed = _load_report(committed_dir / "BENCH_engine.json")
    if current is None or committed is None:
        skipped.append(
            "engine: missing "
            + ("current" if current is None else "committed")
            + " report"
        )
    else:
        for which in ("batch", "scoring"):
            cur_speed = (
                current.get("best", {}).get(which, {}).get("speedup")
            )
            old_speed = (
                committed.get("best", {}).get(which, {}).get("speedup")
            )
            if cur_speed is None or not old_speed:
                continue
            ratio = cur_speed / old_speed
            compared.append(
                {"metric": f"engine.best.{which}.speedup",
                 "current": cur_speed, "committed": old_speed,
                 "ratio": ratio}
            )
            if ratio < 1.0 - speedup_tolerance:
                regressions.append(
                    f"engine {which} speedup {cur_speed:.2f}x fell to "
                    f"{ratio:.2f}x the committed {old_speed:.2f}x "
                    f"(tolerance {1.0 - speedup_tolerance:.2f}x)"
                )

    return {
        "ok": not regressions,
        "regressions": regressions,
        "skipped": skipped,
        "compared": compared,
    }
