"""Bridge a job's event journal to Server-Sent Events.

Each running job journals its engine's event stream to a private
:class:`~repro.engine.telemetry.RunJournal` (JSONL, per-line flush,
monotonic ``seq``, size-capped rotation).  That file — not an in-memory
queue — is the SSE source of truth: a stream is a *tail* of the journal,
which makes reconnection trivial and lossless.  A client that
reconnects with ``Last-Event-ID: <seq>`` resumes from the journal at
``seq + 1``; because ``seq`` is monotonic across rotation and process
restarts, no event is duplicated or dropped, even when the journal
rotated between the disconnect and the reconnect.

:class:`JournalFollower` does the incremental reading.  It tracks a byte
offset *per file identity* (inode), so rotation — which renames the
current file — leaves already-consumed offsets valid; only complete
lines are consumed, so a torn in-flight line is simply picked up on the
next poll.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from ..engine.telemetry import journal_files


def format_sse(event: dict[str, Any]) -> str:
    """One journal record as an SSE frame (``id`` carries the seq)."""
    name = event.get("event", "message")
    data = json.dumps(event, separators=(",", ":"))
    return f"id: {event.get('seq', 0)}\nevent: {name}\ndata: {data}\n\n"


class JournalFollower:
    """Incrementally yield journal events with ``seq`` greater than a cursor.

    Parameters
    ----------
    path:
        The journal's *current* file; rotated predecessors
        (``<name>.1`` …) are discovered through
        :func:`~repro.engine.telemetry.journal_files`.
    after_seq:
        Only events with ``seq`` strictly greater are yielded (``0``
        replays the whole journal) — exactly SSE ``Last-Event-ID``
        semantics.
    """

    def __init__(self, path: str | Path, after_seq: int = 0) -> None:
        self.path = Path(path)
        self.after_seq = after_seq
        #: Bytes already consumed, keyed by file identity (inode), so a
        #: rotation rename does not reset or double-read a file.
        self._offsets: dict[int, int] = {}

    def poll(self) -> list[dict[str, Any]]:
        """Every new event since the last poll, in sequence order."""
        events: list[dict[str, Any]] = []
        for file_path in journal_files(self.path):
            try:
                stat = file_path.stat()
            except OSError:
                continue
            offset = self._offsets.get(stat.st_ino, 0)
            if stat.st_size <= offset:
                continue
            try:
                with open(file_path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            # Consume only complete lines; a torn tail (an append in
            # flight) stays unconsumed until the next poll.
            cut = chunk.rfind(b"\n")
            if cut < 0:
                continue
            self._offsets[stat.st_ino] = offset + cut + 1
            for line in chunk[: cut + 1].splitlines():
                events.append(line)
        return list(self._decode(events))

    def _decode(self, lines: list[bytes]) -> Iterator[dict[str, Any]]:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            seq = record.get("seq")
            if isinstance(seq, int) and seq > self.after_seq:
                self.after_seq = seq
                yield record
