"""Execute one job against one engine — the CLI paths, verbatim.

The service's bit-identity guarantee lives here: for every job kind the
runner calls exactly the functions the corresponding CLI command calls,
with the same defaults, in the same order — ``customize`` goes through
:meth:`XpScalar.customize` (one benchmark) or
:meth:`XpScalar.customize_all` (several, cross-seeded), ``sweep``
through :class:`ClockSweep`, ``cross-matrix`` through
:func:`run_pipeline`, ``search-compare`` through
:func:`compare_strategies`.  A job resubmitted to the service therefore
returns the same numbers the one-shot CLI prints, and both populate the
shared result store under the same evaluation keys.

Results are serialized with the engine's canonical encoders
(:func:`config_to_jsonable`), so two replicas serving the same job emit
byte-equal JSON.
"""

from __future__ import annotations

from typing import Any

from ..engine import EvaluationEngine, config_to_jsonable
from ..errors import ServeError
from .jobs import JobSpec


def execute_job(spec: JobSpec, engine: EvaluationEngine) -> dict[str, Any]:
    """Run ``spec`` on ``engine`` and return the JSON-ready result."""
    from ..explore import AnnealingSchedule, ClockSweep, XpScalar
    from ..workloads import spec2000_profile

    profiles = [spec2000_profile(name) for name in spec.benchmarks]

    if spec.kind == "customize":
        xp = XpScalar(
            schedule=AnnealingSchedule(iterations=spec.iterations),
            engine=engine,
            strategy=spec.strategy,
            budget=spec.budget,
            restarts=spec.restarts,
        )
        if len(profiles) == 1:
            results = {profiles[0].name: xp.customize(profiles[0], seed=spec.seed)}
        else:
            results = xp.customize_all(profiles, seed=spec.seed)
        return {
            "kind": spec.kind,
            "benchmarks": [
                {
                    "benchmark": name,
                    "ipt": results[name].score,
                    "evaluations": (
                        results[name].annealing.evaluations
                        if results[name].annealing
                        else 0
                    ),
                    "cross_seeded_from": results[name].cross_seeded_from,
                    "config": config_to_jsonable(results[name].config),
                    "described": results[name].config.describe(),
                }
                for name in spec.benchmarks
            ],
        }

    if spec.kind == "sweep":
        xp = XpScalar(engine=engine)
        sweep = ClockSweep(
            xp,
            iterations=spec.iterations,
            strategy=spec.strategy,
            budget=spec.budget,
            restarts=spec.restarts,
        )
        points = sweep.run(
            profiles[0],
            list(spec.clocks) if spec.clocks is not None else None,
            seed=spec.seed,
        )
        return {
            "kind": spec.kind,
            "benchmark": spec.benchmarks[0],
            "points": [
                {
                    "clock_period_ns": p.clock_period_ns,
                    "ipt": p.score,
                    "config": config_to_jsonable(p.config),
                }
                for p in points
            ],
        }

    if spec.kind == "cross-matrix":
        from ..experiments import run_pipeline
        from ..explore import AnnealingSchedule as _Schedule

        explorer = XpScalar(
            schedule=_Schedule(iterations=spec.iterations),
            engine=engine,
            strategy=spec.strategy,
            budget=spec.budget,
            restarts=spec.restarts,
        )
        pipe = run_pipeline(
            profiles=profiles,
            iterations=spec.iterations,
            seed=spec.seed,
            explorer=explorer,
        )
        cross = pipe.cross
        return {
            "kind": spec.kind,
            "names": list(cross.names),
            "ipt": [[float(v) for v in row] for row in cross.ipt],
            "configs": [config_to_jsonable(c) for c in cross.configs],
        }

    if spec.kind == "pareto":
        from ..design import ParetoExplorer

        explorer = ParetoExplorer(engine=engine)
        fronts = explorer.fronts(
            profiles, samples=spec.samples or 128, seed=spec.seed
        )
        return {
            "kind": spec.kind,
            "fronts": [fronts[name].as_jsonable() for name in spec.benchmarks],
        }

    if spec.kind == "search-compare":
        from ..search.compare import compare_strategies

        report = compare_strategies(
            profiles,
            strategies=list(spec.strategies) if spec.strategies else None,
            iterations=spec.iterations,
            seed=spec.seed,
            budget=spec.budget,
            engine=engine,
            restarts=spec.restarts,
        )
        return {"kind": spec.kind, **report.to_jsonable()}

    raise ServeError(f"unknown job kind {spec.kind!r}")
