"""Stdlib HTTP client for the exploration service (``repro client``).

A thin, dependency-free wrapper over :mod:`http.client`: submit jobs,
poll status, fetch results, and iterate SSE progress events — including
transparent reconnect-with-``Last-Event-ID``, so a dropped stream
resumes from the journal without duplicating or losing events.  The
load harness and the service's own tests drive the API through this
client, so it stays honest.

The client is *transient-fault tolerant*: connection refusals/resets,
torn responses and timeouts are retried through the engine's
:class:`~repro.engine.resilience.RetryPolicy` with deterministic seeded
backoff, and 429/503 responses are retried after the server's
``Retry-After``.  Non-retryable trouble — a bad URL, DNS failure, any
other 4xx — fails fast.  :attr:`counters` tracks requests, retries,
polls and honoured Retry-After waits; ``repro client`` surfaces them,
and the chaos harness asserts over them.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Iterator
from urllib.parse import urlsplit

from ..engine.keys import derive_seed
from ..engine.resilience import RetryPolicy
from ..engine.telemetry import TRACEPARENT_HEADER, TraceContext
from ..errors import ServeClientError

#: Statuses retried after the server's Retry-After (or the backoff ramp).
RETRYABLE_STATUSES = (429, 503)

#: Cap on a single honoured Retry-After sleep; a server asking for more
#: still gets polled again within this bound (it can always re-ask).
MAX_RETRY_AFTER_S = 5.0


def _retry_after_s(headers: dict[str, str]) -> float | None:
    """The ``Retry-After`` delay (seconds) a response asked for, if any."""
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return min(max(float(value), 0.0), MAX_RETRY_AFTER_S)
            except ValueError:
                return None
    return None


class ServeClient:
    """Talk to one service replica at ``base_url``.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the replica.
    timeout:
        Per-request connect/read timeout in seconds.
    retry:
        Transient-failure policy (deterministic backoff).  The default
        derives its jitter seed from ``seed`` via
        :func:`~repro.engine.keys.derive_seed`, so replayed chaos runs
        sleep identically.
    retry_backpressure:
        When True, 429/503 responses are retried after the server's
        ``Retry-After`` instead of raising.  Off by default: a plain
        client surfaces backpressure to its caller (the load harness
        counts rejections); the :class:`~repro.serve.replicas.ReplicaSet`
        failover client turns it on.
    propagate_trace:
        When True (the default), :meth:`submit` mints a W3C-style trace
        context (or reuses one handed in) and sends ``traceparent`` on
        the submit and on every follow-up call for that job — status,
        result, SSE — so the service journals carry one fleet-wide
        trace id per submission.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        seed: int = 0,
        retry_backpressure: bool = False,
        propagate_trace: bool = True,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ServeClientError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.base_url = base_url
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.retry = retry or RetryPolicy(
            max_retries=3,
            backoff_base_s=0.05,
            backoff_max_s=1.0,
            seed=derive_seed(seed),
        )
        self.retry_backpressure = retry_backpressure
        self.propagate_trace = propagate_trace
        #: job id -> the TraceContext minted (or supplied) at submit.
        self.traces: dict[str, TraceContext] = {}
        #: Headers of the most recent response (lower-cased names).
        self.last_headers: dict[str, str] = {}
        #: Monotonic client-side telemetry (``repro_client_*`` territory).
        self.counters = {
            "requests": 0,
            "retries": 0,
            "retry_after_waits": 0,
            "polls": 0,
            "reconnects": 0,
        }

    # -- plumbing -------------------------------------------------------

    def _once(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One HTTP exchange: ``(status, headers, decoded-body)``.

        Raises ``OSError``/``http.client.HTTPException`` on transport
        trouble (the retry loop's food) and ``ServeClientError`` only
        for a bad hostname (configuration, fail fast).
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            send_headers = dict(headers or {})
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
            except socket.gaierror as exc:
                raise ServeClientError(
                    f"cannot resolve service host {self.host!r} ({exc})"
                ) from exc
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            if (
                response.status != 204
                and "content-length" not in response_headers
                and not response_headers.get("transfer-encoding")
            ):
                # The service always declares Content-Length; a response
                # without it is a head torn mid-headers (http.client
                # happily parses EOF as end-of-headers) — transport
                # fault, not an empty body.
                raise http.client.HTTPException(
                    f"headerless response from {method} {path} (torn head)"
                )
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError as exc:
                if "json" in response_headers.get("content-type", ""):
                    # A declared-JSON body that does not parse is a torn
                    # response (truncation mid-body) — transport fault.
                    raise http.client.HTTPException(
                        f"torn JSON body from {method} {path}"
                    ) from exc
                decoded = raw.decode("utf-8", errors="replace")
            return response.status, response_headers, decoded
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
        expect: tuple[int, ...] = (200, 202),
    ) -> tuple[int, Any]:
        """One API call with transient-failure retries.

        Connection-level failures (refused, reset, timeout, torn
        responses) and 429/503 responses are retried with deterministic
        backoff — 429/503 honouring the server's ``Retry-After`` as a
        floor.  Every other unexpected status raises immediately.
        """
        attempt = 0
        while True:
            self.counters["requests"] += 1
            try:
                status, response_headers, decoded = self._once(
                    method, path, body, headers
                )
            except (OSError, http.client.HTTPException) as exc:
                if attempt >= self.retry.max_retries:
                    raise ServeClientError(
                        f"cannot reach service at {self.host}:{self.port} "
                        f"after {attempt + 1} attempts ({exc})"
                    ) from exc
                attempt += 1
                self.counters["retries"] += 1
                time.sleep(self.retry.delay_s(f"{method} {path}", attempt))
                continue
            self.last_headers = response_headers
            if status in expect:
                return status, decoded
            message = (
                decoded.get("error", str(decoded))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            if (
                status in RETRYABLE_STATUSES
                and self.retry_backpressure
                and attempt < self.retry.max_retries
            ):
                attempt += 1
                self.counters["retries"] += 1
                retry_after = _retry_after_s(response_headers)
                if retry_after is not None:
                    self.counters["retry_after_waits"] += 1
                delay = self.retry.delay_s(f"{method} {path}", attempt)
                time.sleep(max(delay, retry_after or 0.0))
                continue
            raise ServeClientError(
                f"{method} {path} -> {status}: {message}", status=status
            )

    # -- API ------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")[1]

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")[1]

    def metrics_json(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metrics?format=json")[1]

    def _trace_headers(self, job_id: str | None) -> dict[str, str]:
        """The ``traceparent`` header for a known job's trace (or none)."""
        if job_id is None:
            return {}
        context = self.traces.get(job_id)
        if context is None:
            return {}
        return {TRACEPARENT_HEADER: context.header()}

    def submit(
        self, payload: dict[str, Any], trace: TraceContext | None = None
    ) -> dict[str, Any]:
        """Submit one job; returns the 202 body (id, state, links).

        With :attr:`propagate_trace` on, a trace context is minted (or
        ``trace`` reused — failover resubmits keep their original trace
        id) and sent as ``traceparent``; the mapping from the returned
        job id to its context is kept so follow-up calls carry it too.
        """
        headers: dict[str, str] = {}
        context: TraceContext | None = None
        if self.propagate_trace:
            context = trace if trace is not None else TraceContext.mint()
            headers[TRACEPARENT_HEADER] = context.header()
        body = self._request(
            "POST", "/v1/jobs", body=payload, headers=headers, expect=(202,)
        )[1]
        if context is not None and isinstance(body, dict) and body.get("id"):
            self.traces[body["id"]] = context
        return body

    def list_jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request(
            "GET", f"/v1/jobs/{job_id}", headers=self._trace_headers(job_id)
        )[1]

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job record (raises 409 ServeClientError while pending)."""
        return self._request(
            "GET",
            f"/v1/jobs/{job_id}/result",
            headers=self._trace_headers(job_id),
        )[1]

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
        backoff: float = 1.6,
    ) -> dict[str, Any]:
        """Poll until the job finishes; returns the full result record.

        The poll interval starts at ``poll_s`` and backs off by
        ``backoff`` up to ``max_poll_s`` — a saturated service is not
        hammered by waiting clients — and any ``Retry-After`` the
        server sends (429/503 mid-poll, or on the status response)
        takes precedence over the local ramp.  Poll/retry counts
        accumulate in :attr:`counters` (``repro client`` prints them).
        """
        deadline = time.monotonic() + timeout
        interval = max(poll_s, 0.001)
        while True:
            self.counters["polls"] += 1
            status = self.status(job_id)
            if status["state"] in ("completed", "failed"):
                return self.result(job_id)
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"job {job_id} still {status['state']} after {timeout:.0f}s"
                )
            retry_after = _retry_after_s(self.last_headers)
            if retry_after is not None:
                self.counters["retry_after_waits"] += 1
            time.sleep(retry_after if retry_after is not None else interval)
            interval = min(interval * backoff, max_poll_s)

    # -- SSE ------------------------------------------------------------

    def events(
        self,
        job_id: str,
        after_seq: int = 0,
        reconnect: bool = True,
        timeout: float = 300.0,
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's journal events as dicts, in sequence order.

        The stream ends when the service closes it (job finished).  With
        ``reconnect=True`` a dropped connection resumes transparently
        from the last seen event id — the SSE contract under test in the
        bridge suite.
        """
        last_seen = after_seq
        deadline = time.monotonic() + timeout
        while True:
            try:
                saw_end = yield from self._stream_once(job_id, last_seen)
            except ServeClientError:
                raise
            except (OSError, http.client.HTTPException) as exc:
                if not reconnect:
                    raise ServeClientError(f"event stream dropped ({exc})") from exc
                self.counters["reconnects"] += 1
                saw_end = False
            if saw_end:
                return
            if not reconnect or time.monotonic() > deadline:
                return
            last_seen = max(last_seen, self._last_yielded)
            time.sleep(0.05)

    _last_yielded = 0

    def _stream_once(self, job_id: str, after_seq: int) -> Iterator[dict[str, Any]]:
        """One SSE connection; returns True when the server ended the stream."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = dict(self._trace_headers(job_id))
            if after_seq:
                headers["Last-Event-ID"] = str(after_seq)
            conn.request("GET", f"/v1/jobs/{job_id}/events", headers=headers)
            response = conn.getresponse()
            if response.status != 200:
                raise ServeClientError(
                    f"event stream for {job_id} -> {response.status}",
                    status=response.status,
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return False  # connection dropped without the end marker
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    if frame.startswith(b":"):
                        return True  # ": stream complete" terminator
                    event = _parse_frame(frame.decode("utf-8"))
                    if event is not None:
                        self._last_yielded = event.get("seq", self._last_yielded)
                        yield event
        finally:
            conn.close()


def _parse_frame(frame: str) -> dict[str, Any] | None:
    """Decode one SSE frame's ``data:`` payload (None for non-data frames)."""
    data_lines = [
        line[5:].lstrip() for line in frame.splitlines() if line.startswith("data:")
    ]
    if not data_lines:
        return None
    try:
        return json.loads("\n".join(data_lines))
    except ValueError:
        return None
