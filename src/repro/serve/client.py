"""Stdlib HTTP client for the exploration service (``repro client``).

A thin, dependency-free wrapper over :mod:`http.client`: submit jobs,
poll status, fetch results, and iterate SSE progress events — including
transparent reconnect-with-``Last-Event-ID``, so a dropped stream
resumes from the journal without duplicating or losing events.  The
load harness and the service's own tests drive the API through this
client, so it stays honest.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator
from urllib.parse import urlsplit

from ..errors import ServeClientError


class ServeClient:
    """Talk to one service replica at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ServeClientError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
        expect: tuple[int, ...] = (200, 202),
    ) -> tuple[int, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            send_headers = dict(headers or {})
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
            except OSError as exc:
                raise ServeClientError(
                    f"cannot reach service at {self.host}:{self.port} ({exc})"
                ) from exc
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                decoded = raw.decode("utf-8", errors="replace")
            if response.status not in expect:
                message = (
                    decoded.get("error", str(decoded))
                    if isinstance(decoded, dict)
                    else str(decoded)
                )
                raise ServeClientError(
                    f"{method} {path} -> {response.status}: {message}",
                    status=response.status,
                )
            return response.status, decoded
        finally:
            conn.close()

    # -- API ------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")[1]

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")[1]

    def metrics_json(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metrics?format=json")[1]

    def submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Submit one job; returns the 202 body (id, state, links)."""
        return self._request("POST", "/v1/jobs", body=payload, expect=(202,))[1]

    def list_jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job record (raises 409 ServeClientError while pending)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")[1]

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job finishes; returns the full result record."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("completed", "failed"):
                return self.result(job_id)
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"job {job_id} still {status['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_s)

    # -- SSE ------------------------------------------------------------

    def events(
        self,
        job_id: str,
        after_seq: int = 0,
        reconnect: bool = True,
        timeout: float = 300.0,
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's journal events as dicts, in sequence order.

        The stream ends when the service closes it (job finished).  With
        ``reconnect=True`` a dropped connection resumes transparently
        from the last seen event id — the SSE contract under test in the
        bridge suite.
        """
        last_seen = after_seq
        deadline = time.monotonic() + timeout
        while True:
            try:
                saw_end = yield from self._stream_once(job_id, last_seen)
            except ServeClientError:
                raise
            except OSError as exc:
                if not reconnect:
                    raise ServeClientError(f"event stream dropped ({exc})") from exc
                saw_end = False
            if saw_end:
                return
            if not reconnect or time.monotonic() > deadline:
                return
            last_seen = max(last_seen, self._last_yielded)
            time.sleep(0.05)

    _last_yielded = 0

    def _stream_once(self, job_id: str, after_seq: int) -> Iterator[dict[str, Any]]:
        """One SSE connection; returns True when the server ended the stream."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(
                "GET",
                f"/v1/jobs/{job_id}/events",
                headers={"Last-Event-ID": str(after_seq)} if after_seq else {},
            )
            response = conn.getresponse()
            if response.status != 200:
                raise ServeClientError(
                    f"event stream for {job_id} -> {response.status}",
                    status=response.status,
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return False  # connection dropped without the end marker
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    if frame.startswith(b":"):
                        return True  # ": stream complete" terminator
                    event = _parse_frame(frame.decode("utf-8"))
                    if event is not None:
                        self._last_yielded = event.get("seq", self._last_yielded)
                        yield event
        finally:
            conn.close()


def _parse_frame(frame: str) -> dict[str, Any] | None:
    """Decode one SSE frame's ``data:`` payload (None for non-data frames)."""
    data_lines = [
        line[5:].lstrip() for line in frame.splitlines() if line.startswith("data:")
    ]
    if not data_lines:
        return None
    try:
        return json.loads("\n".join(data_lines))
    except ValueError:
        return None
