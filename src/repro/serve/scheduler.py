"""Fair-share admission and dispatch for the exploration service.

One service hosts many tenants; exploration jobs are seconds-to-minutes
long, so ordering is policy, not an accident of arrival.  The scheduler
enforces three rules, all thread-safe (submissions arrive on the asyncio
loop, completions on executor threads):

* **bounded queues** — each tenant gets a bounded FIFO and the service a
  global bound; an admission over either limit raises
  :class:`~repro.errors.QueueFullError`, which the HTTP layer turns into
  an explicit ``429 Retry-After`` instead of unbounded buffering;
* **fair dispatch** — ready jobs are picked round-robin across tenants
  (deterministic: alphabetical ring, rotating cursor), so one tenant
  bulk-submitting cannot starve another's single job;
* **per-tenant caps** — at most ``max_running`` jobs per tenant execute
  concurrently, and a tenant-wide :class:`SearchBudget` cap is merged
  (field-wise minimum) into every job's requested budget, reusing the
  search layer's budget machinery as the service's resource-limit
  vocabulary.

Queue depth and running counts are exported as gauges by the service
(see :mod:`repro.serve.service`).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..errors import QueueFullError, ServeError
from ..search import SearchBudget
from .jobs import Job, merge_budgets


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant limits (one policy applies to every tenant uniformly).

    ``budget`` is the tenant-wide per-job evaluation cap: merged into
    each job's own requested budget so a tenant can never *loosen* the
    service's limit, only tighten it further.
    """

    max_queued: int = 16
    max_running: int = 2
    budget: SearchBudget | None = None

    @classmethod
    def parse(cls, spec: str | None) -> "TenantPolicy":
        """Parse a ``--tenant-budget`` spec like
        ``'queued=16,running=2,evals=5000,moves=8000,patience=500'``."""
        if not spec:
            return cls()
        fields: dict[str, int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            if not sep:
                raise ServeError(
                    f"malformed tenant budget part {part!r} (want name=value)"
                )
            try:
                fields[name.strip()] = int(value)
            except ValueError:
                raise ServeError(
                    f"tenant budget {name.strip()!r} must be an integer, "
                    f"got {value!r}"
                ) from None
        unknown = set(fields) - {"queued", "running", "evals", "moves", "patience"}
        if unknown:
            raise ServeError(
                f"unknown tenant budget fields: {', '.join(sorted(unknown))}; "
                "known: queued, running, evals, moves, patience"
            )
        budget = None
        if any(k in fields for k in ("evals", "moves", "patience")):
            budget = SearchBudget(
                max_evaluations=fields.get("evals"),
                max_moves=fields.get("moves"),
                plateau_patience=fields.get("patience"),
            )
        return cls(
            max_queued=fields.get("queued", cls.max_queued),
            max_running=fields.get("running", cls.max_running),
            budget=budget,
        )


class FairShareScheduler:
    """Bounded multi-tenant job queue with round-robin dispatch."""

    def __init__(
        self, policy: TenantPolicy | None = None, max_total_queued: int = 64
    ) -> None:
        self.policy = policy if policy is not None else TenantPolicy()
        self.max_total_queued = max_total_queued
        self._queues: dict[str, deque[Job]] = {}
        self._running: dict[str, int] = {}
        self._cursor = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- admission ------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Admit one job, or raise :class:`QueueFullError` (HTTP 429)."""
        with self._lock:
            if self._closed:
                raise QueueFullError("service is draining; not accepting jobs")
            total = sum(len(q) for q in self._queues.values())
            if total >= self.max_total_queued:
                raise QueueFullError(
                    f"service queue is full ({total} jobs waiting)",
                    retry_after_s=2.0,
                )
            queue = self._queues.setdefault(job.tenant, deque())
            if len(queue) >= self.policy.max_queued:
                raise QueueFullError(
                    f"tenant {job.tenant!r} queue is full "
                    f"({len(queue)}/{self.policy.max_queued} jobs waiting)",
                    retry_after_s=1.0,
                )
            # The tenant cap is applied at admission so the job record
            # (and its SSE stream) shows the budget that actually ran.
            job.spec = job.spec.with_budget(
                merge_budgets(job.spec.budget, self.policy.budget)
            )
            queue.append(job)

    # -- dispatch -------------------------------------------------------

    def next_job(self) -> Job | None:
        """The next ready job under fair-share order, or ``None``.

        Tenants are visited round-robin from a rotating cursor over the
        sorted tenant ring; a tenant at its ``max_running`` cap is
        skipped.  Claiming increments the tenant's running count — pair
        every claim with :meth:`job_finished`.
        """
        with self._lock:
            ring = sorted(name for name, q in self._queues.items() if q)
            if not ring:
                return None
            start = self._cursor % len(ring)
            for step in range(len(ring)):
                tenant = ring[(start + step) % len(ring)]
                if self._running.get(tenant, 0) >= self.policy.max_running:
                    continue
                job = self._queues[tenant].popleft()
                self._running[tenant] = self._running.get(tenant, 0) + 1
                self._cursor = (start + step + 1) % len(ring)
                return job
            return None

    def job_finished(self, tenant: str) -> None:
        """Release one running slot for ``tenant``."""
        with self._lock:
            count = self._running.get(tenant, 0)
            if count <= 1:
                self._running.pop(tenant, None)
            else:
                self._running[tenant] = count - 1

    # -- shutdown / introspection --------------------------------------

    def drain(self) -> list[Job]:
        """Stop admissions and return every still-queued job."""
        with self._lock:
            self._closed = True
            remaining = [job for q in self._queues.values() for job in q]
            self._queues.clear()
            return remaining

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._closed

    def depths(self) -> dict[str, Any]:
        """Queue and running counts, total and per tenant."""
        with self._lock:
            per_tenant = {
                tenant: {
                    "queued": len(self._queues.get(tenant, ())),
                    "running": self._running.get(tenant, 0),
                }
                for tenant in sorted(set(self._queues) | set(self._running))
            }
            return {
                "queued": sum(len(q) for q in self._queues.values()),
                "running": sum(self._running.values()),
                "tenants": per_tenant,
            }
