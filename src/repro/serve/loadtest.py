"""Load-test harness for the exploration service (``repro serve-bench``).

Fires many concurrent small customization jobs at a service — a
self-booted in-process replica by default, or any running one via
``--url`` — and writes the serve performance contract to
``BENCH_serve.json``: end-to-end latency percentiles (p50/p95/p99,
submit→completed wall time) and the shared-store cache-hit rate.  The
job mix deliberately repeats specs: repeat queries are exactly the
traffic a result-store-backed service exists for, and the hit rate on
them is the number CI asserts on.

Deterministic job content (fixed seeds, fixed benchmark rotation) keeps
runs comparable; wall-clock latencies are machine-dependent, which is
why CI asserts a generous p99 bound rather than a tight regression gate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ServeClientError
from .client import ServeClient

#: Benchmarks rotated through by the generated job mix (small profiles).
DEFAULT_MIX = ("gzip", "mcf", "parser", "vpr")


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(int(round(q / 100.0 * len(sorted_values) + 0.5)), 1)
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class LoadReport:
    """Everything one harness run measured."""

    jobs: int
    clients: int
    iterations: int
    repeat_fraction: float
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    latencies_s: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    evaluations: int = 0
    repeated_with_zero_evaluations: int = 0
    repeated_jobs: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_jsonable(self) -> dict[str, Any]:
        latencies = sorted(self.latencies_s)
        return {
            "bench": "serve",
            "jobs": self.jobs,
            "clients": self.clients,
            "iterations": self.iterations,
            "repeat_fraction": self.repeat_fraction,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_jobs_per_s": (
                round(self.completed / self.wall_seconds, 6)
                if self.wall_seconds
                else 0.0
            ),
            "latency_s": {
                "p50": round(percentile(latencies, 50), 6),
                "p95": round(percentile(latencies, 95), 6),
                "p99": round(percentile(latencies, 99), 6),
                "max": round(latencies[-1], 6) if latencies else 0.0,
                "mean": (
                    round(sum(latencies) / len(latencies), 6) if latencies else 0.0
                ),
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 6),
            },
            "evaluations": self.evaluations,
            "repeated_jobs": self.repeated_jobs,
            "repeated_with_zero_evaluations": self.repeated_with_zero_evaluations,
        }

    def write(self, path: str | Path) -> Path:
        from ..engine.io_atomic import write_json_atomic

        target = Path(path)
        write_json_atomic(target, self.to_jsonable(), indent=2)
        return target


def _job_mix(total: int, iterations: int, repeat_every: int) -> list[dict[str, Any]]:
    """``total`` customize payloads; every ``repeat_every``-th repeats
    the first spec verbatim (the shared-store hit the harness measures)."""
    payloads = []
    for index in range(total):
        if repeat_every and index and index % repeat_every == 0:
            payloads.append(dict(payloads[0]))
        else:
            payloads.append(
                {
                    "kind": "customize",
                    "benchmarks": [DEFAULT_MIX[index % len(DEFAULT_MIX)]],
                    "iterations": iterations,
                    "seed": index % 3,  # few distinct seeds -> some reuse
                }
            )
    return payloads


def run_load_test(
    url: str | None = None,
    total_jobs: int = 12,
    clients: int = 4,
    iterations: int = 40,
    repeat_every: int = 3,
    service_jobs: int = 2,
    cache_backend: str | None = None,
    timeout_s: float = 600.0,
) -> LoadReport:
    """Drive the load and return the report.

    With ``url=None`` a service replica is booted in-process on an
    ephemeral port (backend ``sqlite:<tmp>`` unless ``cache_backend``
    says otherwise) and torn down afterwards.
    """
    import tempfile

    from .service import ExplorationService, ServiceThread

    own_service = None
    if url is None:
        if cache_backend is None:
            store = Path(tempfile.mkdtemp(prefix="repro-bench-")) / "results.sqlite"
            cache_backend = f"sqlite:{store}"
        own_service = ServiceThread(
            ExplorationService(jobs=service_jobs, cache_backend=cache_backend)
        ).start()
        url = own_service.base_url

    payloads = _job_mix(total_jobs, iterations, repeat_every)
    repeated = {
        i for i in range(total_jobs) if repeat_every and i and i % repeat_every == 0
    }
    report = LoadReport(
        jobs=total_jobs,
        clients=clients,
        iterations=iterations,
        repeat_fraction=len(repeated) / total_jobs if total_jobs else 0.0,
    )
    lock = threading.Lock()
    cursor = {"next": 0}

    def worker() -> None:
        client = ServeClient(url, timeout=timeout_s)
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(payloads):
                    return
                cursor["next"] = index + 1
            payload = payloads[index]
            started = time.perf_counter()
            try:
                submitted = client.submit(payload)
                record = client.wait(submitted["id"], timeout=timeout_s)
            except ServeClientError as exc:
                with lock:
                    if exc.status == 429:
                        report.rejected += 1
                    else:
                        report.failed += 1
                continue
            latency = time.perf_counter() - started
            stats = record.get("stats") or {}
            cache = stats.get("cache") or {}
            with lock:
                if record.get("state") == "completed":
                    report.completed += 1
                    report.latencies_s.append(latency)
                else:
                    report.failed += 1
                report.evaluations += int(stats.get("evaluations", 0))
                report.cache_hits += int(cache.get("hits", 0))
                report.cache_misses += int(cache.get("misses", 0))
                if index in repeated:
                    report.repeated_jobs += 1
                    if int(stats.get("evaluations", 0)) == 0:
                        report.repeated_with_zero_evaluations += 1

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"bench-client-{i}", daemon=True)
        for i in range(clients)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout_s)
    finally:
        report.wall_seconds = time.perf_counter() - started
        if own_service is not None:
            own_service.stop()
    return report
