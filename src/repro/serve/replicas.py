"""Replica discovery, load balancing and failover for ``repro serve``.

One :class:`~repro.serve.client.ServeClient` talks to one replica; this
module makes a *fleet* of replicas usable as a single logical service:

* **health probing** — each replica's ``/v1/healthz`` is probed with a
  short timeout and cached for ``probe_ttl_s``; a replica that fails a
  call is marked down immediately and re-probed lazily, so a restarted
  replica rejoins the rotation without operator action;
* **deterministic load balancing** — jobs are placed by rendezvous
  hashing over the healthy replicas: the replica with the highest
  ``unit_draw(seed, url, job-digest)`` wins.  Placement is a pure
  function of (seed, healthy set, payload), so a replayed run submits
  the same jobs to the same replicas;
* **failover** — when a replica dies mid-job (connection refused/reset
  after the client's own retry budget, or a 404 from a replica that
  restarted and lost its job table), the job is *resubmitted* to the
  next healthy replica.  Replicas sharing one result store make this
  cheap and safe: the re-run is served from the store (or recomputed
  deterministically), so the final record is bit-identical to what the
  dead replica would have produced — the chaos suite asserts exactly
  this;
* **hedged status polls** — a poll that dawdles past ``hedge_s`` gets a
  second, concurrent attempt on a fresh connection; first answer wins.
  A replica with one wedged connection does not stall the wait loop;
* **SSE failover** — event streams resume on the same replica via the
  journal's ``Last-Event-ID`` contract; when the replica is gone, the
  stream fails over with the job (the re-run's journal restarts from
  sequence 1) and a synthetic ``replica_failover`` event marks the seam
  so consumers never mistake the restart for lost history.

Counters for all of it accumulate in :attr:`ReplicaSet.counters` (the
``repro_client_*`` telemetry the chaos harness exports).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..engine.keys import digest, unit_draw
from ..engine.resilience import RetryPolicy
from ..engine.telemetry import TraceContext
from ..errors import ServeClientError
from .client import ServeClient

#: Statuses that mean "this replica cannot take/continue the job right
#: now, another might": connection-level (None), overload, restart-loss.
_FAILOVER_STATUSES = (None, 404, 429, 500, 502, 503, 504)


@dataclass
class JobHandle:
    """One logical job, possibly re-homed across replicas.

    ``attempts`` records every ``(replica_url, job_id)`` incarnation in
    order; the last entry is the live one.
    """

    payload: dict[str, Any]
    replica: str
    job_id: str
    key: str
    attempts: list = field(default_factory=list)
    #: The distributed-trace context minted at first submit; every
    #: incarnation (failover resubmits included) reuses it, so the trace
    #: id is constant across the job's whole cross-replica story.
    trace: TraceContext | None = None

    @property
    def trace_id(self) -> str | None:
        return self.trace.trace_id if self.trace is not None else None

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "id": self.job_id,
            "replica": self.replica,
            "trace_id": self.trace_id,
            "attempts": [list(a) for a in self.attempts],
        }


class ReplicaSet:
    """A failover client over N service replicas sharing one store.

    Parameters
    ----------
    urls:
        Replica base URLs (``http://host:port``).  Order is irrelevant;
        placement is rendezvous-hashed.
    seed:
        Seed of the placement hash and of every per-replica client's
        deterministic retry backoff.
    timeout:
        Per-request timeout handed to each replica's client.
    retry:
        Transient-failure policy for the per-replica clients (each gets
        the policy reseeded per replica index, so their jitter streams
        stay disjoint but replayable).
    hedge_s:
        Status-poll hedging threshold; ``None`` disables hedging.
    probe_ttl_s:
        How long a health verdict stays fresh before re-probing.
    max_failovers:
        Total job re-homes tolerated before giving up (defaults to
        ``3 * len(urls)``).
    """

    def __init__(
        self,
        urls: list[str] | tuple[str, ...],
        seed: int = 0,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        hedge_s: float | None = 0.75,
        probe_ttl_s: float = 2.0,
        max_failovers: int | None = None,
    ) -> None:
        urls = tuple(dict.fromkeys(urls))  # dedupe, keep order for display
        if not urls:
            raise ServeClientError("a replica set needs at least one URL")
        self.urls = urls
        self.seed = seed
        self.hedge_s = hedge_s
        self.probe_ttl_s = probe_ttl_s
        self.max_failovers = (
            max_failovers if max_failovers is not None else 3 * len(urls)
        )
        base_retry = retry or RetryPolicy(
            max_retries=3, backoff_base_s=0.05, backoff_max_s=1.0
        )
        self.clients: dict[str, ServeClient] = {}
        self._probes: dict[str, ServeClient] = {}
        for index, url in enumerate(urls):
            self.clients[url] = ServeClient(
                url,
                timeout=timeout,
                retry=RetryPolicy(
                    max_retries=base_retry.max_retries,
                    backoff_base_s=base_retry.backoff_base_s,
                    backoff_factor=base_retry.backoff_factor,
                    backoff_max_s=base_retry.backoff_max_s,
                    jitter=base_retry.jitter,
                    seed=seed + index,
                ),
                retry_backpressure=True,
            )
            # Probes answer fast or not at all: short timeout, no retries.
            self._probes[url] = ServeClient(
                url,
                timeout=min(timeout, 2.0),
                retry=RetryPolicy(max_retries=0),
            )
        self._health = {
            url: {"ok": True, "at": float("-inf"), "error": None} for url in urls
        }
        self._lock = threading.Lock()
        self.counters = {
            "submits": 0,
            "resubmits": 0,
            "failovers": 0,
            "hedged_polls": 0,
            "set_polls": 0,
            "probes": 0,
        }

    # ------------------------------------------------------------------
    # health + placement
    # ------------------------------------------------------------------

    def probe(self, url: str) -> bool:
        """One live ``/v1/healthz`` round-trip; updates the cached verdict."""
        with self._lock:
            self.counters["probes"] += 1
        try:
            body = self._probes[url].health()
            ok = isinstance(body, dict) and body.get("status") in ("ok", "draining")
            error = None if ok else f"unexpected health body: {body!r}"
        except (ServeClientError, OSError) as exc:
            ok, error = False, str(exc)
        with self._lock:
            self._health[url] = {"ok": ok, "at": time.monotonic(), "error": error}
        return ok

    def mark_down(self, url: str, reason: str) -> None:
        """Record a replica as unhealthy without waiting for a probe."""
        with self._lock:
            self._health[url] = {
                "ok": False,
                "at": time.monotonic(),
                "error": reason,
            }

    def healthy_urls(self) -> list[str]:
        """Every replica currently believed healthy (probing stale ones).

        When *no* replica looks healthy, every one is re-probed once —
        a restarted replica rejoins here — before giving up.
        """
        now = time.monotonic()
        for url in self.urls:
            with self._lock:
                state = self._health[url]
                stale = now - state["at"] > self.probe_ttl_s
            if stale:
                self.probe(url)
        with self._lock:
            healthy = [url for url in self.urls if self._health[url]["ok"]]
        if not healthy:
            for url in self.urls:
                self.probe(url)
            with self._lock:
                healthy = [url for url in self.urls if self._health[url]["ok"]]
        if not healthy:
            with self._lock:
                reasons = {
                    url: self._health[url]["error"] for url in self.urls
                }
            raise ServeClientError(f"no healthy replicas: {reasons}")
        return healthy

    def rank(self, key: str, candidates: list[str] | None = None) -> list[str]:
        """Healthy replicas in rendezvous order for ``key`` (best first)."""
        pool = candidates if candidates is not None else self.healthy_urls()
        return sorted(
            pool,
            key=lambda url: unit_draw("replica-pick", self.seed, url, key),
            reverse=True,
        )

    def pick(self, key: str) -> str:
        """The preferred replica for ``key`` (deterministic)."""
        return self.rank(key)[0]

    def health_report(self) -> dict[str, Any]:
        with self._lock:
            return {url: dict(state) for url, state in self._health.items()}

    # ------------------------------------------------------------------
    # submit / status / result with failover
    # ------------------------------------------------------------------

    @staticmethod
    def payload_key(payload: dict[str, Any]) -> str:
        """Content digest of a job payload (the placement key)."""
        return digest(payload)

    @staticmethod
    def _is_failover(exc: ServeClientError) -> bool:
        return getattr(exc, "status", None) in _FAILOVER_STATUSES

    #: Full passes over the healthy ranking before a placement gives up.
    #: One pass can fail everywhere without any replica being down —
    #: under injected faults the per-connection streak bound protects
    #: the *proxy's* connection sequence, not any single caller's, so
    #: every candidate can lose its whole retry budget to interleaved
    #: bad luck.  A later pass re-probes and tries again.
    _placement_passes = 3

    def _place(
        self,
        payload: dict[str, Any],
        key: str,
        exclude: str | None,
        trace: TraceContext | None = None,
    ):
        """Submit ``payload`` to the best healthy replica; multi-pass walk."""
        last: ServeClientError | None = None
        for attempt in range(self._placement_passes):
            if attempt:
                time.sleep(0.2 * attempt)
            try:
                candidates = self.healthy_urls()
            except ServeClientError as exc:
                last = exc
                continue
            if exclude is not None:
                trimmed = [u for u in candidates if u != exclude]
                # The excluded replica may be the only one left (it
                # might have merely restarted) — reconsider everything.
                candidates = trimmed or candidates
            for url in self.rank(key, candidates):
                try:
                    return url, self.clients[url].submit(payload, trace=trace)
                except ServeClientError as exc:
                    if not self._is_failover(exc):
                        raise
                    last = exc
                    self.mark_down(url, str(exc))
        raise last or ServeClientError("no healthy replicas accepted the job")

    def submit(self, payload: dict[str, Any]) -> JobHandle:
        """Place one job on the best healthy replica (walking the ranking)."""
        key = self.payload_key(payload)
        trace = TraceContext.mint()
        url, submitted = self._place(payload, key, exclude=None, trace=trace)
        with self._lock:
            self.counters["submits"] += 1
        handle = JobHandle(
            payload=dict(payload),
            replica=url,
            job_id=submitted["id"],
            key=key,
            trace=trace,
        )
        handle.attempts.append((url, submitted["id"]))
        return handle

    def _failover(self, handle: JobHandle, reason: str) -> None:
        """Re-home ``handle`` onto the next healthy replica (resubmit)."""
        if len(handle.attempts) > self.max_failovers:
            raise ServeClientError(
                f"job {handle.job_id} exceeded {self.max_failovers} failovers "
                f"({reason})"
            )
        self.mark_down(handle.replica, reason)
        with self._lock:
            self.counters["failovers"] += 1
        # Resubmit under the SAME trace context: the re-run is the same
        # logical job, so its journal joins the original trace.
        url, submitted = self._place(
            handle.payload, handle.key, exclude=handle.replica, trace=handle.trace
        )
        with self._lock:
            self.counters["resubmits"] += 1
        handle.replica = url
        handle.job_id = submitted["id"]
        handle.attempts.append((url, submitted["id"]))

    def _with_failover(self, handle: JobHandle, call):
        """Run ``call(client, job_id)``, re-homing the job on replica loss."""
        while True:
            try:
                return call(self.clients[handle.replica], handle.job_id)
            except ServeClientError as exc:
                if not self._is_failover(exc):
                    raise
                self._failover(handle, str(exc))

    def status(self, handle: JobHandle) -> dict[str, Any]:
        return self._with_failover(handle, lambda c, j: c.status(j))

    def result(self, handle: JobHandle) -> dict[str, Any]:
        return self._with_failover(handle, lambda c, j: c.result(j))

    # ------------------------------------------------------------------
    # waiting (hedged polls)
    # ------------------------------------------------------------------

    def _hedged_status(self, handle: JobHandle) -> dict[str, Any]:
        """One status poll, hedged with a second connection when slow.

        Both attempts target the job's current replica (hedging defeats
        a slow/wedged *connection*; a dead *replica* is the failover
        path's job).  The first successful answer wins; if both fail the
        failure propagates to the failover logic.  Attempts run on
        daemon threads: an abandoned straggler never blocks shutdown.
        """
        client = self.clients[handle.replica]
        job_id = handle.job_id
        if self.hedge_s is None:
            return client.status(job_id)
        answers: "queue.Queue[tuple[str, Any]]" = queue.Queue()

        def attempt() -> None:
            try:
                answers.put(("ok", client.status(job_id)))
            except Exception as exc:  # handed back to the caller below
                answers.put(("error", exc))

        threading.Thread(
            target=attempt, name="repro-replica-poll", daemon=True
        ).start()
        launched = 1
        try:
            kind, value = answers.get(timeout=self.hedge_s)
        except queue.Empty:
            with self._lock:
                self.counters["hedged_polls"] += 1
            threading.Thread(
                target=attempt, name="repro-replica-hedge", daemon=True
            ).start()
            launched = 2
            kind, value = self._await_answer(answers, client, job_id)
        if kind == "ok":
            return value
        if launched == 2:
            # The first answer was a failure; the other attempt may
            # still come through.
            kind, value = self._await_answer(answers, client, job_id)
            if kind == "ok":
                return value
        raise value

    def _await_answer(self, answers, client: ServeClient, job_id: str):
        """Next attempt outcome, bounded by the client's worst case."""
        worst = (client.retry.max_retries + 1) * client.timeout + 10.0
        try:
            return answers.get(timeout=worst)
        except queue.Empty:
            return (
                "error",
                ServeClientError(
                    f"hedged status poll for {job_id} produced no answer "
                    f"within {worst:.0f}s"
                ),
            )

    def wait(
        self,
        handle: JobHandle,
        timeout: float = 300.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
        backoff: float = 1.6,
    ) -> dict[str, Any]:
        """Poll (with hedging + failover) until the job finishes."""
        deadline = time.monotonic() + timeout
        interval = max(poll_s, 0.001)
        while True:
            with self._lock:
                self.counters["set_polls"] += 1
            try:
                status = self._hedged_status(handle)
            except ServeClientError as exc:
                if not self._is_failover(exc):
                    raise
                self._failover(handle, str(exc))
                continue
            if status["state"] in ("completed", "failed"):
                return self.result(handle)
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"job {handle.job_id} still {status['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(interval)
            interval = min(interval * backoff, max_poll_s)

    def run(self, payload: dict[str, Any], timeout: float = 300.0) -> dict[str, Any]:
        """Submit one job and wait it out (the one-call convenience)."""
        return self.wait(self.submit(payload), timeout=timeout)

    # ------------------------------------------------------------------
    # SSE with failover
    # ------------------------------------------------------------------

    def events(
        self, handle: JobHandle, timeout: float = 300.0
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's journal events, surviving replica loss.

        Same-replica drops resume losslessly from the last seen event id
        (the service's ``Last-Event-ID`` contract).  When the replica is
        gone, the job fails over — the re-run journals from scratch, so
        the stream restarts at sequence 1 after a synthetic
        ``{"event": "replica_failover"}`` marker.
        """
        deadline = time.monotonic() + timeout
        after = 0
        while True:
            incarnation = (handle.replica, handle.job_id)
            client = self.clients[handle.replica]
            dropped: Exception | None = None
            try:
                for event in client.events(
                    handle.job_id,
                    after_seq=after,
                    reconnect=False,
                    timeout=max(deadline - time.monotonic(), 0.1),
                ):
                    after = max(after, int(event.get("seq", after)))
                    yield event
            except ServeClientError as exc:
                if not self._is_failover(exc):
                    raise
                dropped = exc
            if dropped is None:
                # The stream closed; completed streams end with the
                # server's terminator, but a mid-job drop looks the
                # same — only the job state can tell them apart.  The
                # status call may itself re-home the job (its replica
                # died after closing the stream) — detected below by
                # the incarnation check.
                if self.status(handle)["state"] in ("completed", "failed") and (
                    handle.replica,
                    handle.job_id,
                ) == incarnation:
                    return
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"event stream for {handle.job_id} incomplete "
                    f"after {timeout:.0f}s"
                )
            if (
                dropped is not None
                and (handle.replica, handle.job_id) == incarnation
                and not self.probe(handle.replica)
            ):
                self._failover(handle, str(dropped))
            if (handle.replica, handle.job_id) != incarnation:
                # The job was re-homed (by the drop path above or inside
                # a failover-wrapped status call): the re-run journals
                # from scratch, so restart the cursor and mark the seam.
                after = 0
                yield {
                    "event": "replica_failover",
                    "from": incarnation[0],
                    "to": handle.replica,
                    "job": handle.job_id,
                    "trace_id": handle.trace_id,
                }
            else:
                time.sleep(0.05)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def counters_snapshot(self) -> dict[str, int]:
        """Set-level counters plus the per-replica clients' sums.

        The aggregate keys are the ``repro_client_*`` metrics the chaos
        CLI exports: ``retries`` feeds ``repro_client_retries``.
        """
        with self._lock:
            merged = dict(self.counters)
        for name in ("requests", "retries", "retry_after_waits", "polls",
                     "reconnects"):
            merged[name] = sum(c.counters[name] for c in self.clients.values())
            merged[name] += self._probes_counter(name)
        return merged

    def _probes_counter(self, name: str) -> int:
        return sum(c.counters[name] for c in self._probes.values())

    def close(self) -> None:
        """Nothing to tear down (hedge threads are daemons); kept for
        symmetry with the context-manager protocol."""

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
