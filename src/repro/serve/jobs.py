"""Job vocabulary of the exploration service.

A *job* is one exploration request — the service-side twin of one CLI
invocation.  :class:`JobSpec` is the validated, immutable request
(``kind`` selects which CLI path the runner mirrors); :class:`Job` is
the mutable service-side record tracking it from ``queued`` through
``running`` to ``completed``/``failed``.

Specs are deliberately *canonical*: :meth:`JobSpec.from_payload`
validates every field against the same vocabularies the CLI uses
(benchmark names, strategy registry) and fills the same defaults, so a
job submitted twice — or submitted to two replicas — has the same
content digest and therefore the same evaluation keys in the shared
result store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from ..engine.keys import digest
from ..errors import ServeError
from ..search import SearchBudget, strategy_names
from ..workloads import SPEC2000_INT_NAMES

#: Every job kind the runner knows, mapped to its CLI iteration default.
JOB_KINDS = {
    "customize": 2500,
    "sweep": 600,
    "cross-matrix": 2500,
    "search-compare": 400,
    "pareto": 1,  # pareto jobs size by `samples`, not iterations
}

#: Seed defaults per kind (the CLI's: explorations 0, the pipeline 2008).
DEFAULT_SEEDS = {
    "customize": 0,
    "sweep": 0,
    "cross-matrix": 2008,
    "search-compare": 0,
    "pareto": 0,
}

#: CLI default for pareto jobs' design-space sample count.
DEFAULT_PARETO_SAMPLES = 128

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

TERMINAL_STATES = (COMPLETED, FAILED)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServeError(message)


@dataclass(frozen=True)
class JobSpec:
    """One validated exploration request.

    ``kind`` picks the code path (mirroring the CLI command of the same
    name); the remaining fields are that command's flags.  Instances are
    only built through :meth:`from_payload`, which normalizes defaults
    so equal requests are equal objects.
    """

    kind: str
    benchmarks: tuple[str, ...]
    iterations: int
    seed: int
    strategy: str = "anneal"
    restarts: int = 4
    max_evaluations: int | None = None
    max_moves: int | None = None
    plateau_patience: int | None = None
    clocks: tuple[float, ...] | None = None
    strategies: tuple[str, ...] | None = None
    samples: int | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Validate a JSON request body into a canonical spec."""
        _require(isinstance(payload, dict), "job payload must be a JSON object")
        unknown = set(payload) - {
            "kind", "benchmarks", "iterations", "seed", "strategy", "restarts",
            "max_evaluations", "max_moves", "plateau_patience", "clocks",
            "strategies", "samples", "tenant",
        }
        _require(not unknown, f"unknown job fields: {', '.join(sorted(unknown))}")

        kind = payload.get("kind")
        _require(
            kind in JOB_KINDS,
            f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}",
        )
        benchmarks = payload.get("benchmarks")
        _require(
            isinstance(benchmarks, (list, tuple)) and benchmarks,
            "benchmarks must be a non-empty list",
        )
        bad = [b for b in benchmarks if b not in SPEC2000_INT_NAMES]
        _require(
            not bad,
            f"unknown benchmarks: {', '.join(map(str, bad))}; "
            f"known: {', '.join(SPEC2000_INT_NAMES)}",
        )
        if kind == "sweep":
            _require(len(benchmarks) == 1, "sweep takes exactly one benchmark")

        iterations = payload.get("iterations", JOB_KINDS[kind])
        _require(
            isinstance(iterations, int) and iterations >= 1,
            f"iterations must be a positive integer, got {iterations!r}",
        )
        seed = payload.get("seed", DEFAULT_SEEDS[kind])
        _require(isinstance(seed, int), f"seed must be an integer, got {seed!r}")

        strategy = payload.get("strategy", "anneal")
        _require(
            strategy in strategy_names(),
            f"unknown strategy {strategy!r}; known: {', '.join(strategy_names())}",
        )
        restarts = payload.get("restarts", 4)
        _require(
            isinstance(restarts, int) and restarts >= 1,
            f"restarts must be a positive integer, got {restarts!r}",
        )

        def _bound(name: str) -> int | None:
            value = payload.get(name)
            if value is None:
                return None
            _require(
                isinstance(value, int) and value >= 1,
                f"{name} must be a positive integer, got {value!r}",
            )
            return value

        clocks = payload.get("clocks")
        if clocks is not None:
            _require(kind == "sweep", "clocks only apply to sweep jobs")
            _require(
                isinstance(clocks, (list, tuple))
                and clocks
                and all(isinstance(c, (int, float)) and c > 0 for c in clocks),
                "clocks must be a non-empty list of positive numbers",
            )
            clocks = tuple(float(c) for c in clocks)

        strategies = payload.get("strategies")
        if strategies is not None:
            _require(
                kind == "search-compare",
                "strategies only apply to search-compare jobs",
            )
            _require(
                isinstance(strategies, (list, tuple)) and strategies,
                "strategies must be a non-empty list",
            )
            bad = [s for s in strategies if s not in strategy_names()]
            _require(
                not bad,
                f"unknown strategies: {', '.join(map(str, bad))}; "
                f"known: {', '.join(strategy_names())}",
            )
            strategies = tuple(strategies)

        samples = payload.get("samples")
        if samples is not None:
            _require(kind == "pareto", "samples only apply to pareto jobs")
            _require(
                isinstance(samples, int) and samples >= 1,
                f"samples must be a positive integer, got {samples!r}",
            )
        elif kind == "pareto":
            samples = DEFAULT_PARETO_SAMPLES

        return cls(
            kind=kind,
            benchmarks=tuple(benchmarks),
            iterations=iterations,
            seed=seed,
            strategy=strategy,
            restarts=restarts,
            max_evaluations=_bound("max_evaluations"),
            max_moves=_bound("max_moves"),
            plateau_patience=_bound("plateau_patience"),
            clocks=clocks,
            strategies=strategies,
            samples=samples,
        )

    @property
    def budget(self) -> SearchBudget | None:
        """The per-search budget the spec requests (None when unbounded)."""
        if (
            self.max_evaluations is None
            and self.max_moves is None
            and self.plateau_patience is None
        ):
            return None
        return SearchBudget(
            max_evaluations=self.max_evaluations,
            max_moves=self.max_moves,
            plateau_patience=self.plateau_patience,
        )

    def with_budget(self, budget: SearchBudget | None) -> "JobSpec":
        """A copy whose budget fields are replaced by ``budget``."""
        return replace(
            self,
            max_evaluations=budget.max_evaluations if budget else None,
            max_moves=budget.max_moves if budget else None,
            plateau_patience=budget.plateau_patience if budget else None,
        )

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "iterations": self.iterations,
            "seed": self.seed,
            "strategy": self.strategy,
            "restarts": self.restarts,
            "max_evaluations": self.max_evaluations,
            "max_moves": self.max_moves,
            "plateau_patience": self.plateau_patience,
            "clocks": list(self.clocks) if self.clocks is not None else None,
            "strategies": list(self.strategies) if self.strategies else None,
            "samples": self.samples,
        }

    @property
    def content_digest(self) -> str:
        """Content hash of the canonical spec (equal requests collide)."""
        return digest(self.to_jsonable())


def merge_budgets(
    requested: SearchBudget | None, cap: SearchBudget | None
) -> SearchBudget | None:
    """The stricter of a job's requested budget and a tenant's cap.

    Field-wise minimum with ``None`` meaning unbounded — a tenant cap
    can only tighten a job's budget, never loosen it.
    """
    if cap is None:
        return requested
    if requested is None:
        return cap

    def _tighter(a: int | None, b: int | None) -> int | None:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    return SearchBudget(
        max_evaluations=_tighter(requested.max_evaluations, cap.max_evaluations),
        max_moves=_tighter(requested.max_moves, cap.max_moves),
        plateau_patience=_tighter(
            requested.plateau_patience, cap.plateau_patience
        ),
    )


@dataclass
class Job:
    """One submitted job's mutable service-side record.

    All mutation happens under the owning service's lock (state
    transitions run on job-executor threads); readers take snapshots
    via :meth:`to_jsonable`.
    """

    id: str
    tenant: str
    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: Any = None
    #: Engine/cache counter deltas attributed to this job.
    stats: dict[str, Any] = field(default_factory=dict)
    #: This job's private event journal (the SSE source).
    journal_path: Any = None
    #: Distributed-trace identity from the submitter's ``traceparent``
    #: header: the fleet-wide trace id and the caller's span id.
    trace_id: str | None = None
    parent_span_id: str | None = None

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wall_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_jsonable(self, include_result: bool = False) -> dict[str, Any]:
        payload = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "spec": self.spec.to_jsonable(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "stats": dict(self.stats),
            "trace_id": self.trace_id,
        }
        if include_result:
            payload["result"] = self.result
        return payload
