"""The exploration service: asyncio front-end over a shared engine pool.

``repro serve`` turns the one-shot CLI into a long-running multi-tenant
HTTP API (ROADMAP: *serve heavy traffic from a long-lived process*).
The moving parts:

* **HTTP front-end** — a stdlib asyncio server (:mod:`repro.serve.http`)
  exposing the REST API under ``/v1``: submit a job, poll it, stream
  its progress as Server-Sent Events, fetch its result;
* **admission** — a :class:`FairShareScheduler` with bounded per-tenant
  queues (429 on overflow) and per-tenant budget caps;
* **execution** — a dispatcher coroutine leases jobs onto a
  ``ThreadPoolExecutor`` of ``--jobs`` slots; each slot borrows a serial
  :class:`EvaluationEngine` from a lease pool.  Every engine owns its
  *own* connection to the *shared* result store (``--cache-backend``),
  so N slots — and M replicas in other processes — deduplicate work
  through one persistent cache (the WAL-mode SQLite backend makes that
  safe);
* **observability** — each job journals its engine's event stream to a
  private :class:`RunJournal` (the SSE source), and per-job engine/cache
  counter deltas are folded into one shared
  :class:`~repro.engine.telemetry.MetricsRegistry` served at
  ``/v1/metrics`` (Prometheus or JSON);
* **shutdown** — SIGINT/SIGTERM via the existing
  :class:`ShutdownCoordinator`: admissions stop (503), running jobs
  finish, queued jobs fail honestly, engines flush, and the process
  exits ``128 + signum``.

Every job state transition happens on the executor thread that runs the
job, guarded by one service lock — so a drain completes correctly even
after the asyncio loop is torn down by a signal.

API summary (details in ``docs/serve.md``)::

    POST /v1/jobs                  submit    -> 202 {id, ...} | 400 | 429 | 503
    GET  /v1/jobs                  list      -> 200 [{id, state, ...}]
    GET  /v1/jobs/<id>             status    -> 200 | 404
    GET  /v1/jobs/<id>/result      result    -> 200 | 404 | 409 (pending)
    GET  /v1/jobs/<id>/events      SSE       (Last-Event-ID resume)
    GET  /v1/healthz               liveness
    GET  /v1/metrics               Prometheus (?format=json for JSON)
    GET  /v1/stats                 scheduler + store snapshot
    GET  /v1/cache                 store row count + keys
    GET  /v1/cache/<key>           one row   -> 200 {value, checksum} | 404
    PUT  /v1/cache/<key>           store row -> 204
    DELETE /v1/cache[/<key>]       clear / delete one row -> 204

The ``/v1/cache`` rows make any replica a *network result store*: the
``http:`` :class:`~repro.engine.cache_backends.HttpBackend` points other
replicas' engines at this API, so a fleet shares one store without a
shared filesystem (see ``docs/serve.md`` § HA & failure handling).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import queue as queue_module
import re
import socket
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from ..engine import (
    EvaluationEngine,
    MetricsRegistry,
    ResultCache,
    RunInterrupted,
    RunJournal,
    ShutdownCoordinator,
    make_backend,
)
from ..engine.telemetry import (
    TRACEPARENT_HEADER,
    TraceContext,
    activate_trace,
    mint_span_id,
    parse_traceparent,
)
from ..engine.cache_backends import CacheCorruption, CacheUnavailable
from ..errors import QueueFullError, ReproError, ServeError
from .http import (
    BadRequest,
    Request,
    error_response,
    json_response,
    read_request,
    response_bytes,
    sse_head,
)
from .jobs import COMPLETED, FAILED, QUEUED, RUNNING, Job, JobSpec
from .runner import execute_job
from .scheduler import FairShareScheduler, TenantPolicy
from .sse import JournalFollower, format_sse

#: Engine counters attributed per job (delta of EngineMetrics.snapshot()).
_ENGINE_DELTA_KEYS = (
    "evaluations",
    "cache_hits",
    "cache_misses",
    "retries",
    "timeouts",
    "pool_restarts",
    "quarantines",
)

_JOB_PATH_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9._-]+)(/result|/events)?$")

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class ExplorationService:
    """One service instance: scheduler + engine leases + HTTP handlers.

    Parameters
    ----------
    jobs:
        Concurrent job slots (executor threads and engine leases).
    cache_backend:
        Shared result-store spec for :func:`make_backend` (``memory``,
        ``sqlite:<file>``, ``file:<dir>``); ``none`` disables caching.
        Each engine lease opens its own handle to this store.
    serve_dir:
        Directory for per-job journals (a temp dir when omitted).
    tenant_policy / max_total_queued:
        Admission limits (see :mod:`repro.serve.scheduler`).
    replica_id:
        Stable identity stamped on every journal line and surfaced by
        ``/v1/healthz``/``/v1/stats`` so fleet tooling can tell replicas
        apart; defaults to ``host:pid``.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache_backend: str | None = "memory",
        serve_dir: str | Path | None = None,
        tenant_policy: TenantPolicy | None = None,
        max_total_queued: int = 64,
        replica_id: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ServeError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_backend_spec = cache_backend
        self.replica_id = replica_id or f"{socket.gethostname()}:{os.getpid()}"
        self.serve_dir = Path(
            serve_dir
            if serve_dir is not None
            else tempfile.mkdtemp(prefix="repro-serve-")
        )
        self.scheduler = FairShareScheduler(tenant_policy, max_total_queued)
        self.registry = MetricsRegistry()

        self._jobs: dict[str, Job] = {}
        self._job_counter = 0
        self._state_lock = threading.Lock()

        self._engines: "queue_module.Queue[EvaluationEngine]" = queue_module.Queue()
        self._engines_created = 0
        self._engine_lock = threading.Lock()
        self._all_engines: list[EvaluationEngine] = []

        #: The service's own handle on the shared store, serving the
        #: /v1/cache API (lazily opened; engines keep separate handles).
        self._store = None
        self._store_lock = threading.Lock()

        #: Journal of /v1/cache API calls that carried a trace context —
        #: the http store backend's half of a distributed trace (lazy;
        #: only written when traced calls actually arrive).
        self._service_journal: RunJournal | None = None

        self._executor = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-serve"
        )
        self._inflight = 0
        self._stopping = False
        self._drained = False

        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._started_at = time.time()
        self.host: str | None = None
        self.port: int | None = None

        self._metrics_lock = threading.Lock()
        r = self.registry
        self._m_submitted = r.counter(
            "repro_serve_jobs_submitted_total", "Jobs admitted to the queue"
        )
        self._m_rejected = r.counter(
            "repro_serve_jobs_rejected_total", "Jobs rejected with 429 (queue full)"
        )
        self._m_completed = r.counter(
            "repro_serve_jobs_completed_total", "Jobs finished successfully"
        )
        self._m_failed = r.counter(
            "repro_serve_jobs_failed_total", "Jobs that ended in an error"
        )
        self._m_evaluations = r.counter(
            "repro_serve_evaluations_total", "Fresh simulations run for jobs"
        )
        self._m_cache_hits = r.counter(
            "repro_serve_cache_hits_total", "Result-store lookups served from cache"
        )
        self._m_cache_misses = r.counter(
            "repro_serve_cache_misses_total", "Result-store lookups that simulated"
        )
        self._m_cache_stores = r.counter(
            "repro_serve_cache_stores_total", "Results written to the shared store"
        )
        self._m_queue_depth = r.gauge(
            "repro_serve_queue_depth", "Jobs waiting for a slot, all tenants"
        )
        self._m_running = r.gauge(
            "repro_serve_running_jobs", "Jobs currently executing"
        )
        self._m_job_seconds = r.histogram(
            "repro_serve_job_seconds", "Job execution wall time"
        )
        self._m_queue_wait = r.histogram(
            "repro_serve_queue_wait_seconds", "Delay between submit and job start"
        )
        self._m_cache_api = r.counter(
            "repro_serve_cache_api_total", "Requests served by the /v1/cache API"
        )
        self._m_cache_api_errors = r.counter(
            "repro_serve_cache_api_errors_total",
            "Cache API requests answered 5xx (store unavailable or corrupt)",
        )

    def _tenant_inc(self, name: str, help: str, tenant: str, n: int = 1) -> None:
        """Bump the per-tenant series of a counter (caller holds the lock).

        The unlabeled series stays the fleet-wide total; these labeled
        twins give the per-tenant breakdown (label values escaped by the
        registry's Prometheus renderer).
        """
        self.registry.counter(name, help, labels={"tenant": tenant}).inc(n)

    # ------------------------------------------------------------------
    # engine leases over the shared store
    # ------------------------------------------------------------------

    def _make_engine(self) -> EvaluationEngine:
        spec = self.cache_backend_spec
        cache = None
        if spec not in (None, "none"):
            cache = ResultCache(backend=make_backend(spec))
        return EvaluationEngine(jobs=1, cache=cache)

    def _lease_engine(self) -> EvaluationEngine:
        """Borrow an engine, creating lazily up to the slot count."""
        try:
            return self._engines.get_nowait()
        except queue_module.Empty:
            pass
        with self._engine_lock:
            if self._engines_created < self.jobs:
                self._engines_created += 1
                engine = self._make_engine()
                self._all_engines.append(engine)
                return engine
        return self._engines.get()

    def _return_engine(self, engine: EvaluationEngine) -> None:
        if engine.cache is not None:
            engine.cache.flush()
        self._engines.put(engine)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit_job(self, payload: Any, trace: TraceContext | None = None) -> Job:
        """Validate and admit one job (raises ServeError/QueueFullError).

        ``trace`` is the caller's trace context (parsed from the
        ``traceparent`` header): the job's journal and every span it
        emits will carry that trace id, with the caller's span as
        parent.
        """
        if self._stopping:
            raise ServeError("service is draining; not accepting jobs")
        tenant = "default"
        if isinstance(payload, dict) and "tenant" in payload:
            tenant = payload["tenant"]
            if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
                raise ServeError(
                    "tenant must be 1-64 characters of [A-Za-z0-9._-]"
                )
        spec = JobSpec.from_payload(payload)
        with self._state_lock:
            self._job_counter += 1
            job_id = f"j{self._job_counter:05d}-{spec.content_digest[:10]}"
            job = Job(id=job_id, tenant=tenant, spec=spec)
            if trace is not None:
                job.trace_id = trace.trace_id
                job.parent_span_id = trace.span_id
            job.journal_path = self.serve_dir / "jobs" / job_id / "events.jsonl"
            self._jobs[job_id] = job
        try:
            self.scheduler.submit(job)
        except QueueFullError:
            with self._state_lock:
                self._jobs.pop(job_id, None)
            with self._metrics_lock:
                self._m_rejected.inc()
            raise
        with self._metrics_lock:
            self._m_submitted.inc()
            self._tenant_inc(
                "repro_serve_jobs_submitted_total",
                "Jobs admitted to the queue",
                tenant,
            )
        self._update_gauges()
        return job

    def get_job(self, job_id: str) -> Job | None:
        with self._state_lock:
            return self._jobs.get(job_id)

    def job_summaries(self) -> list[dict[str, Any]]:
        with self._state_lock:
            jobs = list(self._jobs.values())
        return [job.to_jsonable() for job in sorted(jobs, key=lambda j: j.id)]

    # ------------------------------------------------------------------
    # execution (executor threads)
    # ------------------------------------------------------------------

    def _guarded_run(self, job: Job) -> None:
        """Executor entry point: absolutely never lets an exception escape."""
        try:
            self._run_job(job)
        except BaseException as exc:  # noqa: BLE001 - last line of defense
            with self._state_lock:
                job.state = FAILED
                job.error = f"internal error: {exc!r}"
                job.finished_at = time.time()
            print(f"serve: job {job.id} crashed: {exc!r}", file=sys.stderr)
        finally:
            self.scheduler.job_finished(job.tenant)
            with self._engine_lock:
                self._inflight -= 1
            self._update_gauges()

    def _run_job(self, job: Job) -> None:
        engine = self._lease_engine()
        # Every journal line carries the distributed-trace identity: the
        # caller's trace id, the caller's span as parent, and which
        # replica wrote the line (the stitcher's correlation keys).
        span_id = mint_span_id()
        context: dict[str, Any] = {"replica_id": self.replica_id}
        if job.trace_id is not None:
            context["trace_id"] = job.trace_id
            context["parent_span_id"] = job.parent_span_id
        journal = RunJournal(job.journal_path, context=context)
        try:
            with self._state_lock:
                job.state = RUNNING
                job.started_at = time.time()
            queue_wait = job.started_at - job.submitted_at
            journal.append(
                "job_start",
                {
                    "job": job.id,
                    "span": span_id,
                    "tenant": job.tenant,
                    "kind": job.spec.kind,
                    "queue_wait_s": round(queue_wait, 6),
                },
            )
            journal.attach(engine.events)
            before = engine.metrics.snapshot()
            cache_before = (
                engine.cache.stats.snapshot() if engine.cache is not None else None
            )

            error: str | None = None
            result: Any = None
            # Downstream calls (the http: store backend) inherit the
            # trace with this job's span as their parent.
            ambient = (
                activate_trace(TraceContext(job.trace_id, span_id))
                if job.trace_id is not None
                else contextlib.nullcontext()
            )
            started = time.perf_counter()
            with ambient:
                try:
                    result = execute_job(job.spec, engine)
                except ReproError as exc:
                    error = str(exc)
                except RunInterrupted:
                    error = "interrupted by service shutdown"
                except Exception as exc:  # pragma: no cover - defensive
                    error = f"internal error: {exc!r}"
            seconds = time.perf_counter() - started

            after = engine.metrics.snapshot()
            deltas = {
                key: int(after[key]) - int(before[key]) for key in _ENGINE_DELTA_KEYS
            }
            cache_deltas: dict[str, int] = {}
            if cache_before is not None and engine.cache is not None:
                cache_after = engine.cache.stats.snapshot()
                cache_deltas = {
                    key: cache_after[key] - cache_before[key] for key in cache_after
                }

            journal.detach()  # unsubscribe before the direct epilogue line
            journal.append(
                "job_end",
                {
                    "job": job.id,
                    "span": span_id,
                    "state": FAILED if error is not None else COMPLETED,
                    "seconds": round(seconds, 6),
                    "error": error,
                    **{f"delta_{k}": v for k, v in deltas.items()},
                },
            )
            journal.close()

            with self._state_lock:
                job.stats = {
                    "seconds": seconds,
                    "queue_wait_s": queue_wait,
                    **deltas,
                    "cache": cache_deltas,
                }
                job.finished_at = time.time()
                if error is None:
                    job.state = COMPLETED
                    job.result = result
                else:
                    job.state = FAILED
                    job.error = error

            with self._metrics_lock:
                (self._m_failed if error is not None else self._m_completed).inc()
                if error is not None:
                    self._tenant_inc(
                        "repro_serve_jobs_failed_total",
                        "Jobs that ended in an error",
                        job.tenant,
                    )
                else:
                    self._tenant_inc(
                        "repro_serve_jobs_completed_total",
                        "Jobs finished successfully",
                        job.tenant,
                    )
                self._m_job_seconds.observe(seconds)
                self.registry.histogram(
                    "repro_serve_job_seconds",
                    "Job execution wall time",
                    labels={"tenant": job.tenant},
                ).observe(seconds)
                self._m_queue_wait.observe(max(queue_wait, 0.0))
                self._m_evaluations.inc(deltas["evaluations"])
                self._m_cache_hits.inc(deltas["cache_hits"])
                self._m_cache_misses.inc(deltas["cache_misses"])
                self._m_cache_stores.inc(cache_deltas.get("stores", 0))
        finally:
            journal.detach()  # idempotent; also closes the file
            self._return_engine(engine)

    # ------------------------------------------------------------------
    # dispatch loop (asyncio)
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None and self._stop_event is not None
        while not self._stop_event.is_set():
            job = None
            with self._engine_lock:
                has_capacity = self._inflight < self.jobs
            if has_capacity:
                job = self.scheduler.next_job()
            if job is None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._stop_event.wait(), timeout=0.02)
                continue
            with self._engine_lock:
                self._inflight += 1
            self._update_gauges()
            self._loop.run_in_executor(self._executor, self._guarded_run, job)

    def _update_gauges(self) -> None:
        depths = self.scheduler.depths()
        with self._metrics_lock:
            self._m_queue_depth.set(depths["queued"])
            self._m_running.set(depths["running"])

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                writer.write(error_response(400, str(exc)))
                await writer.drain()
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # pragma: no cover - defensive
            with contextlib.suppress(Exception):
                writer.write(error_response(500, f"internal error: {exc!r}"))
                await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, request: Request, writer: asyncio.StreamWriter) -> None:
        path = request.path.rstrip("/") or "/"

        if path == "/v1/healthz":
            writer.write(
                json_response(
                    200,
                    {
                        "status": "draining" if self._stopping else "ok",
                        "replica_id": self.replica_id,
                        "uptime_s": round(time.time() - self._started_at, 3),
                        "jobs": len(self._jobs),
                        "slots": self.jobs,
                        "backend": str(self.cache_backend_spec),
                    },
                )
            )
        elif path == "/v1/metrics":
            self._update_gauges()
            if request.query_one("format") == "json":
                writer.write(json_response(200, self.registry.to_jsonable()))
            else:
                writer.write(
                    response_bytes(
                        200,
                        self.registry.render_prometheus(),
                        content_type="text/plain; version=0.0.4",
                    )
                )
        elif path == "/v1/stats":
            writer.write(json_response(200, self.stats()))
        elif path == "/v1/cache" or path.startswith("/v1/cache/"):
            self._handle_cache(request, writer, path)
        elif path == "/v1/jobs":
            if request.method == "POST":
                await self._handle_submit(request, writer)
            elif request.method == "GET":
                writer.write(json_response(200, {"jobs": self.job_summaries()}))
            else:
                writer.write(error_response(405, f"{request.method} not allowed"))
        else:
            match = _JOB_PATH_RE.match(path)
            if match is None:
                writer.write(error_response(404, f"no route for {path}"))
            else:
                job = self.get_job(match.group(1))
                if job is None:
                    writer.write(error_response(404, f"no job {match.group(1)!r}"))
                elif match.group(2) == "/events":
                    await self._handle_events(request, writer, job)
                    return
                elif match.group(2) == "/result":
                    with self._state_lock:
                        done = job.done
                    if not done:
                        writer.write(
                            json_response(
                                409,
                                {
                                    "error": "job is not finished",
                                    "state": job.state,
                                    "id": job.id,
                                },
                                extra_headers={"Retry-After": "1"},
                            )
                        )
                    else:
                        writer.write(
                            json_response(200, job.to_jsonable(include_result=True))
                        )
                else:
                    writer.write(json_response(200, job.to_jsonable()))
        await writer.drain()

    # ------------------------------------------------------------------
    # the /v1/cache network-store API
    # ------------------------------------------------------------------

    def _store_handle(self):
        """The service's own backend handle (None when caching is off)."""
        if self.cache_backend_spec in (None, "none"):
            return None
        with self._store_lock:
            if self._store is None:
                self._store = make_backend(self.cache_backend_spec)
            return self._store

    def _journal_cache_call(self, request: Request, path: str) -> None:
        """Journal a /v1/cache call that carried a trace context.

        This is the store-side half of a distributed trace: the calling
        engine's ``http:`` backend injects ``traceparent`` with the
        job's span as parent, so the fleet stitcher can attach these
        store calls under the job that made them.  Untraced calls are
        not journalled.  Runs on the asyncio loop thread only.
        """
        trace = parse_traceparent(request.header(TRACEPARENT_HEADER))
        if trace is None:
            return
        if self._service_journal is None:
            self._service_journal = RunJournal(
                self.serve_dir / "service-events.jsonl",
                context={"replica_id": self.replica_id},
            )
        key = request.path[len("/v1/cache/"):] if path != "/v1/cache" else None
        self._service_journal.append(
            "cache_call",
            {
                "method": request.method,
                "key": key,
                "trace_id": trace.trace_id,
                "parent_span_id": trace.span_id,
            },
        )

    def _handle_cache(self, request: Request, writer, path: str) -> None:
        """Serve the shared store over HTTP (the ``http:`` backend's peer).

        Backend trouble maps onto the wire the same way the cache maps
        it locally: :class:`CacheUnavailable` answers 503 + Retry-After
        (the remote should retry/degrade, the store file is fine), and
        :class:`CacheCorruption` answers 500 with ``"corruption": true``
        so the remote can quarantine its tier instead of retrying.
        """
        with self._metrics_lock:
            self._m_cache_api.inc()
        with contextlib.suppress(Exception):
            self._journal_cache_call(request, path)
        store = self._store_handle()
        if store is None:
            writer.write(error_response(404, "no shared store configured"))
            return
        # Row keys come from the *raw* path so every character survives;
        # the collection route is the exact "/v1/cache" path.
        key = request.path[len("/v1/cache/"):] if path != "/v1/cache" else None
        try:
            if key is None:
                if request.method == "GET":
                    writer.write(
                        json_response(
                            200, {"count": len(store), "keys": list(store.keys())}
                        )
                    )
                elif request.method == "DELETE":
                    store.clear()
                    writer.write(response_bytes(204))
                else:
                    writer.write(
                        error_response(405, f"{request.method} not allowed")
                    )
            elif request.method == "GET":
                row = store.get(key)
                if row is None:
                    writer.write(error_response(404, "no such row"))
                else:
                    writer.write(
                        json_response(
                            200,
                            {"key": key, "value": row[0], "checksum": row[1]},
                        )
                    )
            elif request.method == "PUT":
                try:
                    payload = request.json()
                except ValueError as exc:
                    writer.write(error_response(400, f"invalid JSON body: {exc}"))
                    return
                if not isinstance(payload, dict) or "value" not in payload:
                    writer.write(
                        error_response(400, "body must be {value, checksum?}")
                    )
                    return
                checksum = payload.get("checksum")
                store.put(
                    key,
                    str(payload["value"]),
                    None if checksum is None else str(checksum),
                )
                writer.write(response_bytes(204))
            elif request.method == "DELETE":
                store.delete(key)
                writer.write(response_bytes(204))
            else:
                writer.write(error_response(405, f"{request.method} not allowed"))
        except CacheUnavailable as exc:
            with self._metrics_lock:
                self._m_cache_api_errors.inc()
            writer.write(
                error_response(503, str(exc), extra_headers={"Retry-After": "1"})
            )
        except CacheCorruption as exc:
            with self._metrics_lock:
                self._m_cache_api_errors.inc()
            writer.write(
                json_response(
                    500, {"error": str(exc), "status": 500, "corruption": True}
                )
            )

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping or self.scheduler.draining:
            writer.write(
                error_response(
                    503, "service is draining", extra_headers={"Retry-After": "5"}
                )
            )
            return
        try:
            payload = request.json()
        except ValueError as exc:
            writer.write(error_response(400, f"invalid JSON body: {exc}"))
            return
        trace = parse_traceparent(request.header(TRACEPARENT_HEADER))
        try:
            job = self.submit_job(payload, trace=trace)
        except QueueFullError as exc:
            writer.write(
                error_response(
                    429,
                    str(exc),
                    extra_headers={
                        "Retry-After": str(max(int(exc.retry_after_s), 1))
                    },
                )
            )
            return
        except ServeError as exc:
            writer.write(error_response(400, str(exc)))
            return
        writer.write(
            json_response(
                202,
                {
                    **job.to_jsonable(),
                    "links": {
                        "self": f"/v1/jobs/{job.id}",
                        "result": f"/v1/jobs/{job.id}/result",
                        "events": f"/v1/jobs/{job.id}/events",
                    },
                },
            )
        )

    async def _handle_events(
        self, request: Request, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """Stream the job's journal as SSE, resuming from Last-Event-ID."""
        after_raw = request.header("last-event-id") or request.query_one("after")
        after_seq = 0
        if after_raw is not None:
            try:
                after_seq = max(int(after_raw), 0)
            except ValueError:
                writer.write(error_response(400, f"bad Last-Event-ID {after_raw!r}"))
                await writer.drain()
                return
        writer.write(sse_head())
        await writer.drain()
        follower = JournalFollower(job.journal_path, after_seq=after_seq)
        assert self._stop_event is not None
        while True:
            with self._state_lock:
                done = job.done
            events = follower.poll()
            if events:
                writer.write("".join(format_sse(e) for e in events).encode("utf-8"))
                await writer.drain()
            if done and not events:
                break
            if self._stop_event.is_set():
                break
            await asyncio.sleep(0.05)
        writer.write(b": stream complete\n\n")
        await writer.drain()

    def stats(self) -> dict[str, Any]:
        """Scheduler depths plus aggregate engine/cache counters."""
        depths = self.scheduler.depths()
        with self._state_lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        payload = {
            "replica_id": self.replica_id,
            "scheduler": depths,
            "jobs_by_state": states,
            "engines": self._engines_created,
            "backend": str(self.cache_backend_spec),
            "draining": self._stopping,
        }
        # Network store tiers carry degrade/circuit telemetry; surface
        # every engine handle's snapshot so operators (and the chaos
        # harness) can see breaker transitions over the API.
        snapshots = []
        with self._engine_lock:
            engines = list(self._all_engines)
        for engine in engines:
            backend = getattr(getattr(engine, "cache", None), "backend", None)
            snapshot = getattr(backend, "stats_snapshot", None)
            if callable(snapshot):
                with contextlib.suppress(Exception):
                    snapshots.append(snapshot())
        if snapshots:
            payload["store"] = snapshots
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def _serve_async(self, host: str, port: int) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        dispatcher = asyncio.create_task(self._dispatch_loop())
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await dispatcher

    def serve_forever(
        self, host: str = "127.0.0.1", port: int = 8023, install_signals: bool = True
    ) -> int:
        """Run until stopped; returns the process exit code.

        ``install_signals=True`` (the CLI path, main thread only) wires
        SIGINT/SIGTERM through a :class:`ShutdownCoordinator`: the first
        signal interrupts the loop and triggers a graceful drain —
        running jobs finish, queued jobs fail honestly — and the return
        value is ``128 + signum``.  A second signal (after the handlers
        are restored) escalates to immediate termination.
        """
        coordinator = None
        if install_signals:
            coordinator = ShutdownCoordinator().install()
        exit_code = 0
        try:
            asyncio.run(self._serve_async(host, port))
        except RunInterrupted as exc:
            exit_code = exc.exit_code
            print(
                f"serve: {exc}; draining ({self._inflight} running jobs)...",
                file=sys.stderr,
            )
        finally:
            if coordinator is not None:
                coordinator.uninstall()
            self.drain()
        return exit_code

    def request_stop(self) -> None:
        """Ask the serving loop to stop (thread-safe; used by tests/CLI)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(event.set)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        return self._ready.wait(timeout)

    def drain(self) -> None:
        """Stop admissions, let running jobs finish, release engines."""
        if self._drained:
            return
        self._drained = True
        self._stopping = True
        for job in self.scheduler.drain():
            with self._state_lock:
                if job.state == QUEUED:
                    job.state = FAILED
                    job.error = "service shut down before the job started"
                    job.finished_at = time.time()
        self._executor.shutdown(wait=True)
        with self._engine_lock:
            engines, self._all_engines = self._all_engines, []
        for engine in engines:
            with contextlib.suppress(Exception):
                engine.close()
        with self._store_lock:
            store, self._store = self._store, None
        if store is not None:
            with contextlib.suppress(Exception):
                store.close()
        journal, self._service_journal = self._service_journal, None
        if journal is not None:
            with contextlib.suppress(Exception):
                journal.close()
        self._update_gauges()

    def __enter__(self) -> "ExplorationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()


class ServiceThread:
    """Run one service on a daemon thread (tests and the load harness).

    Signals are not installed (not the main thread); stop with
    :meth:`stop`, which requests a loop shutdown and then drains.
    """

    def __init__(
        self,
        service: ExplorationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )

    def _run(self) -> None:
        self.service.serve_forever(self.host, self.port, install_signals=False)

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self.service.wait_ready(timeout=15):
            raise ServeError("service failed to start listening within 15s")
        return self

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self, timeout: float = 60.0) -> None:
        self.service.request_stop()
        self._thread.join(timeout)
        self.service.drain()

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
