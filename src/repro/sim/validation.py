"""Cross-validation of the interval model against the cycle simulator.

The paper's §2.3 warns that fast performance models must be validated
*in the space where they will be used* — a constrained, jointly-varying
design space, not a convenient hyper-rectangle.  This module provides
exactly that check: evaluate a set of (workload, configuration) pairs
with both simulators and report rank agreement and scale ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..uarch.config import CoreConfig
from ..workloads.generator import generate_trace
from ..workloads.profile import WorkloadProfile
from .cycle import CycleSimulator
from .interval import IntervalSimulator


@dataclass(frozen=True)
class ValidationReport:
    """Agreement statistics between the two simulators."""

    pairs: int
    rank_correlation: float  # Spearman over IPT
    mean_ratio: float  # interval IPC / cycle IPC (geometric mean)
    worst_ratio: float  # farthest-from-1 ratio
    interval_ipt: tuple[float, ...]
    cycle_ipt: tuple[float, ...]


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation without scipy."""
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 1.0
    return float((ra * rb).sum() / denom)


def validate_interval_model(
    pairs: Sequence[tuple[WorkloadProfile, CoreConfig]],
    trace_length: int = 12_000,
    seed: int = 0,
) -> ValidationReport:
    """Run both simulators over (workload, configuration) pairs.

    The cycle simulator executes a synthetic trace generated from each
    profile (one trace per profile, shared across that profile's
    configurations so configuration effects are not confounded with
    trace noise).
    """
    if len(pairs) < 2:
        raise ReproError("validation needs at least two pairs")
    interval = IntervalSimulator()
    traces: dict[str, object] = {}
    interval_ipt = []
    cycle_ipt = []
    ratios = []
    for profile, config in pairs:
        if profile.name not in traces:
            traces[profile.name] = generate_trace(profile, trace_length, seed=seed)
        a = interval.evaluate(profile, config)
        b = CycleSimulator(config).run(traces[profile.name])
        interval_ipt.append(a.ipt)
        cycle_ipt.append(b.ipt)
        ratios.append(a.ipc / b.ipc)

    ratios_arr = np.array(ratios)
    return ValidationReport(
        pairs=len(pairs),
        rank_correlation=_spearman(np.array(interval_ipt), np.array(cycle_ipt)),
        mean_ratio=float(np.exp(np.log(ratios_arr).mean())),
        worst_ratio=float(ratios_arr[np.argmax(np.abs(np.log(ratios_arr)))]),
        interval_ipt=tuple(interval_ipt),
        cycle_ipt=tuple(cycle_ipt),
    )
