"""NumPy-vectorized batch path for the mechanistic interval model.

:mod:`repro.sim.interval` evaluates one ``(workload, configuration)``
pair per call; the annealer, the clock sweeps and the cross-performance
matrix ask for thousands of such evaluations, so the per-call Python
overhead — attribute walks, float boxing, the working-set loop — caps
throughput well below what the arithmetic itself costs.  This module
removes that overhead for bulk requests: :class:`BatchIntervalModel`
evaluates an entire *array* of configurations against one workload
profile in a single set of float64 array operations, one column per
configuration parameter.

The scalar model stays the untouched golden reference.  Every formula
here mirrors its scalar counterpart **operation for operation** (same
association, same accumulation order over working-set components, same
``min``/``max`` nesting), and elementwise float64 arithmetic is IEEE
correctly rounded in both NumPy and CPython — so the batch path is
*bit-identical* to the scalar path, which the differential suite
(``tests/test_interval_batch.py``) asserts with exact equality.  Because
the numbers are identical, the model shares the scalar simulator's
cache identity (see :data:`BatchIntervalModel.cache_identity`): cached
results interoperate in both directions and run signatures are
unchanged.

Branches in the scalar code fall into two kinds and are handled
accordingly:

* profile-level branches (``taken_per_instr <= 0``) hold for the whole
  batch and stay ordinary Python ``if``;
* per-configuration branches (``events <= 0`` early returns, the
  two-regime capture curve) become ``np.where`` masks, with the unused
  lane computed harmlessly (no division by zero is reachable).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from ..errors import ConfigurationError, WorkloadError
from ..workloads.profile import REFERENCE_BLOCK_BYTES, MemoryModel, WorkloadProfile
from .interval import (
    _BRANCH_RESOLVE_CYCLES,
    _INORDER_WINDOW_FACTOR,
    _IQ_WINDOW_FACTOR,
    _L2_SERVICE_FRACTION,
    _MEMORY_SERVICE_NS,
    _NOMINAL_INSTRUCTIONS,
    _REPLAY_FACTOR,
    IntervalSimulator,
)
from .metrics import CpiStack, SimResult


class ConfigColumns:
    """Struct-of-arrays view of a configuration batch.

    One int64/float64 column per :class:`~repro.uarch.config.CoreConfig`
    parameter the interval model reads; built once per batch so every
    CPI term is pure array arithmetic.
    """

    __slots__ = (
        "n",
        "clock_period_ns",
        "width",
        "rob_size",
        "iq_size",
        "lsq_size",
        "wakeup_latency",
        "scheduler_depth",
        "frontend_stages",
        "memory_cycles",
        "l1_capacity",
        "l1_block",
        "l1_assoc",
        "l1_latency",
        "l2_capacity",
        "l2_block",
        "l2_assoc",
        "l2_latency",
        "inorder",
    )

    def __init__(self, configs: Sequence[Any]) -> None:
        self.n = len(configs)
        self.clock_period_ns = np.array(
            [c.clock_period_ns for c in configs], dtype=np.float64
        )
        # One attribute walk per config, one 2-D array build, columns as
        # views — much cheaper than one comprehension per parameter.
        ints = np.array(
            [
                (
                    c.width,
                    c.rob_size,
                    c.iq_size,
                    c.lsq_size,
                    c.wakeup_latency,
                    c.scheduler_depth,
                    c.frontend_stages,
                    c.memory_cycles,
                    l1.nsets,
                    l1.block_bytes,
                    l1.assoc,
                    l1.latency_cycles,
                    l2.nsets,
                    l2.block_bytes,
                    l2.assoc,
                    l2.latency_cycles,
                )
                for c in configs
                for l1, l2 in ((c.l1, c.l2),)
            ],
            dtype=np.int64,
        ).reshape(self.n, 16)
        (
            self.width,
            self.rob_size,
            self.iq_size,
            self.lsq_size,
            self.wakeup_latency,
            self.scheduler_depth,
            self.frontend_stages,
            self.memory_cycles,
            l1_nsets,
            self.l1_block,
            self.l1_assoc,
            self.l1_latency,
            l2_nsets,
            self.l2_block,
            self.l2_assoc,
            self.l2_latency,
        ) = ints.T
        # Same integer product as CacheGeometry.capacity_bytes, computed
        # once per column instead of twice per config via the property.
        self.l1_capacity = l1_nsets * self.l1_assoc * self.l1_block
        self.l2_capacity = l2_nsets * self.l2_assoc * self.l2_block
        self.inorder = np.array(
            [c.core_type == "inorder" for c in configs], dtype=bool
        )


def _libm_pow(base: Any, exponent: Any) -> np.ndarray:
    """``base ** exponent`` through the C library's ``pow``.

    NumPy's ``power`` ufunc runs a SIMD pow that can differ from libm's
    correctly-rounded ``pow`` by one ulp (e.g. ``2.0 ** -0.3``) — enough
    to break bit-identity with the scalar model, whose ``**`` goes
    through ``float.__pow__`` and hence libm.  At every call site in
    this module exactly one operand is an array, so evaluate
    ``math.pow`` once per distinct value and scatter the table back.
    """
    if isinstance(base, np.ndarray):
        values, inverse = np.unique(base, return_inverse=True)
        table = [math.pow(value, exponent) for value in values.tolist()]
    else:
        values, inverse = np.unique(exponent, return_inverse=True)
        table = [math.pow(base, value) for value in values.tolist()]
    return np.array(table, dtype=np.float64)[inverse]


def batch_miss_rate(
    memory: MemoryModel,
    capacity_bytes: np.ndarray,
    block_bytes: np.ndarray,
    assoc: np.ndarray,
    memo: dict[int, float] | None = None,
) -> np.ndarray:
    """Batch :meth:`repro.workloads.profile.MemoryModel.miss_rate`.

    The miss rate depends only on the ``(capacity, block, assoc)``
    geometry, and a configuration batch holds few distinct geometries
    (a neighborhood perturbs one parameter at a time), so the cheapest
    *and* trivially bit-identical evaluation is the scalar golden
    method itself, called once per distinct geometry and scattered back
    over the batch.  ``memo`` (packed geometry -> rate, private to one
    ``memory``) carries solved geometries across batches.
    """
    if np.any(capacity_bytes < 64):
        bad = int(capacity_bytes.min())
        raise WorkloadError(f"cache capacity below 64 B: {bad}")
    if np.any(block_bytes < 1) or np.any(assoc < 1):
        raise WorkloadError("block size and associativity must be positive")
    # Pack each geometry into one int64 so np.unique runs on a flat
    # column; representatives are recovered by first-occurrence index,
    # so the packing only has to be injective within its field widths.
    if (
        int(capacity_bytes.max()) < 1 << 41
        and int(block_bytes.max()) < 1 << 14
        and int(assoc.max()) < 1 << 8
    ):
        packed = (capacity_bytes << 22) | (block_bytes << 8) | assoc
        _, first, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
        if memo is not None:
            rates = []
            for key, i in zip(packed[first].tolist(), first.tolist()):
                rate = memo.get(key)
                if rate is None:
                    rate = memo[key] = memory.miss_rate(
                        int(capacity_bytes[i]), int(block_bytes[i]), int(assoc[i])
                    )
                rates.append(rate)
            return np.array(rates, dtype=np.float64)[inverse]
    else:  # absurd geometry, but stay correct: every row is its own group
        first = np.arange(len(capacity_bytes))
        inverse = first
    rates = [
        memory.miss_rate(
            int(capacity_bytes[i]), int(block_bytes[i]), int(assoc[i])
        )
        for i in first.tolist()
    ]
    return np.array(rates, dtype=np.float64)[inverse]


def batch_achievable_mlp(memory: MemoryModel, window: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`~repro.workloads.profile.MemoryModel.achievable_mlp`."""
    positive = np.maximum(window, 1e-300)  # the window<=0 lane is masked out
    reachable = np.maximum(1.0, memory.mlp * positive / (positive + memory.mlp_window_half))
    return np.where(window <= 0, 1.0, reachable)


def batch_ilp(profile: WorkloadProfile, window: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`~repro.workloads.profile.WorkloadProfile.ilp`."""
    exposed = profile.ilp_limit * window / (window + profile.ilp_window_half)
    return np.where(window <= 0, 0.0, exposed)


class BatchIntervalModel(IntervalSimulator):
    """Interval model with a vectorized whole-batch evaluation path.

    Scalar use (``evaluate``) is inherited unchanged from
    :class:`~repro.sim.interval.IntervalSimulator`;
    :meth:`evaluate_batch` scores many configurations against one
    profile in one set of array operations.  The evaluation engine's
    dispatch (``repro.engine.pool``) detects the method and routes
    per-profile groups through it automatically.
    """

    #: The batch path produces bit-identical numbers to the scalar model
    #: (asserted by the differential suite), so it deliberately shares
    #: the scalar simulator's cache identity: cached results interop in
    #: both directions and run signatures/checkpoints are unchanged.  If
    #: the two paths ever diverge, remove this attribute (and bump
    #: ``cache_version``) so their caches separate.
    cache_identity = (
        f"{IntervalSimulator.__module__}.{IntervalSimulator.__qualname__}"
    )

    def __init__(self) -> None:
        # Solved miss rates carried across batches, one memo per memory
        # model: {MemoryModel: {packed geometry: rate}}.
        self._miss_memo: dict[MemoryModel, dict[int, float]] = {}

    def evaluate_batch(
        self, profile: WorkloadProfile, configs: Sequence[Any]
    ) -> list[SimResult]:
        """Evaluate every configuration in ``configs`` against ``profile``.

        Returns one :class:`~repro.sim.metrics.SimResult` per input, in
        input order, each bit-identical to
        ``IntervalSimulator().evaluate(profile, config)``.
        """
        configs = list(configs)
        if not configs:
            return []
        cols = ConfigColumns(configs)
        arrays = self._evaluate_arrays(profile, cols)
        base = arrays["cpi_base"] + arrays["cpi_replay"]
        branch = arrays["cpi_branch"]
        l2 = arrays["cpi_l2"]
        memory = arrays["cpi_memory"]
        # Same association as ``CpiStack.total`` and the scalar
        # ``stack.total * N``, so cycles stay bit-identical.
        cycles = (((base + branch) + l2) + memory) * _NOMINAL_INSTRUCTIONS
        name = profile.name
        results: list[SimResult] = []
        # The frozen dataclasses' ``__post_init__`` checks, vectorized.
        # When they all pass (the only reachable case — the model raises
        # on untenable inputs before this point), results are assembled
        # without re-running per-instance validation; otherwise fall
        # back to normal construction so the exact scalar exception
        # surfaces.
        valid = not (
            np.any(base <= 0)
            or np.any(branch < 0)
            or np.any(l2 < 0)
            or np.any(memory < 0)
            or np.any(cycles <= 0)
            or np.any(cols.clock_period_ns <= 0)
        )
        rows = zip(
            base.tolist(),
            branch.tolist(),
            l2.tolist(),
            memory.tolist(),
            cycles.tolist(),
            cols.clock_period_ns.tolist(),
            arrays["window"].tolist(),
            arrays["ipc_base"].tolist(),
            arrays["miss1"].tolist(),
            arrays["miss2"].tolist(),
        )
        if valid:
            new, set_dict = object.__new__, object.__setattr__
            for b, br, l2c, mem, cyc, clk, win, ipc0, m1, m2 in rows:
                stack = new(CpiStack)
                set_dict(
                    stack,
                    "__dict__",
                    {"base": b, "branch": br, "l2_access": l2c, "memory": mem},
                )
                result = new(SimResult)
                set_dict(
                    result,
                    "__dict__",
                    {
                        "workload": name,
                        "instructions": _NOMINAL_INSTRUCTIONS,
                        "cycles": cyc,
                        "clock_period_ns": clk,
                        "cpi_stack": stack,
                        "detail": {
                            "window": win,
                            "ipc_base": ipc0,
                            "l1_miss_rate": m1,
                            "l2_global_miss_rate": m2,
                        },
                    },
                )
                results.append(result)
        else:
            for b, br, l2c, mem, cyc, clk, win, ipc0, m1, m2 in rows:
                results.append(
                    SimResult(
                        workload=name,
                        instructions=_NOMINAL_INSTRUCTIONS,
                        cycles=cyc,
                        clock_period_ns=clk,
                        cpi_stack=CpiStack(
                            base=b, branch=br, l2_access=l2c, memory=mem
                        ),
                        detail={
                            "window": win,
                            "ipc_base": ipc0,
                            "l1_miss_rate": m1,
                            "l2_global_miss_rate": m2,
                        },
                    )
                )
        return results

    def ipt_batch(
        self, profile: WorkloadProfile, configs: Sequence[Any]
    ) -> np.ndarray:
        """The IPT of every configuration, as one float64 array.

        The array-only variant of :meth:`evaluate_batch` for callers
        that need scores, not full results (benchmarks, screening).
        """
        configs = list(configs)
        if not configs:
            return np.empty(0, dtype=np.float64)
        cols = ConfigColumns(configs)
        arrays = self._evaluate_arrays(profile, cols)
        # Mirror SimResult.ipt's exact op order (total -> cycles -> ipc
        # -> ipt) rather than the algebraic 1/(total*clock), so scores
        # stay bit-identical to the materialized results.
        total = (
            (arrays["cpi_base"] + arrays["cpi_replay"])
            + arrays["cpi_branch"]
            + arrays["cpi_l2"]
            + arrays["cpi_memory"]
        )
        cycles = total * _NOMINAL_INSTRUCTIONS
        ipc = _NOMINAL_INSTRUCTIONS / cycles
        return ipc / cols.clock_period_ns

    # ------------------------------------------------------------------
    # column-wise model terms (each mirrors its scalar namesake)
    # ------------------------------------------------------------------

    def _evaluate_arrays(
        self, profile: WorkloadProfile, cols: ConfigColumns
    ) -> dict[str, np.ndarray]:
        """Every CPI term for the whole batch, as float64 columns."""
        window = self._effective_window(profile, cols)
        ipc_base = self._base_issue_rate(profile, cols, window)
        memo = self._miss_memo.setdefault(profile.memory, {})
        miss1 = batch_miss_rate(
            profile.memory, cols.l1_capacity, cols.l1_block, cols.l1_assoc, memo
        )
        miss2 = batch_miss_rate(
            profile.memory, cols.l2_capacity, cols.l2_block, cols.l2_assoc, memo
        )
        return {
            "window": window,
            "ipc_base": ipc_base,
            "miss1": miss1,
            "miss2": miss2,
            "cpi_base": 1.0 / ipc_base,
            "cpi_branch": self._branch_cpi(profile, cols, window),
            "cpi_l2": self._l2_access_cpi(profile, cols, window, ipc_base, miss1, miss2),
            "cpi_memory": self._memory_cpi(profile, cols, window, miss2),
            "cpi_replay": self._replay_cpi(profile, cols, miss1),
        }

    @staticmethod
    def _effective_window(profile: WorkloadProfile, cols: ConfigColumns) -> np.ndarray:
        mem_frac = max(profile.mix.memory, 1e-6)
        window = np.minimum(
            np.minimum(
                cols.rob_size.astype(np.float64), _IQ_WINDOW_FACTOR * cols.iq_size
            ),
            cols.lsq_size / mem_frac,
        )
        if cols.inorder.any():  # pure-ooo batches skip the extra min
            window = np.where(
                cols.inorder,
                np.minimum(window, _INORDER_WINDOW_FACTOR * cols.width),
                window,
            )
        return window

    @staticmethod
    def _chain_stretch(profile: WorkloadProfile, cols: ConfigColumns) -> np.ndarray:
        lw = cols.wakeup_latency
        wakeup = profile.dependence_density * (lw + 0.25 * lw * lw)
        load_use = (
            profile.mix.load
            * profile.load_use_fraction
            * np.maximum(0, cols.l1_latency - 1)
        )
        return 1.0 + wakeup + load_use

    @staticmethod
    def _fetch_rate(profile: WorkloadProfile, cols: ConfigColumns) -> np.ndarray:
        taken_per_instr = profile.mix.branch * profile.branch.taken_rate
        if taken_per_instr <= 0:
            return cols.width.astype(np.float64)
        run = 1.0 / taken_per_instr
        return run * (1.0 - _libm_pow(1.0 - 1.0 / run, cols.width.astype(np.float64)))

    def _base_issue_rate(
        self, profile: WorkloadProfile, cols: ConfigColumns, window: np.ndarray
    ) -> np.ndarray:
        ilp = batch_ilp(profile, window) / self._chain_stretch(profile, cols)
        rate = np.minimum(
            np.minimum(cols.width.astype(np.float64), self._fetch_rate(profile, cols)),
            ilp,
        )
        if np.any(rate <= 0):
            raise ConfigurationError(
                f"configuration yields non-positive issue rate for {profile.name}"
            )
        return rate

    @staticmethod
    def _branch_cpi(
        profile: WorkloadProfile, cols: ConfigColumns, window: np.ndarray
    ) -> np.ndarray:
        events = profile.mix.branch * profile.branch.misp_rate
        penalty = (
            cols.frontend_stages
            + cols.scheduler_depth
            + cols.wakeup_latency
            + _BRANCH_RESOLVE_CYCLES
            + window / (4.0 * cols.width)
        )
        return events * penalty

    @staticmethod
    def _l2_access_cpi(
        profile: WorkloadProfile,
        cols: ConfigColumns,
        window: np.ndarray,
        ipc_base: np.ndarray,
        miss1: np.ndarray,
        miss2: np.ndarray,
    ) -> np.ndarray:
        events = profile.mix.load * np.maximum(0.0, miss1 - miss2)
        latency = cols.l1_latency + cols.l2_latency
        hiding = window / ipc_base
        visible = latency * latency / (latency + hiding)
        occupancy = _L2_SERVICE_FRACTION * cols.l2_latency
        return np.where(events > 0, events * (visible + occupancy), 0.0)

    @staticmethod
    def _memory_cpi(
        profile: WorkloadProfile,
        cols: ConfigColumns,
        window: np.ndarray,
        miss2: np.ndarray,
    ) -> np.ndarray:
        events = profile.mix.load * miss2
        mem_window = np.minimum(
            cols.rob_size.astype(np.float64),
            cols.lsq_size / max(profile.mix.memory, 1e-6),
        )
        if cols.inorder.any():
            mem_window = np.where(
                cols.inorder,
                np.minimum(mem_window, _INORDER_WINDOW_FACTOR * cols.width),
                mem_window,
            )
        misses_in_window = events * mem_window
        mlp = np.maximum(
            1.0,
            np.minimum(batch_achievable_mlp(profile.memory, mem_window), misses_in_window),
        )
        service = _MEMORY_SERVICE_NS / cols.clock_period_ns
        return np.where(
            events > 0, events * (cols.memory_cycles / mlp + service), 0.0
        )

    @staticmethod
    def _replay_cpi(
        profile: WorkloadProfile, cols: ConfigColumns, miss1: np.ndarray
    ) -> np.ndarray:
        events = profile.mix.load * miss1
        depth = cols.scheduler_depth - 1 + cols.wakeup_latency
        cpi = events * depth * _REPLAY_FACTOR
        if cols.inorder.any():  # in-order cores never replay
            cpi = np.where(cols.inorder, 0.0, cpi)
        return cpi
