"""Timing simulation: the fast interval model and the cycle-level
trace-driven simulator, sharing one configuration schema and one result
type."""

from .cycle import CycleSimulator
from .interval import IntervalSimulator
from .interval_batch import BatchIntervalModel
from .metrics import CpiStack, SimResult, slowdown
from .validation import ValidationReport, validate_interval_model

__all__ = [
    "CycleSimulator",
    "IntervalSimulator",
    "BatchIntervalModel",
    "CpiStack",
    "SimResult",
    "slowdown",
    "ValidationReport",
    "validate_interval_model",
]
