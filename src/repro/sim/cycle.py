"""Trace-driven cycle-level superscalar timing simulation.

This is the reproduction's ``sim-mase`` stand-in: a detailed timing model
that schedules every instruction of a concrete trace through a
parameterized superscalar pipeline — front end, dispatch, wake-up/select
issue, execution with real cache and branch-predictor state, and in-order
commit.  It is much slower than the interval model (and therefore used
for validation, examples and spot checks rather than inside the annealing
loop), but it shares the exact configuration schema, so any
:class:`~repro.uarch.config.CoreConfig` can be evaluated both ways.

The scheduling algorithm is a one-pass timestamp simulation: instructions
are processed in trace order, computing for each its dispatch, issue,
completion and commit cycles under all structural constraints:

* front-end redirect latency after mispredicted branches (a real
  tournament predictor decides mispredictions);
* dispatch bandwidth (``width`` per cycle) and window occupancy (ROB
  entries free at commit, issue-queue entries free at issue, LSQ entries
  free at commit of the memory instruction);
* operand readiness plus the wake-up bubble between back-to-back
  dependents when the wake-up/select loop is pipelined;
* issue bandwidth (``width`` per cycle);
* load latencies from a real two-level LRU cache hierarchy;
* in-order commit, ``width`` per cycle.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import WorkloadError
from ..uarch.branch import TournamentPredictor
from ..uarch.cache import MemoryHierarchy
from ..uarch.config import CoreConfig
from ..workloads.trace import Op, Trace
from .metrics import SimResult

_MUL_LATENCY = 3
_ALU_LATENCY = 1


class _BandwidthTracker:
    """Finds the earliest cycle at or after a time with a free slot."""

    def __init__(self, slots_per_cycle: int) -> None:
        self._slots = slots_per_cycle
        self._used: defaultdict[int, int] = defaultdict(int)

    def reserve(self, earliest: int) -> int:
        cycle = earliest
        while self._used[cycle] >= self._slots:
            cycle += 1
        self._used[cycle] += 1
        return cycle


class CycleSimulator:
    """Cycle-level evaluation of a trace on a core configuration."""

    def __init__(self, config: CoreConfig) -> None:
        self._config = config

    @property
    def config(self) -> CoreConfig:
        return self._config

    def run(self, trace: Trace, measure_from: int = 0) -> SimResult:
        """Simulate the full trace; returns timing plus event statistics.

        ``measure_from`` discards the first instructions from the
        *timing* statistics (they still execute, warming caches,
        predictors and the pipeline) — the warm-up mechanism SimPoint
        sampling relies on.
        """
        cfg = self._config
        n = len(trace)
        if n == 0:
            raise WorkloadError("cannot simulate an empty trace")
        if not 0 <= measure_from < n:
            raise WorkloadError(
                f"measure_from={measure_from} out of range for {n} instructions"
            )

        predictor = TournamentPredictor()
        hierarchy = MemoryHierarchy(cfg.l1, cfg.l2, cfg.memory_cycles)

        dispatch_bw = _BandwidthTracker(cfg.width)
        issue_bw = _BandwidthTracker(cfg.width)
        commit_bw = _BandwidthTracker(cfg.width)

        ready = np.zeros(n, dtype=np.int64)  # result-available cycle
        issued = np.zeros(n, dtype=np.int64)
        committed = np.zeros(n, dtype=np.int64)
        mem_indices: list[int] = []  # trace indices of memory ops, in order

        fetch_ready = cfg.frontend_stages  # first dispatch after fill
        mispredictions = 0
        branches = 0
        forwards = 0
        # Last in-flight store per 8-byte word, for store-to-load
        # forwarding through the LSQ.
        store_addresses: dict[int, int] = {}

        ops = trace.ops
        src1 = trace.src1_dist
        src2 = trace.src2_dist

        for i in range(n):
            op = int(ops[i])

            # --- dispatch: fetch stream, bandwidth, window occupancy ---
            earliest = fetch_ready
            if i >= cfg.rob_size:
                earliest = max(earliest, int(committed[i - cfg.rob_size]))
            if i >= cfg.iq_size:
                # An IQ entry frees one cycle after its instruction issues.
                earliest = max(earliest, int(issued[i - cfg.iq_size]) + 1)
            is_mem = op in (int(Op.LOAD), int(Op.STORE))
            if is_mem and len(mem_indices) >= cfg.lsq_size:
                blocker = mem_indices[len(mem_indices) - cfg.lsq_size]
                earliest = max(earliest, int(committed[blocker]))
            dispatch = dispatch_bw.reserve(earliest)

            # --- operand readiness and the wake-up loop ---
            operands = dispatch
            for dist in (int(src1[i]), int(src2[i])):
                if 0 < dist <= i:
                    producer_ready = int(ready[i - dist])
                    if producer_ready > dispatch:
                        # In-flight producer: pay the wake-up bubble.
                        operands = max(operands, producer_ready + cfg.wakeup_latency)
                    else:
                        operands = max(operands, producer_ready)

            # Register read through the pipelined scheduler/register file.
            issue = issue_bw.reserve(max(dispatch + cfg.scheduler_depth, operands))
            issued[i] = issue

            # --- execute ---
            if op == int(Op.LOAD):
                addr = int(trace.addrs[i])
                forward_from = store_addresses.get(addr >> 3)
                if forward_from is not None and committed[forward_from] > issue:
                    # Store-to-load forwarding: an in-flight store to the
                    # same word supplies the data through the LSQ.
                    latency = cfg.lsq_depth
                    forwards += 1
                    hierarchy.access(addr)  # the line is still touched
                else:
                    latency = hierarchy.access(addr).latency_cycles
                mem_indices.append(i)
            elif op == int(Op.STORE):
                addr = int(trace.addrs[i])
                hierarchy.access(addr)
                store_addresses[addr >> 3] = i
                latency = cfg.lsq_depth
                mem_indices.append(i)
            elif op == int(Op.MUL):
                latency = _MUL_LATENCY
            else:
                latency = _ALU_LATENCY
            ready[i] = issue + latency

            # --- commit: in order, width per cycle ---
            prev_commit = int(committed[i - 1]) if i > 0 else 0
            commit = commit_bw.reserve(max(int(ready[i]) + 1, prev_commit))
            committed[i] = commit

            # --- control flow ---
            if op == int(Op.BRANCH):
                branches += 1
                pc = int(trace.pcs[i])
                taken = bool(trace.taken[i])
                predicted = predictor.predict(pc)
                predictor.update(pc, taken)
                if predicted != taken:
                    mispredictions += 1
                    # Redirect: fetch restarts after resolution, and the
                    # front end refills before the next dispatch.
                    fetch_ready = max(fetch_ready, int(ready[i]) + cfg.frontend_stages)

        if measure_from > 0:
            cycles = float(committed[-1] - committed[measure_from - 1])
            measured_instructions = n - measure_from
        else:
            cycles = float(committed[-1])
            measured_instructions = n
        l1 = hierarchy.l1
        l2 = hierarchy.l2
        return SimResult(
            workload=trace.name,
            instructions=measured_instructions,
            cycles=max(cycles, 1.0),
            clock_period_ns=cfg.clock_period_ns,
            detail={
                "branches": branches,
                "mispredictions": mispredictions,
                "misp_rate": mispredictions / branches if branches else 0.0,
                "store_forwards": forwards,
                "l1_accesses": l1.accesses,
                "l1_miss_rate": l1.miss_rate,
                "l2_accesses": l2.accesses,
                "l2_miss_rate": l2.miss_rate,
            },
        )
