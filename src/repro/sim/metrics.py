"""Simulation result containers and performance metrics.

The paper's fitness metric is **IPT** — instructions per time unit —
because IPC alone cannot compare configurations with different clock
periods.  We express IPT in instructions per nanosecond, so
``IPT = IPC / clock_period_ns``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass(frozen=True)
class CpiStack:
    """Additive CPI decomposition produced by the interval model."""

    base: float
    branch: float
    l2_access: float
    memory: float

    def __post_init__(self) -> None:
        for name, value in (
            ("base", self.base),
            ("branch", self.branch),
            ("l2_access", self.l2_access),
            ("memory", self.memory),
        ):
            if value < 0:
                raise ReproError(f"CPI component {name} cannot be negative: {value}")
        if self.base <= 0:
            raise ReproError(f"base CPI must be positive: {self.base}")

    @property
    def total(self) -> float:
        return self.base + self.branch + self.l2_access + self.memory


@dataclass(frozen=True)
class SimResult:
    """Outcome of evaluating one workload on one configuration."""

    workload: str
    instructions: int
    cycles: float
    clock_period_ns: float
    cpi_stack: CpiStack | None = None
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ReproError(f"instructions must be positive: {self.instructions}")
        if self.cycles <= 0:
            raise ReproError(f"cycles must be positive: {self.cycles}")
        if self.clock_period_ns <= 0:
            raise ReproError(f"clock period must be positive: {self.clock_period_ns}")

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions

    @property
    def ipt(self) -> float:
        """Instructions per nanosecond — the paper's fitness metric."""
        return self.ipc / self.clock_period_ns

    @property
    def runtime_ns(self) -> float:
        """Total execution time."""
        return self.cycles * self.clock_period_ns


def slowdown(own_ipt: float, other_ipt: float) -> float:
    """Fractional slowdown of running on ``other`` vs one's own config.

    Matches Appendix A: ``slowdown = 1 - other/own`` (0 on one's own
    configuration, 0.33 for bzip-on-gzip, ...).
    """
    if own_ipt <= 0:
        raise ReproError(f"own IPT must be positive: {own_ipt}")
    if other_ipt < 0:
        raise ReproError(f"IPT cannot be negative: {other_ipt}")
    return 1.0 - other_ipt / own_ipt
