"""Mechanistic interval model of superscalar performance.

The paper runs thousands of cycle-accurate SimpleScalar simulations per
benchmark inside its annealing loop.  This module provides the fast
evaluator that plays that role here: a first-order *interval analysis*
model in the Karkhanis/Eyerman tradition.  Execution is modelled as a
background steady-state issue rate punctuated by miss events, giving an
additive CPI decomposition:

``CPI = CPI_base + CPI_branch + CPI_L2 + CPI_memory + CPI_replay``

* **CPI_base** — the issue rate sustainable between miss events, bounded
  by three ceilings: the configured width, the fetch bandwidth after
  taken-branch fragmentation (which is what makes width genuinely useful
  beyond the ILP plateau), and the ILP the instruction window exposes —
  *stretched* by the wake-up bubble between back-to-back dependents and
  by extra L1 hit cycles on load-use chains.  The stretch is where the
  clock period couples into the model: a faster clock either shrinks the
  window structures (capacity loss) or deepens their pipelines (stretch
  gain) — the paper's Figure 2 trade-off.
* **CPI_branch** — misprediction events times the refill depth (fixed
  front-end nanoseconds, so deeper in cycles at faster clocks) plus a
  mild window-drain term for the branch's resolution.
* **CPI_L2** — L1 misses hitting in L2: a visible-latency component that
  shrinks as the window grows (out-of-order hiding) plus an occupancy
  component (every miss consumes L2 bandwidth even when its latency is
  hidden — this is what makes undersized L1 caches expensive).
* **CPI_memory** — loads missing all caches: full memory latency divided
  by achievable memory-level parallelism (capped by the workload's
  inherent MLP and by how many misses fit in the window), plus DRAM
  occupancy.
* **CPI_replay** — speculative scheduling: the deeper the
  scheduler/wake-up loop, the more issue slots each L1 miss poisons.

The model is deliberately *mechanistic*, not regression-fit: the paper's
§2.3 criticizes black-box regression models precisely because their
accuracy cannot be verified across a constrained design space.  Every
term is a standard first-order approximation whose inputs are
microarchitecture-independent workload statistics.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..uarch.config import CoreConfig
from ..workloads.profile import WorkloadProfile
from .metrics import CpiStack, SimResult

#: Instructions represented per issue-queue slot when bounding the
#: effective window (issued-but-uncommitted instructions live in the ROB,
#: so the IQ constrains the window more loosely than the ROB does).
_IQ_WINDOW_FACTOR = 3.0

#: Fixed branch-resolution depth beyond the front end (execute + bypass).
_BRANCH_RESOLVE_CYCLES = 2

#: L2 occupancy per L1 miss, as a fraction of the L2 access latency
#: (pipelined banks stay busy for part of the access).
_L2_SERVICE_FRACTION = 0.5

#: DRAM-channel occupancy per memory access, in nanoseconds (the DRAM
#: runs in its own clock domain, so this cost is fixed in time).
_MEMORY_SERVICE_NS = 4.0

#: Fraction of poisoned issue slots recovered per replayed cycle.
_REPLAY_FACTOR = 0.5

#: Instruction-window ceiling for in-order cores, in multiples of the
#: issue width.  A stall-on-use in-order pipeline exposes only the
#: instructions between fetch and the first stalled consumer — a couple
#: of issue groups — regardless of how large the ROB/IQ structures are.
_INORDER_WINDOW_FACTOR = 2.0

#: Nominal number of evaluated instructions reported in results.
_NOMINAL_INSTRUCTIONS = 100_000_000


class IntervalSimulator:
    """Evaluate (workload, configuration) pairs analytically.

    The simulator is stateless and cheap (tens of microseconds per
    call), which is what makes the annealing exploration tractable; it
    is validated against the trace-driven cycle simulator in the test
    suite.
    """

    #: Folded into evaluation-cache keys (see :mod:`repro.engine.keys`);
    #: bump on any change that alters modelled numbers, so stale cached
    #: results from earlier model versions can never be returned.
    cache_version = 1

    def evaluate(self, profile: WorkloadProfile, config: CoreConfig) -> SimResult:
        """Return the modelled performance of ``profile`` on ``config``."""
        window = self.effective_window(profile, config)
        ipc_base = self.base_issue_rate(profile, config, window)
        miss1 = profile.memory.miss_rate(
            config.l1.capacity_bytes, config.l1.block_bytes, config.l1.assoc
        )
        miss2 = self._global_l2_miss(profile, config)

        cpi_base = 1.0 / ipc_base
        cpi_branch = self.branch_cpi(profile, config, window)
        cpi_l2 = self.l2_access_cpi(profile, config, window, ipc_base, miss1, miss2)
        cpi_mem = self.memory_cpi(profile, config, window, miss2)
        cpi_replay = self.replay_cpi(profile, config, miss1)

        stack = CpiStack(
            base=cpi_base + cpi_replay,
            branch=cpi_branch,
            l2_access=cpi_l2,
            memory=cpi_mem,
        )
        cycles = stack.total * _NOMINAL_INSTRUCTIONS
        return SimResult(
            workload=profile.name,
            instructions=_NOMINAL_INSTRUCTIONS,
            cycles=cycles,
            clock_period_ns=config.clock_period_ns,
            cpi_stack=stack,
            detail={
                "window": window,
                "ipc_base": ipc_base,
                "l1_miss_rate": miss1,
                "l2_global_miss_rate": miss2,
            },
        )

    def ipt(self, profile: WorkloadProfile, config: CoreConfig) -> float:
        """Shorthand: the IPT of ``profile`` on ``config``."""
        return self.evaluate(profile, config).ipt

    # ------------------------------------------------------------------
    # model components
    # ------------------------------------------------------------------

    def effective_window(self, profile: WorkloadProfile, config: CoreConfig) -> float:
        """Instruction-window size usable by this workload.

        Bounded by the ROB, by the issue queue (scaled, since issued
        instructions leave it), and by the LSQ relative to the workload's
        memory-operation density.  An in-order core cannot look past a
        stalled instruction, so its window is additionally capped at a
        couple of issue groups (``_INORDER_WINDOW_FACTOR * width``).
        """
        mem_frac = max(profile.mix.memory, 1e-6)
        window = min(
            config.rob_size,
            _IQ_WINDOW_FACTOR * config.iq_size,
            config.lsq_size / mem_frac,
        )
        if config.is_inorder:
            window = min(window, _INORDER_WINDOW_FACTOR * config.width)
        return float(window)

    def chain_stretch(self, profile: WorkloadProfile, config: CoreConfig) -> float:
        """Average issue-slot stretch along dependence chains.

        A wake-up/select loop pipelined over ``1 + wakeup_latency``
        cycles inserts ``wakeup_latency`` bubbles between back-to-back
        dependents; extra L1 hit cycles delay load-use consumers.  The
        wake-up cost grows superlinearly with the loop depth: beyond one
        bubble, the scheduler can no longer hide chained wake-ups behind
        select, and chains of dependent pairs compound.
        """
        lw = config.wakeup_latency
        wakeup = profile.dependence_density * (lw + 0.25 * lw * lw)
        load_use = (
            profile.mix.load
            * profile.load_use_fraction
            * max(0, config.l1.latency_cycles - 1)
        )
        return 1.0 + wakeup + load_use

    def fetch_rate(self, profile: WorkloadProfile, config: CoreConfig) -> float:
        """Sustainable fetch bandwidth after taken-branch fragmentation.

        A taken branch ends the fetch block, so the front end delivers
        ``E[min(width, run)]`` instructions per cycle where ``run`` is the
        geometric distance between taken branches.  This is the ceiling
        that makes wide machines worth their port costs for workloads
        with long branch runs.
        """
        taken_per_instr = profile.mix.branch * profile.branch.taken_rate
        if taken_per_instr <= 0:
            return float(config.width)
        run = 1.0 / taken_per_instr
        return run * (1.0 - (1.0 - 1.0 / run) ** config.width)

    def base_issue_rate(
        self, profile: WorkloadProfile, config: CoreConfig, window: float
    ) -> float:
        """Steady-state issue rate between miss events (IPC)."""
        ilp = profile.ilp(window) / self.chain_stretch(profile, config)
        rate = min(float(config.width), self.fetch_rate(profile, config), ilp)
        if rate <= 0:
            raise ConfigurationError(
                f"configuration yields non-positive issue rate for {profile.name}"
            )
        return rate

    def branch_penalty_cycles(self, config: CoreConfig, window: float) -> float:
        """Refill cost of one misprediction, in cycles.

        Front-end refill plus scheduler drain plus the window cost: a
        mispredicted branch deep in a filled window resolves late, and
        the squashed window must be re-dispatched at ``width`` per cycle.
        This is the force that keeps huge windows from being free for
        workloads with imperfect branch prediction.
        """
        return (
            config.frontend_stages
            + config.scheduler_depth
            + config.wakeup_latency
            + _BRANCH_RESOLVE_CYCLES
            + window / (4.0 * config.width)
        )

    def branch_cpi(
        self, profile: WorkloadProfile, config: CoreConfig, window: float
    ) -> float:
        """CPI lost to branch mispredictions."""
        events = profile.mix.branch * profile.branch.misp_rate
        return events * self.branch_penalty_cycles(config, window)

    def l2_access_cpi(
        self,
        profile: WorkloadProfile,
        config: CoreConfig,
        window: float,
        ipc_base: float,
        miss1: float,
        miss2: float,
    ) -> float:
        """CPI lost to L1 load misses that hit in the L2.

        Visible latency shrinks hyperbolically as the window's hiding
        capacity grows, but every miss still occupies the L2 for a few
        cycles — out-of-order execution hides latency, not bandwidth.
        """
        events = profile.mix.load * max(0.0, miss1 - miss2)
        if events <= 0:
            return 0.0
        latency = config.l1.latency_cycles + config.l2.latency_cycles
        hiding = window / ipc_base
        visible = latency * latency / (latency + hiding)
        occupancy = _L2_SERVICE_FRACTION * config.l2.latency_cycles
        return events * (visible + occupancy)

    def memory_cpi(
        self,
        profile: WorkloadProfile,
        config: CoreConfig,
        window: float,
        miss2: float,
    ) -> float:
        """CPI lost to loads that miss all cache levels.

        Long misses fill the window and stall dispatch; they overlap only
        with *each other*, up to the workload's inherent MLP and the
        number of misses the window can hold at once.  Each miss also
        occupies the DRAM channel.
        """
        events = profile.mix.load * miss2
        if events <= 0:
            return 0.0
        # Outstanding misses live in the ROB/LSQ (issued loads have left
        # the issue queue), so the MLP window is not IQ-capped.  In-order
        # cores stall at the first miss consumer, so their MLP window is
        # the same couple-of-issue-groups cap as the ILP window.
        mem_window = min(
            float(config.rob_size),
            config.lsq_size / max(profile.mix.memory, 1e-6),
        )
        if config.is_inorder:
            mem_window = min(mem_window, _INORDER_WINDOW_FACTOR * config.width)
        misses_in_window = events * mem_window
        mlp = max(
            1.0, min(profile.memory.achievable_mlp(mem_window), misses_in_window)
        )
        service = _MEMORY_SERVICE_NS / config.clock_period_ns
        return events * (config.memory_cycles / mlp + service)

    def replay_cpi(
        self, profile: WorkloadProfile, config: CoreConfig, miss1: float
    ) -> float:
        """CPI lost to speculative-scheduling replays.

        Schedulers issue load consumers assuming L1 hits; every L1 miss
        poisons the slots issued during the scheduler/wake-up loop's
        depth, which must be replayed.  In-order cores stall instead of
        speculating on load latency, so they pay no replay cost.
        """
        if config.is_inorder:
            return 0.0
        events = profile.mix.load * miss1
        depth = config.scheduler_depth - 1 + config.wakeup_latency
        return events * depth * _REPLAY_FACTOR

    @staticmethod
    def _global_l2_miss(profile: WorkloadProfile, config: CoreConfig) -> float:
        """Global miss rate past the L2 (per memory access)."""
        return profile.memory.miss_rate(
            config.l2.capacity_bytes, config.l2.block_bytes, config.l2.assoc
        )
