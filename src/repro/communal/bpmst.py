"""Balanced partitioning of minimum spanning trees — §5.5.

For multithreaded operation, workloads stall when their assigned core is
busy, so beyond minimizing surrogate slowdown the *aggregate importance
weight* per core should be balanced.  The paper maps this to the
Balanced Partitioning of Minimum Spanning Trees (BPMST) problem [31]:
build a minimum spanning tree over the workloads (edge weights =
surrogate slowdowns) and cut it into *k* components whose total weights
are as equal as possible.

The exact problem is NP-hard; we implement the standard tree-partition
heuristic: build the MST (Prim), then greedily remove the k-1 edges that
best improve weight balance, with slowdown cost as a tiebreaker.  Each
resulting component is served by the member whose configuration
minimizes the weighted slowdown of the whole component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError


@dataclass(frozen=True)
class BpmstPartition:
    """One balanced partition of the workload MST."""

    groups: tuple[tuple[str, ...], ...]
    cores: tuple[str, ...]  # chosen configuration per group
    group_weights: tuple[float, ...]
    imbalance: float  # max group weight / mean group weight - 1
    average_slowdown: float


def _mst_edges(dist: np.ndarray) -> list[tuple[int, int]]:
    """Prim's algorithm over a symmetric distance matrix."""
    n = dist.shape[0]
    in_tree = {0}
    edges: list[tuple[int, int]] = []
    while len(in_tree) < n:
        best: tuple[float, int, int] | None = None
        for u in in_tree:
            for v in range(n):
                if v in in_tree:
                    continue
                if best is None or dist[u, v] < best[0]:
                    best = (float(dist[u, v]), u, v)
        assert best is not None
        _, u, v = best
        in_tree.add(v)
        edges.append((u, v))
    return edges


def bpmst_partition(cross: CrossPerformance, k: int) -> BpmstPartition:
    """Partition workloads into ``k`` balanced groups along the MST.

    Edge weights are symmetrized surrogate slowdowns
    (``min(S[i,j], S[j,i])`` — the cheaper direction of serving one
    workload with the other's configuration).
    """
    n = cross.size
    if not 1 <= k <= n:
        raise CommunalError(f"k={k} out of range for {n} workloads")
    slowdown = cross.slowdown_matrix()
    sym = np.minimum(slowdown, slowdown.T)
    np.fill_diagonal(sym, 0.0)

    edges = _mst_edges(sym)
    weights = np.array(cross.weights)

    # Greedily cut k-1 edges, each time choosing the cut that minimizes
    # the resulting weight imbalance (slowdown of the cut edge breaks
    # ties toward keeping tightly-coupled workloads together).
    removed: set[tuple[int, int]] = set()
    for _ in range(k - 1):
        best: tuple[float, float, tuple[int, int]] | None = None
        for edge in edges:
            if edge in removed:
                continue
            trial = removed | {edge}
            imbalance = _imbalance(edges, trial, weights, n)
            cost = float(sym[edge[0], edge[1]])
            key = (imbalance, -cost, edge)
            if best is None or key < best:
                best = key
        assert best is not None
        removed.add(best[2])

    components = _components(edges, removed, n)
    names = cross.names
    groups = []
    cores = []
    group_weights = []
    total_slow = 0.0
    total_weight = 0.0
    for comp in components:
        members = tuple(names[i] for i in sorted(comp))
        # Serve the component with the member config that minimizes the
        # weighted slowdown of every member.
        def component_cost(core: str) -> float:
            return sum(
                weights[cross.index(m)]
                * slowdown[cross.index(m), cross.index(core)]
                for m in members
            )

        core = min(members, key=component_cost)
        groups.append(members)
        cores.append(core)
        gw = float(sum(weights[cross.index(m)] for m in members))
        group_weights.append(gw)
        total_slow += component_cost(core)
        total_weight += gw

    gw_arr = np.array(group_weights)
    imbalance = float(gw_arr.max() / gw_arr.mean() - 1.0)
    return BpmstPartition(
        groups=tuple(groups),
        cores=tuple(cores),
        group_weights=tuple(group_weights),
        imbalance=imbalance,
        average_slowdown=total_slow / total_weight,
    )


def _components(
    edges: Sequence[tuple[int, int]], removed: set[tuple[int, int]], n: int
) -> list[set[int]]:
    adj: dict[int, set[int]] = {i: set() for i in range(n)}
    for u, v in edges:
        if (u, v) in removed:
            continue
        adj[u].add(v)
        adj[v].add(u)
    seen: set[int] = set()
    comps = []
    for start in range(n):
        if start in seen:
            continue
        stack = [start]
        comp = set()
        while stack:
            node = stack.pop()
            if node in comp:
                continue
            comp.add(node)
            stack.extend(adj[node] - comp)
        seen |= comp
        comps.append(comp)
    return comps


def _imbalance(
    edges: Sequence[tuple[int, int]],
    removed: set[tuple[int, int]],
    weights: np.ndarray,
    n: int,
) -> float:
    comps = _components(edges, removed, n)
    totals = np.array([sum(weights[i] for i in comp) for comp in comps])
    return float(totals.max() / totals.mean() - 1.0)
