"""Figures of merit for heterogeneous core combinations (§5.2).

Given the cross-configuration performance matrix and a set of *available*
core configurations, every workload runs on the available core it
prefers.  Three figures of merit summarize the population, matching the
paper's three design goals:

* **average IPT** — maximize the expected performance of an arbitrary
  job submitted in isolation;
* **harmonic-mean IPT** — minimize the total execution time of the whole
  suite run back to back (the classic single-core metric);
* **contention-weighed harmonic-mean IPT** — the multi-programmed goal:
  each workload's IPT is divided by the number of workloads sharing its
  chosen core before taking the harmonic mean, penalizing combinations
  that funnel everyone onto one super-core.

All merits support the paper's importance weights (§5.4): a workload's
contribution is scaled by its weight.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError


def assignment(
    cross: CrossPerformance, available: Sequence[str]
) -> dict[str, str]:
    """Map every workload to the available configuration it prefers."""
    if not available:
        raise CommunalError("at least one configuration must be available")
    for name in available:
        cross.index(name)  # validates
    return {
        workload: cross.best_config_for(workload, available)
        for workload in cross.names
    }


def assigned_ipts(
    cross: CrossPerformance, available: Sequence[str]
) -> np.ndarray:
    """IPT of each workload on its preferred available configuration."""
    chosen = assignment(cross, available)
    return np.array(
        [cross.ipt_on(w, chosen[w]) for w in cross.names], dtype=float
    )


def average_ipt(cross: CrossPerformance, available: Sequence[str]) -> float:
    """Weighted arithmetic mean of per-workload IPT on best available cores."""
    ipts = assigned_ipts(cross, available)
    weights = np.array(cross.weights)
    return float((ipts * weights).sum() / weights.sum())


def harmonic_ipt(cross: CrossPerformance, available: Sequence[str]) -> float:
    """Weighted harmonic mean of per-workload IPT on best available cores."""
    ipts = assigned_ipts(cross, available)
    weights = np.array(cross.weights)
    return float(weights.sum() / (weights / ipts).sum())


def contention_weighted_harmonic_ipt(
    cross: CrossPerformance, available: Sequence[str]
) -> float:
    """Harmonic mean with each IPT divided by its core's sharer count.

    The paper: "first dividing the performance of each benchmark when run
    on the most suitable core available for it, by the number of
    benchmarks with which it shares that core, and then taking the
    harmonic mean."

    ``available`` may repeat a configuration name (the heterogeneous
    core-count search replicates cores): with ``c`` copies, the
    workloads preferring that configuration spread across them, so each
    pays ``ceil(count / c)`` sharers.  With every name distinct — every
    historical caller — that is exactly ``count``, bit-identically.
    """
    chosen = assignment(cross, available)
    sharers = Counter(chosen.values())
    copies = Counter(available)
    weights = np.array(cross.weights)
    ipts = np.array(
        [
            cross.ipt_on(w, chosen[w])
            / -(-sharers[chosen[w]] // copies[chosen[w]])
            for w in cross.names
        ],
        dtype=float,
    )
    return float(weights.sum() / (weights / ipts).sum())


def ideal_average_ipt(cross: CrossPerformance) -> float:
    """Average IPT when every workload has its own customized core."""
    return average_ipt(cross, list(cross.names))


def ideal_harmonic_ipt(cross: CrossPerformance) -> float:
    """Harmonic-mean IPT when every workload has its own customized core."""
    return harmonic_ipt(cross, list(cross.names))


def average_slowdown(cross: CrossPerformance, available: Sequence[str]) -> float:
    """Weighted mean fractional slowdown vs every-workload-ideal.

    This is the paper's "average slowdown across all benchmarks compared
    to the ideal case of all benchmarks being executed on their own
    customized architectures."
    """
    chosen = assignment(cross, available)
    weights = np.array(cross.weights)
    slow = np.array(
        [
            1.0 - cross.ipt_on(w, chosen[w]) / cross.own_ipt(w)
            for w in cross.names
        ],
        dtype=float,
    )
    return float((slow * weights).sum() / weights.sum())


MERITS: Mapping[str, object] = {
    "avg": average_ipt,
    "har": harmonic_ipt,
    "cw-har": contention_weighted_harmonic_ipt,
}
