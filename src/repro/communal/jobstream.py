"""Multi-programmed job-stream simulation — the §5.5 scenario.

The paper defers multithreaded communal customization to future work but
sketches the setting: jobs arrive (Poisson), each is an instance of one
workload, and contention for a surrogate core either stalls the job or
redirects it to the next most suitable free core.  This module
implements that queueing simulation so the BPMST-balanced assignments
can be evaluated under load.

Time is measured in abstract work units: a job's service time on a core
is ``work / IPT(workload, core)``, so better-suited cores finish jobs
proportionally faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Sequence

import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError


class ContentionPolicy(Enum):
    """What a job does when its assigned core is busy (§5.5)."""

    STALL = "stall"  # wait for the assigned surrogate core
    REDIRECT = "redirect"  # take the best *free* core instead


@dataclass(frozen=True)
class JobStreamResult:
    """Aggregate queueing metrics of one simulated job stream."""

    jobs_completed: int
    mean_turnaround: float
    mean_service: float
    mean_wait: float
    core_utilization: Mapping[str, float]


def simulate_job_stream(
    cross: CrossPerformance,
    cores: Sequence[str],
    assignment: Mapping[str, str],
    arrival_rate: float,
    n_jobs: int = 2000,
    job_work: float = 100.0,
    policy: ContentionPolicy = ContentionPolicy.STALL,
    seed: int = 0,
    burstiness: float = 1.0,
) -> JobStreamResult:
    """Simulate a stream of jobs over a heterogeneous core set.

    Parameters
    ----------
    cross:
        Cross-configuration performance (provides IPT of any workload on
        any core).
    cores:
        The physical cores, named by the workload whose customized
        configuration they implement.  Duplicates allowed.
    assignment:
        Workload -> core-name surrogate assignment (each workload's home
        core); required for both policies.
    arrival_rate:
        Mean job arrivals per unit time (Poisson process).
    burstiness:
        >1 makes inter-arrival times heavier-tailed (hyperexponential
        mixture), modelling the paper's remark that benefit diminishes as
        burstiness grows.
    """
    if not cores:
        raise CommunalError("need at least one core")
    if arrival_rate <= 0:
        raise CommunalError("arrival rate must be positive")
    if not 1.0 <= burstiness < 10.0:
        raise CommunalError("burstiness must be in [1, 10)")
    for w in cross.names:
        if w not in assignment:
            raise CommunalError(f"workload {w} has no assigned core")
        if assignment[w] not in cores:
            raise CommunalError(
                f"workload {w} assigned to {assignment[w]}, not a physical core"
            )

    rng = np.random.default_rng(seed)
    names = cross.names
    weights = np.array(cross.weights, dtype=float)
    probs = weights / weights.sum()

    core_free_at = {i: 0.0 for i in range(len(cores))}
    core_busy_time = {i: 0.0 for i in range(len(cores))}
    by_name: dict[str, list[int]] = {}
    for i, c in enumerate(cores):
        by_name.setdefault(c, []).append(i)

    t = 0.0
    turnarounds = []
    services = []
    waits = []
    for _ in range(n_jobs):
        # Mean-preserving hyperexponential inter-arrival: 10% of gaps are
        # `burstiness` times longer, the rest shortened to compensate, so
        # higher burstiness clumps arrivals without changing the rate.
        if burstiness > 1.0 and rng.random() < 0.1:
            gap = rng.exponential(burstiness / arrival_rate)
        elif burstiness > 1.0:
            gap = rng.exponential((1.0 - 0.1 * burstiness) / 0.9 / arrival_rate)
        else:
            gap = rng.exponential(1.0 / arrival_rate)
        t += gap
        workload = names[int(rng.choice(len(names), p=probs))]
        home = assignment[workload]

        if policy is ContentionPolicy.STALL:
            # Wait for the earliest-free instance of the home core.
            core = min(by_name[home], key=lambda i: core_free_at[i])
        else:
            # Redirect: among cores free at arrival, take the one giving
            # the best IPT; if none is free, fall back to earliest-free.
            free = [i for i in core_free_at if core_free_at[i] <= t]
            if free:
                core = max(free, key=lambda i: cross.ipt_on(workload, cores[i]))
            else:
                core = min(core_free_at, key=lambda i: core_free_at[i])

        start = max(t, core_free_at[core])
        service = job_work / cross.ipt_on(workload, cores[core])
        finish = start + service
        core_free_at[core] = finish
        core_busy_time[core] += service
        turnarounds.append(finish - t)
        services.append(service)
        waits.append(start - t)

    horizon = max(max(core_free_at.values()), t)
    utilization = {
        f"{cores[i]}#{i}": core_busy_time[i] / horizon for i in core_free_at
    }
    return JobStreamResult(
        jobs_completed=n_jobs,
        mean_turnaround=float(np.mean(turnarounds)),
        mean_service=float(np.mean(services)),
        mean_wait=float(np.mean(waits)),
        core_utilization=utilization,
    )
