"""Importance weights for communal customization (§5.4).

"To consider different importance weights, the slowdowns due to
surrogating must be weighed by the importance weight of corresponding
workloads."  Weights can come from job-submission frequency alone or
from frequency x execution time; the latter depends on the executing
configuration, so the paper suggests rough approximations — we use each
workload's IPT on its own customized core.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError
from ..workloads.profile import WorkloadProfile


def weighted_profiles(
    profiles: Sequence[WorkloadProfile], weights: Mapping[str, float]
) -> list[WorkloadProfile]:
    """Copies of the profiles with the given importance weights applied."""
    missing = [p.name for p in profiles if p.name not in weights]
    if missing:
        raise CommunalError(f"missing weights for: {', '.join(missing)}")
    return [replace(p, weight=float(weights[p.name])) for p in profiles]


def frequency_weights(frequencies: Mapping[str, float]) -> dict[str, float]:
    """Normalize job-submission frequencies into importance weights."""
    if not frequencies:
        raise CommunalError("need at least one frequency")
    values = np.array(list(frequencies.values()), dtype=float)
    if (values <= 0).any():
        raise CommunalError("frequencies must be positive")
    mean = values.mean()
    return {name: float(f / mean) for name, f in frequencies.items()}


def runtime_weights(
    cross: CrossPerformance, frequencies: Mapping[str, float] | None = None
) -> dict[str, float]:
    """Weights proportional to frequency x approximate execution time.

    Execution time is approximated as the reciprocal of each workload's
    IPT on its own customized configuration (the paper's "rough
    approximations of the relative execution times").
    """
    names = cross.names
    freq = {n: 1.0 for n in names}
    if frequencies is not None:
        freq.update({n: float(f) for n, f in frequencies.items()})
    raw = {n: freq[n] / cross.own_ipt(n) for n in names}
    mean = float(np.mean(list(raw.values())))
    return {n: v / mean for n, v in raw.items()}


def reweighted(cross: CrossPerformance, weights: Mapping[str, float]) -> CrossPerformance:
    """A copy of the cross-performance matrix with new importance weights."""
    missing = [n for n in cross.names if n not in weights]
    if missing:
        raise CommunalError(f"missing weights for: {', '.join(missing)}")
    return CrossPerformance(
        names=cross.names,
        ipt=cross.ipt.copy(),
        configs=cross.configs,
        weights=tuple(float(weights[n]) for n in cross.names),
    )
