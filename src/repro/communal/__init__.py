"""Communal customization: figures of merit, core-combination search,
surrogate graphs, subsetting/K-means baselines, BPMST balancing, and the
multi-programmed job-stream simulation."""

from .approaches import (
    ApproachComparison,
    SubsetFirstDesign,
    compare_approaches,
    subset_first_design,
)
from .bpmst import BpmstPartition, bpmst_partition
from .dendrogram import (
    Dendrogram,
    Merge,
    SurrogateDisagreement,
    build_dendrogram,
    surrogate_disagreement,
)
from .combination import (
    Combination,
    best_combination,
    best_combinations_table,
    evaluate_combination,
    per_workload_ipt,
)
from .jobstream import ContentionPolicy, JobStreamResult, simulate_job_stream
from .kmeans import KMeansResult, kmeans_configurations
from .plackettburman import (
    BottleneckProfile,
    PbFactor,
    bottleneck_effects,
    bottleneck_rank_distance,
    default_factors,
    plackett_burman_design,
)
from .merit import (
    MERITS,
    assigned_ipts,
    assignment,
    average_ipt,
    average_slowdown,
    contention_weighted_harmonic_ipt,
    harmonic_ipt,
    ideal_average_ipt,
    ideal_harmonic_ipt,
)
from .subsetting import (
    Cluster,
    SubsettingExperiment,
    characteristics_matrix,
    closest_pairs,
    cluster_workloads,
    raw_distance_matrix,
    subsetting_experiment,
)
from .surrogate import (
    FeedbackEvent,
    Propagation,
    SurrogateEdge,
    SurrogateGraph,
    greedy_surrogates,
    surrogate_merits,
)
from .weights import frequency_weights, reweighted, runtime_weights, weighted_profiles

__all__ = [
    "ApproachComparison",
    "SubsetFirstDesign",
    "compare_approaches",
    "subset_first_design",
    "Dendrogram",
    "Merge",
    "SurrogateDisagreement",
    "build_dendrogram",
    "surrogate_disagreement",
    "BottleneckProfile",
    "PbFactor",
    "bottleneck_effects",
    "bottleneck_rank_distance",
    "default_factors",
    "plackett_burman_design",
    "BpmstPartition",
    "bpmst_partition",
    "Combination",
    "best_combination",
    "best_combinations_table",
    "evaluate_combination",
    "per_workload_ipt",
    "ContentionPolicy",
    "JobStreamResult",
    "simulate_job_stream",
    "KMeansResult",
    "kmeans_configurations",
    "MERITS",
    "assigned_ipts",
    "assignment",
    "average_ipt",
    "average_slowdown",
    "contention_weighted_harmonic_ipt",
    "harmonic_ipt",
    "ideal_average_ipt",
    "ideal_harmonic_ipt",
    "Cluster",
    "SubsettingExperiment",
    "characteristics_matrix",
    "closest_pairs",
    "cluster_workloads",
    "raw_distance_matrix",
    "subsetting_experiment",
    "FeedbackEvent",
    "Propagation",
    "SurrogateEdge",
    "SurrogateGraph",
    "greedy_surrogates",
    "surrogate_merits",
    "frequency_weights",
    "reweighted",
    "runtime_weights",
    "weighted_profiles",
]
