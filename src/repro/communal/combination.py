"""Exhaustive core-combination search — Table 6 and Figure 4.

"A complete search of all possible core-combinations" (§5.2): for a
target core count *k*, enumerate every k-subset of the customized
configurations and keep the subset maximizing the requested figure of
merit.  The paper ships a tool for exactly this inside the xp-scalar
framework; :func:`best_combination` is that tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Callable, Sequence

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError
from .merit import (
    MERITS,
    assignment,
    average_ipt,
    contention_weighted_harmonic_ipt,
    harmonic_ipt,
)

MeritFn = Callable[[CrossPerformance, Sequence[str]], float]

#: ``mode="auto"`` stays exhaustive up to this many k-subsets, then
#: switches to the beam search.  The paper-scale searches (C(11, 4) =
#: 330) sit far below it, so the default mode is exact for every
#: historical call; the heterogeneous design searches (hundreds of
#: candidates) sit far above it.
EXACT_SUBSET_LIMIT = 100_000

#: Default beam width.  The beam is *provably* exhaustive whenever it
#: never overflows — i.e. when every partial-subset level fits within
#: the width — which the small-n tests exploit.
DEFAULT_BEAM_WIDTH = 64


@dataclass(frozen=True)
class Combination:
    """One evaluated core combination."""

    configs: tuple[str, ...]
    merit_name: str
    merit: float
    average: float
    harmonic: float
    contention_weighted: float
    assignment: tuple[tuple[str, str], ...]  # (workload, chosen config)


def _resolve_merit(merit: str | MeritFn) -> tuple[str, MeritFn]:
    if callable(merit):
        return getattr(merit, "__name__", "custom"), merit
    try:
        return merit, MERITS[merit]  # type: ignore[return-value]
    except KeyError:
        raise CommunalError(
            f"unknown merit {merit!r}; known: {', '.join(MERITS)}"
        ) from None


def evaluate_combination(
    cross: CrossPerformance,
    configs: Sequence[str],
    merit: str | MeritFn = "har",
) -> Combination:
    """Score one specific set of available configurations."""
    name, fn = _resolve_merit(merit)
    chosen = assignment(cross, configs)
    return Combination(
        configs=tuple(configs),
        merit_name=name,
        merit=float(fn(cross, configs)),
        average=average_ipt(cross, configs),
        harmonic=harmonic_ipt(cross, configs),
        contention_weighted=contention_weighted_harmonic_ipt(cross, configs),
        assignment=tuple(sorted(chosen.items())),
    )


def _best_exact(
    cross: CrossPerformance, pool: tuple[str, ...], k: int, fn: MeritFn
) -> tuple[str, ...]:
    """The complete search: every k-subset, lexicographic, greater-wins."""
    best: tuple[float, tuple[str, ...]] | None = None
    for subset in combinations(pool, k):
        score = fn(cross, subset)
        if best is None or score > best[0] + 1e-12:
            best = (score, subset)
    assert best is not None
    return best[1]


def _best_beam(
    cross: CrossPerformance,
    pool: tuple[str, ...],
    k: int,
    fn: MeritFn,
    width: int,
) -> tuple[str, ...]:
    """Deterministic beam search over prefix-extended subsets.

    Level ``j`` holds (up to ``width``) partial subsets of size ``j`` as
    sorted index tuples; each is extended only by candidates *after* its
    last member, so every k-subset is reachable exactly once and the
    search degenerates to the exhaustive enumeration whenever no level
    overflows the beam.  Pruning keeps the top ``width`` partials by
    ``(-merit, subset)`` — a total order, so the outcome is independent
    of enumeration incidentals — and levels are re-sorted
    lexicographically so the final selection applies the exhaustive
    path's first-wins tie rule to an identically ordered stream.
    """
    level: list[tuple[int, ...]] = [()]
    scores: dict[tuple[int, ...], float] = {}
    for depth in range(k):
        remaining_after = k - depth - 1
        scored: list[tuple[float, tuple[int, ...]]] = []
        for partial in level:
            start = partial[-1] + 1 if partial else 0
            for i in range(start, len(pool) - remaining_after):
                subset = partial + (i,)
                names = tuple(pool[j] for j in subset)
                scored.append((fn(cross, names), subset))
        if len(scored) > width:
            scored.sort(key=lambda item: (-item[0], item[1]))
            scored = scored[:width]
        scores = {subset: score for score, subset in scored}
        level = sorted(scores)
    best: tuple[float, tuple[int, ...]] | None = None
    for subset in level:
        score = scores[subset]
        if best is None or score > best[0] + 1e-12:
            best = (score, subset)
    assert best is not None
    return tuple(pool[i] for i in best[1])


def best_combination(
    cross: CrossPerformance,
    k: int,
    merit: str | MeritFn = "har",
    candidates: Sequence[str] | None = None,
    mode: str = "auto",
    beam_width: int = DEFAULT_BEAM_WIDTH,
) -> Combination:
    """Search the best k-core combination under a merit.

    ``candidates`` restricts the configurations considered (used by the
    §5.3 subsetting experiment, where bzip's configuration is excluded);
    all workloads still contribute to the merit.

    ``mode`` guards against the C(n, k) blow-up of the paper's complete
    search: ``"exact"`` always enumerates every subset, ``"beam"``
    always runs the deterministic beam search (``beam_width`` partials
    kept per level), and ``"auto"`` (the default) enumerates exactly
    while the subset count stays within :data:`EXACT_SUBSET_LIMIT` and
    switches to the beam beyond it.  At paper scale the auto mode is
    always exact, so historical results are unchanged.
    """
    pool = tuple(candidates) if candidates is not None else cross.names
    if not 1 <= k <= len(pool):
        raise CommunalError(
            f"k={k} out of range for {len(pool)} candidate configurations"
        )
    if mode not in ("auto", "exact", "beam"):
        raise CommunalError(
            f"unknown combination search mode {mode!r}; known: auto, exact, beam"
        )
    if beam_width < 1:
        raise CommunalError(f"beam width must be >= 1, got {beam_width}")
    name, fn = _resolve_merit(merit)
    if mode == "auto":
        mode = "exact" if comb(len(pool), k) <= EXACT_SUBSET_LIMIT else "beam"
    if mode == "exact":
        winner = _best_exact(cross, pool, k, fn)
    else:
        winner = _best_beam(cross, pool, k, fn, beam_width)
    return evaluate_combination(cross, winner, merit)


def best_combinations_table(
    cross: CrossPerformance,
    ks: Sequence[int] = (1, 2, 3, 4),
    merits: Sequence[str] = ("avg", "har", "cw-har"),
) -> list[Combination]:
    """The full Table 6 sweep: best combination per (k, merit)."""
    rows = []
    for k in ks:
        for merit in merits:
            rows.append(best_combination(cross, k, merit))
    return rows


def per_workload_ipt(
    cross: CrossPerformance, configs: Sequence[str]
) -> dict[str, float]:
    """Figure 4's series: each workload's IPT on its best available core."""
    chosen = assignment(cross, configs)
    return {w: cross.ipt_on(w, chosen[w]) for w in cross.names}
