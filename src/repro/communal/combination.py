"""Exhaustive core-combination search — Table 6 and Figure 4.

"A complete search of all possible core-combinations" (§5.2): for a
target core count *k*, enumerate every k-subset of the customized
configurations and keep the subset maximizing the requested figure of
merit.  The paper ships a tool for exactly this inside the xp-scalar
framework; :func:`best_combination` is that tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError
from .merit import (
    MERITS,
    assignment,
    average_ipt,
    contention_weighted_harmonic_ipt,
    harmonic_ipt,
)

MeritFn = Callable[[CrossPerformance, Sequence[str]], float]


@dataclass(frozen=True)
class Combination:
    """One evaluated core combination."""

    configs: tuple[str, ...]
    merit_name: str
    merit: float
    average: float
    harmonic: float
    contention_weighted: float
    assignment: tuple[tuple[str, str], ...]  # (workload, chosen config)


def _resolve_merit(merit: str | MeritFn) -> tuple[str, MeritFn]:
    if callable(merit):
        return getattr(merit, "__name__", "custom"), merit
    try:
        return merit, MERITS[merit]  # type: ignore[return-value]
    except KeyError:
        raise CommunalError(
            f"unknown merit {merit!r}; known: {', '.join(MERITS)}"
        ) from None


def evaluate_combination(
    cross: CrossPerformance,
    configs: Sequence[str],
    merit: str | MeritFn = "har",
) -> Combination:
    """Score one specific set of available configurations."""
    name, fn = _resolve_merit(merit)
    chosen = assignment(cross, configs)
    return Combination(
        configs=tuple(configs),
        merit_name=name,
        merit=float(fn(cross, configs)),
        average=average_ipt(cross, configs),
        harmonic=harmonic_ipt(cross, configs),
        contention_weighted=contention_weighted_harmonic_ipt(cross, configs),
        assignment=tuple(sorted(chosen.items())),
    )


def best_combination(
    cross: CrossPerformance,
    k: int,
    merit: str | MeritFn = "har",
    candidates: Sequence[str] | None = None,
) -> Combination:
    """Exhaustively search the best k-core combination under a merit.

    ``candidates`` restricts the configurations considered (used by the
    §5.3 subsetting experiment, where bzip's configuration is excluded);
    all workloads still contribute to the merit.
    """
    pool = tuple(candidates) if candidates is not None else cross.names
    if not 1 <= k <= len(pool):
        raise CommunalError(
            f"k={k} out of range for {len(pool)} candidate configurations"
        )
    name, fn = _resolve_merit(merit)
    best: tuple[float, tuple[str, ...]] | None = None
    for subset in combinations(pool, k):
        score = fn(cross, subset)
        if best is None or score > best[0] + 1e-12:
            best = (score, subset)
    assert best is not None
    return evaluate_combination(cross, best[1], merit)


def best_combinations_table(
    cross: CrossPerformance,
    ks: Sequence[int] = (1, 2, 3, 4),
    merits: Sequence[str] = ("avg", "har", "cw-har"),
) -> list[Combination]:
    """The full Table 6 sweep: best combination per (k, merit)."""
    rows = []
    for k in ks:
        for merit in merits:
            rows.append(best_combination(cross, k, merit))
    return rows


def per_workload_ipt(
    cross: CrossPerformance, configs: Sequence[str]
) -> dict[str, float]:
    """Figure 4's series: each workload's IPT on its best available core."""
    chosen = assignment(cross, configs)
    return {w: cross.ipt_on(w, chosen[w]) for w in cross.names}
