"""Dendrograms — and why they mislead for surrogate assignment (§5.4).

"While the use of the dendrogram is customary in displaying subsetting
properties, its use for displaying the potential for surrogating ... can
potentially be misleading": once two clusters merge, a dendrogram forces
every member to share a representative, whereas the best surrogate for a
workload can change depending on which architectures remain available.

This module provides a full agglomerative dendrogram over any distance
matrix (average/single/complete linkage), cut extraction, ASCII
rendering, and :func:`surrogate_disagreement`, which quantifies the
paper's complaint: how often a workload's best surrogate (from the
cross-configuration matrix) lies *outside* its dendrogram cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError

Linkage = Literal["average", "single", "complete"]


@dataclass(frozen=True)
class Merge:
    """One agglomeration step."""

    left: int  # node id (leaf: 0..n-1; internal: n, n+1, ...)
    right: int
    height: float
    node: int  # id of the merged node


@dataclass(frozen=True)
class Dendrogram:
    """An agglomerative clustering tree over named leaves."""

    names: tuple[str, ...]
    merges: tuple[Merge, ...]
    linkage: str

    def cut(self, n_clusters: int) -> list[tuple[str, ...]]:
        """Clusters obtained by undoing the last ``n_clusters - 1`` merges."""
        n = len(self.names)
        if not 1 <= n_clusters <= n:
            raise CommunalError(f"n_clusters={n_clusters} out of range for {n} leaves")
        members: dict[int, list[int]] = {i: [i] for i in range(n)}
        for merge in self.merges[: n - n_clusters]:
            members[merge.node] = members.pop(merge.left) + members.pop(merge.right)
        return [
            tuple(self.names[i] for i in sorted(group))
            for group in sorted(members.values(), key=min)
        ]

    def render(self) -> str:
        """ASCII rendering: one line per merge with its height."""
        n = len(self.names)
        label: dict[int, str] = {i: self.names[i] for i in range(n)}
        lines = [f"dendrogram ({self.linkage} linkage)"]
        for merge in self.merges:
            joined = f"({label[merge.left]} + {label[merge.right]})"
            lines.append(
                f"  h={merge.height:6.3f}  {label[merge.left]}  +  {label[merge.right]}"
            )
            label[merge.node] = joined
        return "\n".join(lines)


def build_dendrogram(
    names: Sequence[str],
    distance: np.ndarray,
    linkage: Linkage = "average",
) -> Dendrogram:
    """Agglomerative clustering over a symmetric distance matrix."""
    n = len(names)
    distance = np.asarray(distance, dtype=float)
    if distance.shape != (n, n):
        raise CommunalError(
            f"distance matrix shape {distance.shape} does not match {n} names"
        )
    if n == 0:
        raise CommunalError("need at least one leaf")
    if linkage not in ("average", "single", "complete"):
        raise CommunalError(f"unknown linkage {linkage!r}")

    clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
    merges: list[Merge] = []
    next_id = n
    while len(clusters) > 1:
        best: tuple[float, int, int] | None = None
        ids = sorted(clusters)
        for ai in range(len(ids)):
            for bi in range(ai + 1, len(ids)):
                a, b = ids[ai], ids[bi]
                pairwise = [
                    distance[i, j] for i in clusters[a] for j in clusters[b]
                ]
                if linkage == "average":
                    d = float(np.mean(pairwise))
                elif linkage == "single":
                    d = float(np.min(pairwise))
                else:
                    d = float(np.max(pairwise))
                if best is None or d < best[0]:
                    best = (d, a, b)
        assert best is not None
        d, a, b = best
        clusters[next_id] = clusters.pop(a) + clusters.pop(b)
        merges.append(Merge(left=a, right=b, height=d, node=next_id))
        next_id += 1
    return Dendrogram(names=tuple(names), merges=tuple(merges), linkage=linkage)


@dataclass(frozen=True)
class SurrogateDisagreement:
    """How often dendrogram clusters contradict actual best surrogates."""

    n_clusters: int
    disagreements: tuple[tuple[str, str, str], ...]
    # (workload, best surrogate overall, its dendrogram cluster rep.)

    @property
    def count(self) -> int:
        return len(self.disagreements)


def surrogate_disagreement(
    cross: CrossPerformance,
    dendrogram: Dendrogram,
    n_clusters: int,
) -> SurrogateDisagreement:
    """Quantify §5.4's dendrogram critique.

    For each workload, compare its *actual* best surrogate architecture
    (smallest slowdown in the cross matrix) with the dendrogram's
    prescription (stay inside your cluster).  A disagreement is a
    workload whose best surrogate lives in another cluster.
    """
    clusters = dendrogram.cut(n_clusters)
    cluster_of = {m: c for c in clusters for m in c}
    slowdown = cross.slowdown_matrix()
    disagreements = []
    for i, name in enumerate(cross.names):
        row = slowdown[i].copy()
        row[i] = np.inf
        best = cross.names[int(np.argmin(row))]
        if best not in cluster_of[name] and len(cluster_of[name]) > 1:
            in_cluster = [m for m in cluster_of[name] if m != name]
            rep = min(in_cluster, key=lambda m: slowdown[i, cross.index(m)])
            disagreements.append((name, best, rep))
    return SurrogateDisagreement(
        n_clusters=n_clusters, disagreements=tuple(disagreements)
    )
