"""The two communal-customization approaches of Figure 3.

The paper contrasts two flows for finding the optimal core combination:

* **approach (a)** — *subset first*: select representative workloads by
  raw-characteristic similarity, then exhaustively search
  workload-architecture combinations only for the representatives
  (Kumar et al.'s flow; feasible because the set is small);
* **approach (b)** — *characterize configurationally first*: customize an
  architecture per workload, then reduce the set of architectures
  (xp-scalar's flow, Figure 3b — the paper's proposal).

:func:`subset_first_design` implements approach (a) end to end so the
two flows can be compared on equal footing: cluster the workloads, keep
one representative per cluster, customize cores only for the
representatives, and hand every workload the best of those cores.  The
crucial property (and the paper's point) is that non-representative
workloads never influence the design — their slowdown is whatever the
representatives' cores happen to give them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError
from ..explore.xpscalar import XpScalar
from ..uarch.config import CoreConfig
from ..workloads.profile import WorkloadProfile
from .merit import average_ipt, harmonic_ipt
from .subsetting import cluster_workloads


@dataclass(frozen=True)
class SubsetFirstDesign:
    """Outcome of the Figure 3(a) flow."""

    representatives: tuple[str, ...]
    clusters: tuple[tuple[str, ...], ...]
    configs: dict[str, CoreConfig]  # one per representative
    cross: CrossPerformance  # all workloads on the representative cores
    average: float
    harmonic: float


def subset_first_design(
    explorer: XpScalar,
    profiles: Sequence[WorkloadProfile],
    n_cores: int,
    seed: int = 0,
) -> SubsetFirstDesign:
    """Run approach (a): subset by raw characteristics, then customize.

    Returns the design plus its merits over the *full* workload
    population (each workload running on the best representative core).
    """
    if not 1 <= n_cores <= len(profiles):
        raise CommunalError(
            f"n_cores={n_cores} out of range for {len(profiles)} workloads"
        )
    clusters = cluster_workloads(profiles, n_clusters=n_cores)
    representatives = tuple(c.representative for c in clusters)
    by_name = {p.name: p for p in profiles}

    results = explorer.customize_all(
        [by_name[r] for r in representatives], seed=seed, cross_seed_rounds=1
    )
    configs = {r: results[r].config for r in representatives}

    # Evaluate the whole population on the representative cores: build a
    # cross matrix whose columns are the representative configurations
    # assigned to every workload's row.
    full_cross = _population_on_configs(explorer, profiles, configs)

    available = list(representatives)
    return SubsetFirstDesign(
        representatives=representatives,
        clusters=tuple(c.members for c in clusters),
        configs=configs,
        cross=full_cross,
        average=average_ipt(full_cross, available),
        harmonic=harmonic_ipt(full_cross, available),
    )


def _population_on_configs(
    explorer: XpScalar,
    profiles: Sequence[WorkloadProfile],
    configs: dict[str, CoreConfig],
) -> CrossPerformance:
    """A cross matrix of all workloads over an arbitrary config set.

    Workloads without their own configuration get a placeholder column
    equal to their best available core so the container's invariants
    (square, positive) hold; merits only ever query the real columns.
    """
    import numpy as np

    names = tuple(p.name for p in profiles)
    n = len(names)
    ipt = np.zeros((n, n))
    column_configs: list[CoreConfig] = []
    rep_names = list(configs)
    for j, name in enumerate(names):
        config = configs.get(name)
        if config is None:
            # Placeholder: this workload has no customized core under
            # approach (a); reuse the first representative's core.
            config = configs[rep_names[0]]
        column_configs.append(config)
    for i, profile in enumerate(profiles):
        for j in range(n):
            ipt[i, j] = explorer.score(profile, column_configs[j])
    return CrossPerformance(
        names=names,
        ipt=ipt,
        configs=tuple(column_configs),
        weights=tuple(p.weight for p in profiles),
    )


@dataclass(frozen=True)
class ApproachComparison:
    """Figure 3's two flows, same core count, same workload population."""

    n_cores: int
    subset_first_harmonic: float
    subset_first_cores: tuple[str, ...]
    configurational_harmonic: float
    configurational_cores: tuple[str, ...]

    @property
    def configurational_advantage(self) -> float:
        """Fractional harmonic-IPT gain of approach (b) over (a)."""
        return self.configurational_harmonic / self.subset_first_harmonic - 1.0


def compare_approaches(
    explorer: XpScalar,
    profiles: Sequence[WorkloadProfile],
    cross: CrossPerformance,
    n_cores: int,
    seed: int = 0,
) -> ApproachComparison:
    """Run approach (a) from scratch and compare with approach (b).

    ``cross`` must be the full configurational characterization (the
    Table 5 matrix) from which approach (b)'s complete search draws.
    """
    from .combination import best_combination

    subset = subset_first_design(explorer, profiles, n_cores, seed=seed)
    search = best_combination(cross, n_cores, "har")
    return ApproachComparison(
        n_cores=n_cores,
        subset_first_harmonic=subset.harmonic,
        subset_first_cores=subset.representatives,
        configurational_harmonic=search.harmonic,
        configurational_cores=search.configs,
    )
