"""Plackett-Burman bottleneck analysis — the Yi et al. subsetting baseline.

The paper's related work (§2.1) singles out the "statistically rigorous"
subsetting approach of Yi, Lilja & Hawkins [32] and its use for
benchmark subsetting [27]: run each workload on a two-level
Plackett-Burman design over the processor's parameters, rank the
parameters by the magnitude of their main effects (the workload's
*architectural bottlenecks*), and call workloads similar when they rank
bottlenecks similarly.  The paper argues this still assumes parameter
interactions are negligible, which the unified clock violates.

This module implements that baseline end to end so it can be compared
against configurational characterization:

* :func:`plackett_burman_design` — the standard cyclic PB construction
  (N runs for up to N-1 two-level factors, N a multiple of 4);
* :class:`PbFactor` — a design factor mapping the +/- levels onto
  concrete configuration edits;
* :func:`default_factors` — the eight classic factors (width, ROB, IQ,
  LSQ, L1/L2 capacity and latency, memory latency);
* :func:`bottleneck_effects` — per-workload main effects measured with
  the interval simulator;
* :func:`bottleneck_rank_distance` — the rank-based similarity matrix
  the subsetting methodology uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import CommunalError
from ..explore.xpscalar import XpScalar
from ..uarch.config import CacheGeometry, CoreConfig
from ..workloads.profile import WorkloadProfile

#: Seed row of the N=12 Plackett-Burman design (classic construction).
_PB12_SEED = (1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1)


def plackett_burman_design(n_factors: int) -> np.ndarray:
    """The N=12 cyclic Plackett-Burman design matrix, ±1 entries.

    Supports up to 11 factors (the classic 12-run design, enough for the
    paper-scale parameter set); rows are runs, columns are factors.
    """
    if not 1 <= n_factors <= 11:
        raise CommunalError(f"the 12-run PB design supports 1..11 factors, got {n_factors}")
    rows = []
    seed = list(_PB12_SEED)
    for shift in range(11):
        rows.append(seed[-shift:] + seed[:-shift])
    rows.append([-1] * 11)
    return np.array(rows, dtype=int)[:, :n_factors]


@dataclass(frozen=True)
class PbFactor:
    """One two-level design factor.

    ``apply(config, high)`` returns a copy of ``config`` with this factor
    set to its high (+1) or low (-1) level.
    """

    name: str
    apply: Callable[[CoreConfig, bool], CoreConfig]


def _set_l1(config: CoreConfig, high: bool) -> CoreConfig:
    geometry = (
        CacheGeometry(nsets=1024, assoc=2, block_bytes=64, latency_cycles=6)
        if high
        else CacheGeometry(nsets=128, assoc=2, block_bytes=64, latency_cycles=2)
    )
    return config.replace(l1=geometry)


def _set_l2(config: CoreConfig, high: bool) -> CoreConfig:
    geometry = (
        CacheGeometry(nsets=4096, assoc=4, block_bytes=128, latency_cycles=30)
        if high
        else CacheGeometry(nsets=1024, assoc=2, block_bytes=128, latency_cycles=14)
    )
    return config.replace(l2=geometry)


def default_factors() -> list[PbFactor]:
    """The classic PB factor set over the superscalar parameters."""
    return [
        PbFactor("width", lambda c, h: c.replace(width=6 if h else 2)),
        PbFactor("rob", lambda c, h: c.replace(rob_size=512 if h else 64,
                                               iq_size=min(c.iq_size, 512 if h else 64))),
        PbFactor("iq", lambda c, h: c.replace(iq_size=min(128 if h else 16, c.rob_size))),
        PbFactor("lsq", lambda c, h: c.replace(lsq_size=256 if h else 32)),
        PbFactor("l1", _set_l1),
        PbFactor("l2", _set_l2),
        PbFactor("wakeup", lambda c, h: c.replace(wakeup_latency=0 if h else 3)),
        PbFactor(
            "memory",
            lambda c, h: c.replace(memory_cycles=120 if h else 320),
        ),
    ]


@dataclass(frozen=True)
class BottleneckProfile:
    """One workload's PB main effects, ranked by magnitude."""

    workload: str
    factors: tuple[str, ...]
    effects: tuple[float, ...]  # signed main effect on IPT per factor

    def ranks(self) -> np.ndarray:
        """Rank of each factor by |effect| (1 = biggest bottleneck)."""
        order = np.argsort(-np.abs(np.array(self.effects)))
        ranks = np.empty(len(self.factors), dtype=int)
        ranks[order] = np.arange(1, len(self.factors) + 1)
        return ranks


def bottleneck_effects(
    explorer: XpScalar,
    profile: WorkloadProfile,
    base: CoreConfig,
    factors: Sequence[PbFactor] | None = None,
) -> BottleneckProfile:
    """Measure a workload's PB main effects around a base configuration.

    Each design run applies every factor at its assigned level (ignoring
    timing legality, as the original methodology does — the point is
    sensitivity, not feasibility) and evaluates IPT; the main effect of a
    factor is the mean IPT at its high level minus at its low level.
    """
    factors = list(factors) if factors is not None else default_factors()
    design = plackett_burman_design(len(factors))
    ipts = np.zeros(len(design))
    for r, row in enumerate(design):
        config = base
        for level, factor in zip(row, factors):
            config = factor.apply(config, level > 0)
        ipts[r] = explorer.simulator.evaluate(profile, config).ipt
    effects = tuple(
        float(ipts[design[:, f] > 0].mean() - ipts[design[:, f] < 0].mean())
        for f in range(len(factors))
    )
    return BottleneckProfile(
        workload=profile.name,
        factors=tuple(f.name for f in factors),
        effects=effects,
    )


def bottleneck_rank_distance(
    profiles: Sequence[BottleneckProfile],
) -> np.ndarray:
    """Pairwise distance between workloads' bottleneck rankings.

    The Yi et al. similarity criterion: workloads with the same ranked
    bottlenecks are candidates for subsetting.  Distance is the mean
    absolute rank difference across factors.
    """
    if not profiles:
        raise CommunalError("need at least one bottleneck profile")
    factor_sets = {p.factors for p in profiles}
    if len(factor_sets) != 1:
        raise CommunalError("bottleneck profiles use different factor sets")
    ranks = np.array([p.ranks() for p in profiles], dtype=float)
    diff = np.abs(ranks[:, None, :] - ranks[None, :, :]).mean(axis=2)
    return diff
