"""Greedy surrogate assignment — the paper's §5.4 and Figures 5-8.

A *surrogate* assignment gives workload A the customized architecture of
workload B (B's architecture "serves" A).  Repeatedly assigning the
cheapest surrogate (smallest importance-weighted slowdown) reduces the
set of distinct architectures; the paper studies three policies for how
assignments may propagate:

* **non-propagation** (Figure 6) — a workload whose architecture already
  serves someone may not itself be surrogated, and a surrogated workload
  's architecture may not serve anyone.  The process stalls before
  reaching small core counts.
* **forward propagation** (Figure 8) — a provider may later be
  surrogated itself; its dependents follow transitively to the new root.
* **full propagation** (Figure 7, forward + backward) — additionally, a
  surrogated workload's architecture may be chosen as a surrogate for a
  third workload, which effectively routes that workload to the
  provider's root.

*Feedback surrogating* (§5.4.2) arises under propagation: the greedy
choice for workload *i* may be an architecture whose chain resolves back
to *i* itself.  Such assignments cannot reduce the architecture count;
they are recorded as feedback events and the pair is blocked, which is
what ultimately stops the propagation policies before a single
configuration remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError


class Propagation(Enum):
    """Surrogate-propagation policy (Figure 5's design axes)."""

    NONE = "none"
    FORWARD = "forward"
    FULL = "full"


@dataclass(frozen=True)
class SurrogateEdge:
    """One greedy assignment step.

    ``provider`` is the workload whose architecture was nominally chosen;
    ``effective_root`` is the architecture actually executed after
    resolving propagation chains (equal to ``provider`` except under
    backward propagation).
    """

    order: int
    consumer: str
    provider: str
    effective_root: str
    slowdown: float


@dataclass(frozen=True)
class FeedbackEvent:
    """A blocked assignment whose chain resolved back to the consumer."""

    consumer: str
    provider: str


@dataclass
class SurrogateGraph:
    """Outcome of a greedy surrogate-assignment run."""

    policy: Propagation
    edges: list[SurrogateEdge]
    roots: tuple[str, ...]
    groups: dict[str, tuple[str, ...]]  # root -> members (incl. root)
    feedback_events: list[FeedbackEvent] = field(default_factory=list)
    stalled: bool = False

    @property
    def assignment(self) -> dict[str, str]:
        """Workload -> architecture root actually used."""
        mapping = {}
        for root, members in self.groups.items():
            for m in members:
                mapping[m] = root
        return mapping


def greedy_surrogates(
    cross: CrossPerformance,
    policy: Propagation = Propagation.FORWARD,
    target_roots: int = 1,
) -> SurrogateGraph:
    """Run the greedy surrogate assignment down to ``target_roots`` roots.

    Stops earlier when the policy stalls (non-propagation) or when every
    remaining cheapest option is a feedback assignment.
    """
    if target_roots < 1:
        raise CommunalError(f"target_roots must be >= 1: {target_roots}")
    names = list(cross.names)
    slowdown = cross.slowdown_matrix()
    weights = np.array(cross.weights)

    parent: dict[str, str] = {}
    consumers: set[str] = set()
    providers: set[str] = set()
    blocked: set[tuple[str, str]] = set()
    edges: list[SurrogateEdge] = []
    feedback: list[FeedbackEvent] = []
    stalled = False

    def root_of(w: str) -> str:
        while w in parent:
            w = parent[w]
        return w

    def live_roots() -> set[str]:
        return {root_of(w) for w in names}

    order = 0
    while len(live_roots()) > target_roots:
        best: tuple[float, str, str, str] | None = None
        feedback_best: tuple[str, str] | None = None
        for i in names:
            if i in consumers:
                continue
            if policy is Propagation.NONE and i in providers:
                continue
            wi = weights[cross.index(i)]
            for j in names:
                if j == i or (i, j) in blocked:
                    continue
                if j in consumers and policy is not Propagation.FULL:
                    continue
                effective = root_of(j) if policy is not Propagation.NONE else j
                if effective == i:
                    if feedback_best is None:
                        feedback_best = (i, j)
                    continue
                cost = wi * slowdown[cross.index(i), cross.index(effective)]
                if best is None or cost < best[0]:
                    best = (cost, i, j, effective)

        if best is None:
            if feedback_best is not None:
                feedback.append(FeedbackEvent(*feedback_best))
                blocked.add(feedback_best)
                continue
            stalled = True
            break

        cost, i, j, effective = best
        order += 1
        parent[i] = effective
        consumers.add(i)
        providers.add(effective)
        edges.append(
            SurrogateEdge(
                order=order,
                consumer=i,
                provider=j,
                effective_root=effective,
                slowdown=float(
                    slowdown[cross.index(i), cross.index(effective)]
                ),
            )
        )

    roots = tuple(sorted(live_roots()))
    groups: dict[str, list[str]] = {r: [] for r in roots}
    for w in names:
        groups[root_of(w)].append(w)
    return SurrogateGraph(
        policy=policy,
        edges=edges,
        roots=roots,
        groups={r: tuple(ms) for r, ms in groups.items()},
        feedback_events=feedback,
        stalled=stalled,
    )


def surrogate_merits(
    cross: CrossPerformance, graph: SurrogateGraph
) -> dict[str, float]:
    """Merits of the surviving architectures, with the graph's assignment.

    Unlike :func:`repro.communal.merit.assignment` (which lets every
    workload pick its favourite available core), the surrogate graph
    *fixes* who runs where — the paper's Figures 6-8 report performance
    under the greedy assignment itself.
    """
    mapping = graph.assignment
    weights = np.array(cross.weights)
    ipts = np.array(
        [cross.ipt_on(w, mapping[w]) for w in cross.names], dtype=float
    )
    own = np.array([cross.own_ipt(w) for w in cross.names])
    return {
        "average_ipt": float((ipts * weights).sum() / weights.sum()),
        "harmonic_ipt": float(weights.sum() / (weights / ipts).sum()),
        "average_slowdown": float(
            (((own - ipts) / own) * weights).sum() / weights.sum()
        ),
    }
