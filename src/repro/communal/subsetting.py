"""Workload subsetting on raw characteristics — the baseline under attack.

Classic subsetting (§2.1, [27, 29, 30]) clusters workloads by Euclidean
distance between their (normalized) microarchitecture-independent
characteristic vectors and keeps one representative per cluster.  The
paper's §5.3 shows that doing this before communal customization hurts:
bzip and gzip — the literature's canonical "similar pair" — have very
different customized architectures, and dropping bzip in favour of gzip
changes (and degrades) the chosen dual-core combination.

This module provides:

* agglomerative (average-linkage) clustering over characteristic
  vectors, the standard dendrogram-style subsetting procedure;
* representative selection (the member closest to its cluster centroid);
* :func:`subsetting_experiment`, the §5.3 protocol: re-run the best-
  combination search with one workload's configuration replaced by its
  subsetting representative's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..characterize.cross import CrossPerformance
from ..errors import CommunalError
from ..workloads.characteristics import (
    euclidean_distance_matrix,
    normalize_matrix,
    profile_characteristics,
)
from ..workloads.profile import WorkloadProfile
from .combination import Combination, best_combination


@dataclass(frozen=True)
class Cluster:
    """One subsetting cluster with its chosen representative."""

    members: tuple[str, ...]
    representative: str


def characteristics_matrix(profiles: Sequence[WorkloadProfile]) -> np.ndarray:
    """Normalized raw-characteristic vectors (rows follow ``profiles``)."""
    if not profiles:
        raise CommunalError("need at least one profile")
    raw = np.array([profile_characteristics(p).as_vector() for p in profiles])
    return normalize_matrix(raw)


def raw_distance_matrix(profiles: Sequence[WorkloadProfile]) -> np.ndarray:
    """Pairwise Euclidean distances between normalized raw characteristics."""
    return euclidean_distance_matrix(characteristics_matrix(profiles))


def cluster_workloads(
    profiles: Sequence[WorkloadProfile], n_clusters: int
) -> list[Cluster]:
    """Average-linkage agglomerative clustering down to ``n_clusters``.

    Representatives are the members nearest their cluster centroid (in
    normalized characteristic space), the usual subsetting convention.
    """
    n = len(profiles)
    if not 1 <= n_clusters <= n:
        raise CommunalError(f"n_clusters={n_clusters} out of range for {n} profiles")
    vectors = characteristics_matrix(profiles)
    names = [p.name for p in profiles]

    clusters: list[list[int]] = [[i] for i in range(n)]
    while len(clusters) > n_clusters:
        best: tuple[float, int, int] | None = None
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                # Average linkage: mean pairwise distance between clusters.
                d = float(
                    np.mean(
                        [
                            np.linalg.norm(vectors[i] - vectors[j])
                            for i in clusters[a]
                            for j in clusters[b]
                        ]
                    )
                )
                if best is None or d < best[0]:
                    best = (d, a, b)
        assert best is not None
        _, a, b = best
        clusters[a].extend(clusters[b])
        del clusters[b]

    result = []
    for members in clusters:
        centroid = vectors[members].mean(axis=0)
        rep = min(members, key=lambda i: float(np.linalg.norm(vectors[i] - centroid)))
        result.append(
            Cluster(
                members=tuple(names[i] for i in sorted(members)),
                representative=names[rep],
            )
        )
    return result


def closest_pairs(
    profiles: Sequence[WorkloadProfile], top: int = 3
) -> list[tuple[str, str, float]]:
    """The most similar workload pairs by raw characteristics."""
    dist = raw_distance_matrix(profiles)
    names = [p.name for p in profiles]
    pairs = [
        (names[i], names[j], float(dist[i, j]))
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]
    return sorted(pairs, key=lambda t: t[2])[:top]


@dataclass(frozen=True)
class SubsettingExperiment:
    """Outcome of the §5.3 protocol for one (dropped, representative) pair."""

    dropped: str
    representative: str
    full_search: Combination
    reduced_search: Combination
    merit_loss: float  # fractional loss of the reduced vs full search


def subsetting_experiment(
    cross: CrossPerformance,
    dropped: str,
    representative: str,
    k: int = 2,
    merit: str = "har",
) -> SubsettingExperiment:
    """Re-run the best-combination search with one workload subsetted away.

    The dropped workload's *configuration* leaves the candidate pool (its
    representative stands in for it during design), but the workload
    itself still runs on the resulting system — exactly the failure mode
    the paper demonstrates with bzip/gzip.
    """
    cross.index(dropped)
    cross.index(representative)
    if dropped == representative:
        raise CommunalError("a workload cannot represent itself in this experiment")
    full = best_combination(cross, k, merit)
    candidates = [n for n in cross.names if n != dropped]
    reduced = best_combination(cross, k, merit, candidates=candidates)
    loss = 1.0 - reduced.merit / full.merit
    return SubsettingExperiment(
        dropped=dropped,
        representative=representative,
        full_search=full,
        reduced_search=reduced,
        merit_loss=loss,
    )
