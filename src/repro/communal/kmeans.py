"""K-means over configuration vectors — the Lee & Brooks baseline (§2.2).

Lee & Brooks [37] cluster the *customized architectures* themselves with
K-means and hand each benchmark the centroid nearest its customized
architecture as a compromise.  The paper calls this approach "ad hoc in
that its outcome is highly dependent on how the different architectural
parameters are normalized and weighed" — but it is the closest prior
work, so we implement it as a comparison baseline: cluster the
configuration vectors, then map each centroid back to the nearest actual
customized configuration (centroids themselves are generally not legal
design points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..characterize.configurational import ConfigurationalCharacteristics
from ..errors import CommunalError


@dataclass(frozen=True)
class KMeansResult:
    """Clustering of workloads by customized-configuration similarity."""

    clusters: tuple[tuple[str, ...], ...]
    representatives: tuple[str, ...]  # nearest real config per centroid
    assignment: Mapping[str, str]  # workload -> representative config
    inertia: float


def _normalized_vectors(
    characteristics: Mapping[str, ConfigurationalCharacteristics],
    names: Sequence[str],
) -> np.ndarray:
    vectors = np.array([characteristics[n].as_vector() for n in names])
    lo, hi = vectors.min(axis=0), vectors.max(axis=0)
    span = np.where(hi - lo > 1e-12, hi - lo, 1.0)
    return (vectors - lo) / span


def kmeans_configurations(
    characteristics: Mapping[str, ConfigurationalCharacteristics],
    k: int,
    seed: int = 0,
    iterations: int = 100,
) -> KMeansResult:
    """Cluster customized configurations into ``k`` compromise groups."""
    names = sorted(characteristics)
    n = len(names)
    if not 1 <= k <= n:
        raise CommunalError(f"k={k} out of range for {n} configurations")
    vectors = _normalized_vectors(characteristics, names)
    rng = np.random.default_rng(seed)

    # k-means++ style seeding for stability.
    centroids = [vectors[int(rng.integers(0, n))]]
    while len(centroids) < k:
        d2 = np.min(
            [np.sum((vectors - c) ** 2, axis=1) for c in centroids], axis=0
        )
        if d2.sum() <= 0:
            centroids.append(vectors[int(rng.integers(0, n))])
            continue
        probs = d2 / d2.sum()
        centroids.append(vectors[int(rng.choice(n, p=probs))])
    centers = np.array(centroids)

    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = np.linalg.norm(vectors[:, None, :] - centers[None, :, :], axis=2)
        new_labels = dists.argmin(axis=1)
        if (new_labels == labels).all() and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = vectors[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)

    clusters: list[tuple[str, ...]] = []
    representatives: list[str] = []
    assignment: dict[str, str] = {}
    for c in range(k):
        member_idx = [i for i in range(n) if labels[i] == c]
        if not member_idx:
            continue
        rep_i = min(
            member_idx, key=lambda i: float(np.linalg.norm(vectors[i] - centers[c]))
        )
        rep = names[rep_i]
        clusters.append(tuple(names[i] for i in member_idx))
        representatives.append(rep)
        for i in member_idx:
            assignment[names[i]] = rep

    inertia = float(
        sum(
            np.linalg.norm(vectors[i] - centers[labels[i]]) ** 2
            for i in range(n)
        )
    )
    return KMeansResult(
        clusters=tuple(clusters),
        representatives=tuple(representatives),
        assignment=assignment,
        inertia=inertia,
    )
