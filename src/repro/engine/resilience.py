"""Retry, timeout and integrity policy for the evaluation engine.

The process pool in :mod:`repro.engine.pool` gives the exploration
speed; this module gives it *survival*.  A production-scale run — the
ROADMAP's "three weeks of annealing, millions of evaluations" regime —
will see workers die, tasks wedge, and on-disk state rot.  None of
those should abort the run, and none of them may change its results.

Three pieces:

* :class:`RetryPolicy` — per-task timeout, bounded exponential backoff
  with *deterministic* seeded jitter (a replayed run waits the same
  milliseconds), a retry budget, and a pool-restart budget after which
  the engine degrades gracefully to serial execution;
* :func:`validate_result` — integrity checking of every simulator
  result before it is accepted into the cache (a worker returning a
  wrong-shaped or mislabelled result is treated as a failure, not a
  value);
* :func:`quarantine_file` — the shared "move it aside and carry on"
  primitive the cache and checkpoint tiers use for corrupt files.

Because the simulator itself is deterministic, a retried evaluation
returns exactly the value the failed attempt would have: retries,
timeouts, pool restarts and serial degradation are all invisible in the
output — ``jobs=4`` under heavy fault injection is bit-identical to a
clean ``jobs=1`` run (the fault-matrix suite asserts this).
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from pathlib import Path

from ..errors import EngineError
from ..sim.metrics import SimResult
from .faults import InjectedCrash, InjectedFault
from .keys import unit_draw


class ResultIntegrityError(EngineError):
    """A simulator returned a result that fails integrity validation."""


def failure_reason(exc: BaseException) -> str:
    """Classify one retryable failure for event payloads and journals.

    The taxonomy lives here, next to the retry policy that consumes it,
    so every emitter (pool retries, serial retries, telemetry) labels
    the same exception the same way: ``crash`` (worker died), ``hang``
    (injected stall), ``integrity`` (result failed validation),
    ``timeout`` (per-task deadline), ``pool`` (anything else the pool
    surfaced).
    """
    if isinstance(exc, InjectedCrash):
        return "crash"
    if isinstance(exc, InjectedFault):
        return "hang"
    if isinstance(exc, ResultIntegrityError):
        return "integrity"
    if isinstance(exc, FuturesTimeout):
        return "timeout"
    return "pool"


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats failing evaluations.

    Parameters
    ----------
    max_retries:
        Retries per task beyond the first attempt; exhausting them
        raises :class:`~repro.errors.EngineError`.
    timeout_s:
        Per-task deadline when running under the worker pool; ``None``
        (the default) waits forever.  A timed-out task marks the pool
        suspect (a wedged worker cannot be preempted), so the pool is
        restarted and the task retried.
    backoff_base_s, backoff_factor, backoff_max_s:
        Bounded exponential backoff: retry ``n`` waits
        ``min(base * factor**(n-1), max)`` seconds before re-running.
    jitter:
        Fractional jitter band around the backoff delay (0.25 means
        +/-25%), drawn deterministically from ``(seed, key, attempt)``
        so replayed runs sleep identically.
    seed:
        Seed of the jitter draws.
    pool_restarts:
        Worker-pool rebuilds tolerated (after crashes or timeouts)
        before the engine degrades to serial execution for the rest of
        its life.
    """

    max_retries: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.02
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0
    pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise EngineError(f"max_retries cannot be negative: {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise EngineError(f"timeout_s must be positive: {self.timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise EngineError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise EngineError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise EngineError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.pool_restarts < 0:
            raise EngineError(f"pool_restarts cannot be negative: {self.pool_restarts}")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of evaluation ``key``.

        Deterministic: the exponential ramp is clamped to
        ``backoff_max_s`` and scaled by a jitter factor in
        ``[1 - jitter, 1 + jitter]`` drawn from SHA-256 of
        ``(seed, key, attempt)`` — no global RNG state is consumed.
        """
        if attempt < 1:
            return 0.0
        raw = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if raw <= 0.0:
            return 0.0
        unit = unit_draw("backoff", self.seed, key, attempt)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


def validate_result(profile, result: SimResult) -> SimResult:
    """Accept ``result`` as the evaluation of ``profile`` or raise.

    Catches the corruption modes a sick worker (or an injected
    ``wrong_result`` fault) can produce: a result labelled for a
    different workload, or non-finite/non-positive performance numbers.
    Raises :class:`ResultIntegrityError` (retryable) on any violation.
    """
    if not isinstance(result, SimResult):
        raise ResultIntegrityError(
            f"evaluation returned {type(result).__name__}, not SimResult"
        )
    name = getattr(profile, "name", None)
    if name is not None and result.workload != name:
        raise ResultIntegrityError(
            f"result for workload {result.workload!r} returned for {name!r}"
        )
    for label, value in (
        ("instructions", result.instructions),
        ("cycles", result.cycles),
        ("clock_period_ns", result.clock_period_ns),
    ):
        if not math.isfinite(value) or value <= 0:
            raise ResultIntegrityError(f"result has invalid {label}: {value}")
    return result


#: Circuit breaker states.
CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a deterministic cool-down.

    Network-facing tiers (the ``http:`` cache backend, the replica
    client) must not hammer a dead peer with full retry budgets on every
    operation.  The breaker tracks consecutive failures; at
    ``failure_threshold`` it *opens* and :meth:`allow` answers False —
    callers skip the remote and serve their degraded path — until the
    cool-down elapses.  The first call after the cool-down transitions
    to *half-open* and is allowed through as a probe: success closes the
    circuit, failure re-opens it with the cool-down scaled by
    ``cooldown_factor`` (bounded by ``cooldown_max_s``).  Every delay is
    a pure function of the failure history — no randomness — so a
    replayed fault sequence produces the identical open/half-open/close
    transition sequence (the chaos suite asserts this).

    Thread-safe; all transitions are appended to :attr:`transitions`
    (``{"from", "to", "reason", "at"}``) for telemetry and tests, and
    monotonic counters live in :attr:`counters`
    (``opened``/``closed``/``probes``/``rejected``).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 2.0,
        cooldown_factor: float = 2.0,
        cooldown_max_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise EngineError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if cooldown_s < 0 or cooldown_max_s < 0:
            raise EngineError("cool-down delays cannot be negative")
        if cooldown_factor < 1.0:
            raise EngineError(f"cooldown_factor must be >= 1: {cooldown_factor}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_factor = cooldown_factor
        self.cooldown_max_s = cooldown_max_s
        self._clock = clock
        self._lock = threading.Lock()
        self.state = CIRCUIT_CLOSED
        self.consecutive_failures = 0
        self.opened_count = 0  # consecutive opens (resets on close)
        self._opened_at = 0.0
        self.transitions: list[dict] = []
        self.counters = {"opened": 0, "closed": 0, "probes": 0, "rejected": 0}

    def _transition(self, state: str, reason: str) -> None:
        self.transitions.append(
            {
                "from": self.state,
                "to": state,
                "reason": reason,
                "at": round(self._clock(), 6),
            }
        )
        self.state = state

    def current_cooldown_s(self) -> float:
        """The cool-down of the current open period (deterministic ramp)."""
        scale = self.cooldown_factor ** max(self.opened_count - 1, 0)
        return min(self.cooldown_s * scale, self.cooldown_max_s)

    def allow(self) -> bool:
        """Whether the next remote call may proceed.

        Closed: always.  Open: only once the cool-down has elapsed, in
        which case the circuit moves to half-open and this call is the
        probe.  Half-open: the probe is already in flight — callers
        short-circuit to their degraded path.
        """
        with self._lock:
            if self.state == CIRCUIT_CLOSED:
                return True
            if self.state == CIRCUIT_OPEN:
                if self._clock() - self._opened_at >= self.current_cooldown_s():
                    self._transition(CIRCUIT_HALF_OPEN, "cool-down elapsed")
                    self.counters["probes"] += 1
                    return True
                self.counters["rejected"] += 1
                return False
            # half-open: exactly one probe at a time
            self.counters["rejected"] += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            if self.state != CIRCUIT_CLOSED:
                self._transition(CIRCUIT_CLOSED, "probe succeeded")
                self.counters["closed"] += 1
                self.opened_count = 0

    def record_failure(self, reason: str = "remote call failed") -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state == CIRCUIT_HALF_OPEN or (
                self.state == CIRCUIT_CLOSED
                and self.consecutive_failures >= self.failure_threshold
            ):
                self.opened_count += 1
                self._opened_at = self._clock()
                self._transition(CIRCUIT_OPEN, reason)
                self.counters["opened"] += 1

    def snapshot(self) -> dict:
        """State + counters for telemetry payloads."""
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "transitions": len(self.transitions),
                **self.counters,
            }


def quarantine_file(path: str | Path) -> Path:
    """Move a corrupt file aside (``<name>.corrupt``) and return the new path.

    Overwrites any previous quarantine of the same file — the latest
    corruption is the interesting one — and tolerates the file vanishing
    underneath us (another process may have quarantined it first).
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except FileNotFoundError:
        pass
    return target
