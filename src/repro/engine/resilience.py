"""Retry, timeout and integrity policy for the evaluation engine.

The process pool in :mod:`repro.engine.pool` gives the exploration
speed; this module gives it *survival*.  A production-scale run — the
ROADMAP's "three weeks of annealing, millions of evaluations" regime —
will see workers die, tasks wedge, and on-disk state rot.  None of
those should abort the run, and none of them may change its results.

Three pieces:

* :class:`RetryPolicy` — per-task timeout, bounded exponential backoff
  with *deterministic* seeded jitter (a replayed run waits the same
  milliseconds), a retry budget, and a pool-restart budget after which
  the engine degrades gracefully to serial execution;
* :func:`validate_result` — integrity checking of every simulator
  result before it is accepted into the cache (a worker returning a
  wrong-shaped or mislabelled result is treated as a failure, not a
  value);
* :func:`quarantine_file` — the shared "move it aside and carry on"
  primitive the cache and checkpoint tiers use for corrupt files.

Because the simulator itself is deterministic, a retried evaluation
returns exactly the value the failed attempt would have: retries,
timeouts, pool restarts and serial degradation are all invisible in the
output — ``jobs=4`` under heavy fault injection is bit-identical to a
clean ``jobs=1`` run (the fault-matrix suite asserts this).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from pathlib import Path

from ..errors import EngineError
from ..sim.metrics import SimResult
from .faults import InjectedCrash, InjectedFault
from .keys import unit_draw


class ResultIntegrityError(EngineError):
    """A simulator returned a result that fails integrity validation."""


def failure_reason(exc: BaseException) -> str:
    """Classify one retryable failure for event payloads and journals.

    The taxonomy lives here, next to the retry policy that consumes it,
    so every emitter (pool retries, serial retries, telemetry) labels
    the same exception the same way: ``crash`` (worker died), ``hang``
    (injected stall), ``integrity`` (result failed validation),
    ``timeout`` (per-task deadline), ``pool`` (anything else the pool
    surfaced).
    """
    if isinstance(exc, InjectedCrash):
        return "crash"
    if isinstance(exc, InjectedFault):
        return "hang"
    if isinstance(exc, ResultIntegrityError):
        return "integrity"
    if isinstance(exc, FuturesTimeout):
        return "timeout"
    return "pool"


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats failing evaluations.

    Parameters
    ----------
    max_retries:
        Retries per task beyond the first attempt; exhausting them
        raises :class:`~repro.errors.EngineError`.
    timeout_s:
        Per-task deadline when running under the worker pool; ``None``
        (the default) waits forever.  A timed-out task marks the pool
        suspect (a wedged worker cannot be preempted), so the pool is
        restarted and the task retried.
    backoff_base_s, backoff_factor, backoff_max_s:
        Bounded exponential backoff: retry ``n`` waits
        ``min(base * factor**(n-1), max)`` seconds before re-running.
    jitter:
        Fractional jitter band around the backoff delay (0.25 means
        +/-25%), drawn deterministically from ``(seed, key, attempt)``
        so replayed runs sleep identically.
    seed:
        Seed of the jitter draws.
    pool_restarts:
        Worker-pool rebuilds tolerated (after crashes or timeouts)
        before the engine degrades to serial execution for the rest of
        its life.
    """

    max_retries: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.02
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0
    pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise EngineError(f"max_retries cannot be negative: {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise EngineError(f"timeout_s must be positive: {self.timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise EngineError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise EngineError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise EngineError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.pool_restarts < 0:
            raise EngineError(f"pool_restarts cannot be negative: {self.pool_restarts}")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of evaluation ``key``.

        Deterministic: the exponential ramp is clamped to
        ``backoff_max_s`` and scaled by a jitter factor in
        ``[1 - jitter, 1 + jitter]`` drawn from SHA-256 of
        ``(seed, key, attempt)`` — no global RNG state is consumed.
        """
        if attempt < 1:
            return 0.0
        raw = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if raw <= 0.0:
            return 0.0
        unit = unit_draw("backoff", self.seed, key, attempt)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


def validate_result(profile, result: SimResult) -> SimResult:
    """Accept ``result`` as the evaluation of ``profile`` or raise.

    Catches the corruption modes a sick worker (or an injected
    ``wrong_result`` fault) can produce: a result labelled for a
    different workload, or non-finite/non-positive performance numbers.
    Raises :class:`ResultIntegrityError` (retryable) on any violation.
    """
    if not isinstance(result, SimResult):
        raise ResultIntegrityError(
            f"evaluation returned {type(result).__name__}, not SimResult"
        )
    name = getattr(profile, "name", None)
    if name is not None and result.workload != name:
        raise ResultIntegrityError(
            f"result for workload {result.workload!r} returned for {name!r}"
        )
    for label, value in (
        ("instructions", result.instructions),
        ("cycles", result.cycles),
        ("clock_period_ns", result.clock_period_ns),
    ):
        if not math.isfinite(value) or value <= 0:
            raise ResultIntegrityError(f"result has invalid {label}: {value}")
    return result


def quarantine_file(path: str | Path) -> Path:
    """Move a corrupt file aside (``<name>.corrupt``) and return the new path.

    Overwrites any previous quarantine of the same file — the latest
    corruption is the interesting one — and tolerates the file vanishing
    underneath us (another process may have quarantined it first).
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except FileNotFoundError:
        pass
    return target
