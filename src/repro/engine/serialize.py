"""JSON-able encoding of simulation inputs and outputs.

The on-disk result cache and the checkpoint files both store plain JSON,
so the core value types — :class:`~repro.sim.metrics.SimResult` (with its
:class:`~repro.sim.metrics.CpiStack`) and
:class:`~repro.uarch.config.CoreConfig` (with its
:class:`~repro.uarch.config.CacheGeometry`) — need faithful round-trip
encoders.  Floats survive exactly (JSON carries full ``repr`` precision),
so a decoded :class:`SimResult` reports bit-identical IPT.

Every payload carries a ``"__kind__"`` tag and the encoding version;
:func:`simresult_from_jsonable` / :func:`config_from_jsonable` refuse
payloads they do not recognize rather than guessing.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import EngineError
from ..sim.metrics import CpiStack, SimResult
from ..uarch.config import CacheGeometry, CoreConfig

#: Bump when the serialized shape changes incompatibly.
FORMAT_VERSION = 1


def _require(payload: Mapping[str, Any], kind: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise EngineError(f"expected a mapping for {kind}, got {type(payload).__name__}")
    if payload.get("__kind__") != kind:
        raise EngineError(f"payload is not a serialized {kind}: {payload.get('__kind__')!r}")
    if payload.get("__version__") != FORMAT_VERSION:
        raise EngineError(
            f"unsupported {kind} format version {payload.get('__version__')!r}"
        )
    return payload


# ----------------------------------------------------------------------
# CoreConfig
# ----------------------------------------------------------------------


def _geometry_to_jsonable(geometry: CacheGeometry) -> dict[str, Any]:
    return {
        "nsets": geometry.nsets,
        "assoc": geometry.assoc,
        "block_bytes": geometry.block_bytes,
        "latency_cycles": geometry.latency_cycles,
    }


def config_to_jsonable(config: CoreConfig) -> dict[str, Any]:
    """Encode a :class:`CoreConfig` as plain JSON types."""
    return {
        "__kind__": "CoreConfig",
        "__version__": FORMAT_VERSION,
        "clock_period_ns": config.clock_period_ns,
        "width": config.width,
        "rob_size": config.rob_size,
        "iq_size": config.iq_size,
        "lsq_size": config.lsq_size,
        "wakeup_latency": config.wakeup_latency,
        "scheduler_depth": config.scheduler_depth,
        "lsq_depth": config.lsq_depth,
        "frontend_stages": config.frontend_stages,
        "memory_cycles": config.memory_cycles,
        "l1": _geometry_to_jsonable(config.l1),
        "l2": _geometry_to_jsonable(config.l2),
        "core_type": config.core_type,
    }


def config_from_jsonable(payload: Mapping[str, Any]) -> CoreConfig:
    """Decode a :func:`config_to_jsonable` payload (validation re-runs)."""
    data = dict(_require(payload, "CoreConfig"))
    data.pop("__kind__")
    data.pop("__version__")
    try:
        data["l1"] = CacheGeometry(**data["l1"])
        data["l2"] = CacheGeometry(**data["l2"])
        return CoreConfig(**data)
    except (KeyError, TypeError) as exc:
        raise EngineError(f"malformed CoreConfig payload: {exc}") from exc


# ----------------------------------------------------------------------
# SimResult
# ----------------------------------------------------------------------


def simresult_to_jsonable(result: SimResult) -> dict[str, Any]:
    """Encode a :class:`SimResult` (including its CPI stack and detail)."""
    stack = result.cpi_stack
    return {
        "__kind__": "SimResult",
        "__version__": FORMAT_VERSION,
        "workload": result.workload,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "clock_period_ns": result.clock_period_ns,
        "cpi_stack": None
        if stack is None
        else {
            "base": stack.base,
            "branch": stack.branch,
            "l2_access": stack.l2_access,
            "memory": stack.memory,
        },
        "detail": dict(result.detail),
    }


def simresult_from_jsonable(payload: Mapping[str, Any]) -> SimResult:
    """Decode a :func:`simresult_to_jsonable` payload bit-exactly."""
    data = _require(payload, "SimResult")
    stack_data = data.get("cpi_stack")
    try:
        return SimResult(
            workload=data["workload"],
            instructions=data["instructions"],
            cycles=data["cycles"],
            clock_period_ns=data["clock_period_ns"],
            cpi_stack=None if stack_data is None else CpiStack(**stack_data),
            detail=dict(data.get("detail", {})),
        )
    except (KeyError, TypeError) as exc:
        raise EngineError(f"malformed SimResult payload: {exc}") from exc
