"""Pluggable persistent backends for the result cache.

:class:`~repro.engine.cache.ResultCache` used to *be* its SQLite tier;
this module splits the storage policy out into a :class:`CacheBackend`
interface so N pool workers and M service replicas can share one result
store — the seam a networked backend plugs into later.  Three
implementations ship:

* :class:`MemoryBackend` — a plain dict; the explicit spelling of
  "no persistence" (``memory``);
* :class:`SQLiteBackend` — the historical SQLite file, now safe for
  concurrent multi-process access: WAL journaling, a ``busy_timeout``,
  and retry-on-``SQLITE_BUSY`` so a database locked by a sibling
  process degrades to a *wait* instead of losing the disk tier
  (``sqlite:<file>``);
* :class:`DirectoryBackend` — one file per key under a fan-out
  directory, written atomically (write-temp + rename), so concurrent
  writers on any shared filesystem never tear each other's entries
  (``file:<dir>``).

Backends speak rows of ``(value, checksum)`` strings; integrity
checking, parsing and the memory LRU stay in :class:`ResultCache`,
which owns *policy* while backends own *storage*.  Backends report
trouble through two exception flavours the cache maps onto its existing
degrade/quarantine split:

* :class:`CacheUnavailable` — storage is sick (disk full, read-only,
  still locked after the busy budget): the store's file is intact, the
  cache should drop the tier and continue memory-only;
* :class:`CacheCorruption` — the store itself is damaged: the cache
  should quarantine it (move it aside) and continue memory-only.

New backends register with :func:`register_backend` and are constructed
from a ``scheme:location`` spec via :func:`make_backend` (the
``--cache-backend`` CLI flag).
"""

from __future__ import annotations

import abc
import contextlib
import http.client
import json
import os
import socket
import sqlite3
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, ClassVar, Iterator
from urllib.parse import quote, urlsplit

from ..errors import EngineError
from .resilience import CircuitBreaker, RetryPolicy, quarantine_file
from .telemetry import TRACEPARENT_HEADER, current_trace

#: One stored row: the serialized payload and its (optional) checksum.
Row = "tuple[str, str | None]"


class CacheBackendError(EngineError):
    """A cache backend failed (see the two subclasses for how to react)."""


class CacheUnavailable(CacheBackendError):
    """Storage went away (full/read-only/locked-out); the store file is
    intact — degrade to memory-only, do not quarantine."""


class CacheCorruption(CacheBackendError):
    """The store itself is damaged — quarantine it and continue."""


#: Error-message fragments that mean "storage unavailable", not
#: "database corrupt" — these must never quarantine a healthy file.
STORAGE_MESSAGES = (
    "disk is full",
    "database or disk is full",
    "readonly database",
    "read-only",
    "disk i/o error",
    "unable to open database",
)

#: Error-message fragments that mean "locked by a sibling" — retryable.
BUSY_MESSAGES = ("database is locked", "database is busy", "database table is locked")


class CacheBackend(abc.ABC):
    """One persistent key/value store behind a :class:`ResultCache`.

    Subclasses set ``scheme`` (the ``make_backend`` spelling) and
    ``persistent`` (False only for the memory backend), and implement
    the row operations.  All methods may raise :class:`CacheUnavailable`
    or :class:`CacheCorruption`; they must never raise anything else on
    storage trouble.
    """

    scheme: ClassVar[str] = "?"
    persistent: ClassVar[bool] = True

    #: Where the store lives on disk (``None`` for memory).
    location: Path | None = None

    @classmethod
    @abc.abstractmethod
    def from_spec(cls, location: str) -> "CacheBackend":
        """Construct from the part of the spec after ``scheme:``."""

    @abc.abstractmethod
    def get(self, key: str) -> tuple[str, str | None] | None:
        """The stored ``(value, checksum)`` row for ``key``, or ``None``."""

    @abc.abstractmethod
    def put(self, key: str, value: str, checksum: str | None) -> None:
        """Store one row (last write wins)."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove one row (no-op when absent)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored rows."""

    @abc.abstractmethod
    def __contains__(self, key: str) -> bool: ...

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every row."""

    def keys(self) -> Iterator[str]:  # pragma: no cover - optional
        raise NotImplementedError

    def flush(self) -> None:
        """Make every accepted write visible to other readers."""

    def close(self) -> None:
        """Flush and release any handles (idempotent)."""

    def quarantine(self) -> None:
        """Move the damaged store aside (``<name>.corrupt``) and close."""
        self.close()
        if self.location is not None:
            quarantine_file(self.location)

    def describe(self) -> str:
        target = str(self.location) if self.location is not None else "-"
        return f"{self.scheme}:{target}"


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

_BACKENDS: dict[str, type[CacheBackend]] = {}


def register_backend(cls: type[CacheBackend]) -> type[CacheBackend]:
    """Class decorator: make ``cls`` constructible via :func:`make_backend`."""
    scheme = cls.scheme
    if not scheme or scheme == "?":
        raise EngineError(f"backend {cls.__name__} must set a scheme")
    existing = _BACKENDS.get(scheme)
    if existing is not None and existing is not cls:
        raise EngineError(
            f"cache backend scheme {scheme!r} already registered by "
            f"{existing.__name__}"
        )
    _BACKENDS[scheme] = cls
    return cls


def backend_names() -> list[str]:
    """Every registered backend scheme, in registration order."""
    return list(_BACKENDS)


def make_backend(spec: str | Path) -> CacheBackend:
    """Construct a backend from a ``scheme:location`` spec.

    ``memory`` needs no location; ``sqlite:<file>`` and ``file:<dir>``
    do.  A bare path (no scheme) is read as ``sqlite:<path>`` — the
    historical meaning of a cache file.
    """
    spec = str(spec)
    scheme, sep, location = spec.partition(":")
    if not sep:
        if scheme in _BACKENDS:
            scheme, location = spec, ""
        else:
            scheme, location = "sqlite", spec
    cls = _BACKENDS.get(scheme)
    if cls is None:
        raise EngineError(
            f"unknown cache backend {scheme!r}; known: {', '.join(_BACKENDS)}"
        )
    return cls.from_spec(location)


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------


@register_backend
class MemoryBackend(CacheBackend):
    """A plain in-process dict — the explicit "no persistence" backend.

    Useful to *name* the no-disk configuration in ``--cache-backend``
    specs and to anchor the conformance suite's baseline semantics.
    """

    scheme = "memory"
    persistent = False

    def __init__(self) -> None:
        self._rows: dict[str, tuple[str, str | None]] = {}

    @classmethod
    def from_spec(cls, location: str) -> "MemoryBackend":
        if location:
            raise EngineError("the memory backend takes no location")
        return cls()

    def get(self, key: str) -> tuple[str, str | None] | None:
        return self._rows.get(key)

    def put(self, key: str, value: str, checksum: str | None) -> None:
        self._rows[key] = (value, checksum)

    def delete(self, key: str) -> None:
        self._rows.pop(key, None)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def keys(self) -> Iterator[str]:
        return iter(list(self._rows))

    def clear(self) -> None:
        self._rows.clear()


# ----------------------------------------------------------------------
# sqlite (WAL, busy-tolerant, process-safe)
# ----------------------------------------------------------------------


@register_backend
class SQLiteBackend(CacheBackend):
    """The SQLite result store, safe for concurrent siblings.

    * ``journal_mode=WAL`` — readers never block the writer and vice
      versa, so N workers and M service replicas share one file;
    * ``busy_timeout`` — a locked database makes SQLite *wait* (up to
      ``busy_timeout_s``) instead of failing immediately;
    * retry-on-busy — a lock that outlives the timeout is retried with
      a short sleep up to ``busy_retries`` times, and only then raised
      as :class:`CacheUnavailable` (degrade, never quarantine: a busy
      database is a healthy database);
    * per-write commits (WAL + ``synchronous=NORMAL`` keeps them cheap)
      so a row stored by one replica is immediately visible to others.

    Connections are created with ``check_same_thread=False`` and every
    operation holds an internal lock, so one backend instance may be
    driven from the service's job threads.
    """

    scheme = "sqlite"
    persistent = True

    def __init__(
        self,
        path: str | Path,
        busy_timeout_s: float = 5.0,
        busy_retries: int = 3,
    ) -> None:
        self.location = Path(path)
        self.busy_timeout_s = busy_timeout_s
        self.busy_retries = busy_retries
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self.location.parent.mkdir(parents=True, exist_ok=True)
        self._connect()

    @classmethod
    def from_spec(cls, location: str) -> "SQLiteBackend":
        if not location:
            raise EngineError("the sqlite backend needs a file path: sqlite:<file>")
        return cls(location)

    # -- connection -----------------------------------------------------

    def _connect(self) -> None:
        try:
            conn = sqlite3.connect(
                self.location,
                timeout=self.busy_timeout_s,
                check_same_thread=False,
            )
            conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL, checksum TEXT)"
            )
            # Databases written before checksumming existed lack the
            # column; add it in place (their rows verify as legacy).
            columns = {row[1] for row in conn.execute("PRAGMA table_info(results)")}
            if "checksum" not in columns:
                conn.execute("ALTER TABLE results ADD COLUMN checksum TEXT")
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise self._classify(exc, "open") from exc
        self._conn = conn

    def _classify(self, exc: sqlite3.DatabaseError, action: str) -> CacheBackendError:
        message = str(exc).lower()
        if any(fragment in message for fragment in BUSY_MESSAGES):
            return CacheUnavailable(
                f"database still locked after {self.busy_timeout_s:.1f}s "
                f"busy timeout and {self.busy_retries} retries on {action} ({exc})"
            )
        if any(fragment in message for fragment in STORAGE_MESSAGES):
            return CacheUnavailable(f"database {action} failed ({exc})")
        return CacheCorruption(f"database error on {action} ({exc})")

    def _is_busy(self, exc: sqlite3.DatabaseError) -> bool:
        message = str(exc).lower()
        return any(fragment in message for fragment in BUSY_MESSAGES)

    def _execute(self, action: str, sql: str, params: tuple = (), commit: bool = False):
        """Run one statement under the lock, retrying SQLITE_BUSY.

        ``busy_timeout`` already makes SQLite wait; the retry loop on
        top covers locks that outlive it (a sibling mid-bulk-write).
        Exhausting the budget raises :class:`CacheUnavailable` — the
        file is healthy, just contended.
        """
        if self._conn is None:
            raise CacheUnavailable("backend is closed")
        with self._lock:
            for attempt in range(self.busy_retries + 1):
                try:
                    cursor = self._conn.execute(sql, params)
                    if commit:
                        self._conn.commit()
                    return cursor
                except sqlite3.DatabaseError as exc:
                    if self._is_busy(exc) and attempt < self.busy_retries:
                        time.sleep(0.05 * (attempt + 1))
                        continue
                    raise self._classify(exc, action) from exc

    # -- rows -----------------------------------------------------------

    def get(self, key: str) -> tuple[str, str | None] | None:
        row = self._execute(
            "read", "SELECT value, checksum FROM results WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else (row[0], row[1])

    def put(self, key: str, value: str, checksum: str | None) -> None:
        self._execute(
            "write",
            "INSERT OR REPLACE INTO results (key, value, checksum) VALUES (?, ?, ?)",
            (key, value, checksum),
            commit=True,
        )

    def delete(self, key: str) -> None:
        self._execute(
            "delete", "DELETE FROM results WHERE key = ?", (key,), commit=True
        )

    def __len__(self) -> int:
        (count,) = self._execute("count", "SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def __contains__(self, key: str) -> bool:
        row = self._execute(
            "read", "SELECT 1 FROM results WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def keys(self) -> Iterator[str]:
        rows = self._execute("read", "SELECT key FROM results ORDER BY key").fetchall()
        return iter([row[0] for row in rows])

    def clear(self) -> None:
        self._execute("clear", "DELETE FROM results", commit=True)

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        if self._conn is None:
            return
        with self._lock:
            try:
                self._conn.commit()
            except sqlite3.DatabaseError as exc:
                raise self._classify(exc, "commit") from exc

    def close(self) -> None:
        with self._lock:
            conn, self._conn = self._conn, None
            if conn is not None:
                try:
                    conn.commit()
                    conn.close()
                except sqlite3.Error:
                    try:
                        conn.close()
                    except sqlite3.Error:
                        pass


# ----------------------------------------------------------------------
# directory of files
# ----------------------------------------------------------------------


@register_backend
class DirectoryBackend(CacheBackend):
    """One file per key under a two-level fan-out directory.

    The simplest *shared* store: entries are written atomically
    (write-temp + ``os.replace`` in the same directory), so concurrent
    writers — even across machines on a shared filesystem — can never
    tear each other's rows; the worst case is the last writer winning,
    which is harmless for a content-addressed cache.  No fsync per
    entry: a crash may lose the newest rows, and every row is
    recomputable by definition.

    File format: first line the checksum (``-`` for none), second line
    the key, the rest the payload verbatim.  Storing the key inside the
    entry matters because filenames are *sanitized* keys — two hostile
    keys can collide on one filename, and the header lets ``get``
    detect that it found somebody else's row instead of serving it.
    """

    scheme = "file"
    persistent = True

    def __init__(self, root: str | Path) -> None:
        self.location = Path(root)
        self.location.mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_spec(cls, location: str) -> "DirectoryBackend":
        if not location:
            raise EngineError("the file backend needs a directory: file:<dir>")
        return cls(location)

    def _path(self, key: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
        fan = safe[:2] if len(safe) >= 2 else "__"
        return self.location / fan / f"{safe}.entry"

    @staticmethod
    def _parse(raw: str) -> tuple[str, str, str | None] | None:
        """``(key, value, checksum)`` from an entry body, None if torn."""
        head, sep_head, rest = raw.partition("\n")
        stored_key, sep_key, value = rest.partition("\n")
        if not sep_head or not sep_key:
            return None
        return (stored_key, value, None if head == "-" else head)

    def get(self, key: str) -> tuple[str, str | None] | None:
        try:
            raw = self._path(key).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CacheUnavailable(f"entry read failed ({exc})") from exc
        parsed = self._parse(raw)
        if parsed is None:
            # A torn/foreign entry: surface it as a row whose checksum
            # cannot verify, so the cache quarantines just this entry.
            return (raw, "<malformed-entry>")
        stored_key, value, checksum = parsed
        if stored_key != key:
            # Filename collision after sanitizing: this is somebody
            # else's row.  A miss is correct; serving it would not be.
            return None
        return (value, checksum)

    def put(self, key: str, value: str, checksum: str | None) -> None:
        target = self._path(key)
        # pid AND thread id: service job threads share a process, and a
        # shared tmp name would let one thread replace away another's.
        tmp = target.with_name(
            f"{target.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(f"{checksum or '-'}\n{key}\n{value}", encoding="utf-8")
            os.replace(tmp, target)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise CacheUnavailable(f"entry write failed ({exc})") from exc

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink(missing_ok=True)
        except OSError as exc:
            raise CacheUnavailable(f"entry delete failed ({exc})") from exc

    def _entries(self) -> list[Path]:
        try:
            return [
                p
                for fan in sorted(self.location.iterdir())
                if fan.is_dir()
                for p in sorted(fan.iterdir())
                if p.suffix == ".entry"
            ]
        except OSError as exc:
            raise CacheUnavailable(f"store listing failed ({exc})") from exc

    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> Iterator[str]:
        found = []
        for path in self._entries():
            try:
                parsed = self._parse(path.read_text(encoding="utf-8"))
            except OSError as exc:
                raise CacheUnavailable(f"entry read failed ({exc})") from exc
            if parsed is not None:  # torn entries have no recoverable key
                found.append(parsed[0])
        return iter(found)

    def clear(self) -> None:
        for path in self._entries():
            try:
                path.unlink(missing_ok=True)
            except OSError as exc:
                raise CacheUnavailable(f"entry delete failed ({exc})") from exc

    def quarantine(self) -> None:
        """Move the whole store directory aside (``<dir>.corrupt``)."""
        self.close()
        if self.location is None or not self.location.exists():
            return
        target = self.location.with_name(self.location.name + ".corrupt")
        try:
            if target.exists():
                import shutil

                shutil.rmtree(target, ignore_errors=True)
            os.replace(self.location, target)
        except OSError:
            pass


# ----------------------------------------------------------------------
# network store (a replica's /v1/cache API)
# ----------------------------------------------------------------------


class _RemoteUnavailable(Exception):
    """Internal: the remote store cannot be reached right now.

    Never escapes :class:`HttpBackend` — the backend degrades to its
    local tier instead of surfacing network weather to the cache.
    """


@register_backend
class HttpBackend(CacheBackend):
    """A result store served by another replica's ``/v1/cache`` API.

    The networked leg of the registry seam: ``http://host:port`` (an
    optional path prefix is honoured) turns any ``repro serve`` replica
    into a shared result store for every engine that points at it.
    Unlike the file-backed backends, the network itself is a failure
    domain, so every remote call is defended in depth:

    * per-call connect/read **timeouts** (``timeout_s``);
    * transient failures (connection refused/reset, torn or truncated
      responses, injected 5xx, ``Retry-After``-carrying 429/503) are
      retried through the engine's :class:`RetryPolicy` with the same
      deterministic seeded backoff the pool uses — a replayed run sleeps
      the same milliseconds;
    * a :class:`CircuitBreaker` opens after ``failure_threshold``
      consecutive failed attempts; while open, remote calls are skipped
      entirely until the deterministic cool-down elapses, then one
      half-open probe decides whether to close it;
    * on sustained failure the backend **degrades to a local
      read-through/write-behind tier** instead of raising: reads serve
      from an LRU of rows seen while the network was up (anything else
      is an honest miss — the engine re-simulates, bit-identically),
      writes queue locally and are **replayed in order** when the
      circuit closes again.  The cache above never sees network
      weather, preserving the degrade-vs-quarantine taxonomy: only a
      server that *reports its own store corrupt* raises
      :class:`CacheCorruption`, and only a server that answers but is
      not a cache server (4xx) raises :class:`CacheUnavailable`.
    """

    scheme = "http"
    persistent = True

    #: LRU bound of the local read-through tier.
    DEFAULT_LOCAL_ENTRIES = 8192
    #: Write-behind queue bound; beyond it the oldest queued *put* is
    #: dropped (content-addressed rows are recomputable by definition).
    DEFAULT_MAX_PENDING = 10_000

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 5.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        max_local_entries: int = DEFAULT_LOCAL_ENTRIES,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise EngineError(
                f"the http backend needs a URL like http://host:port, "
                f"got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.base_path = split.path.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy(
            max_retries=3, backoff_base_s=0.05, backoff_max_s=1.0
        )
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, cooldown_s=1.0
        )
        self.location = None
        self._lock = threading.RLock()
        self._local: OrderedDict[str, tuple[str, str | None]] = OrderedDict()
        self.max_local_entries = max_local_entries
        self._pending: list[tuple] = []  # ("put", k, v, c) | ("delete", k) | ("clear",)
        self.max_pending = max_pending
        self._replaying = False
        self._closed = False
        self.stats = {
            "remote_calls": 0,
            "retries": 0,
            "failures": 0,
            "degraded_reads": 0,
            "deferred_writes": 0,
            "replayed_writes": 0,
            "dropped_writes": 0,
        }

    @classmethod
    def from_spec(cls, location: str) -> "HttpBackend":
        # make_backend splits on the first ":", so the location arrives
        # as "//host:port[/prefix]" (or bare "host:port").
        if not location:
            raise EngineError("the http backend needs a URL: http://host:port")
        url = f"http:{location}" if location.startswith("//") else f"http://{location}"
        return cls(url)

    # -- wire plumbing --------------------------------------------------

    def _key_path(self, key: str) -> str:
        return f"{self.base_path}/v1/cache/{quote(key, safe='')}"

    def _http(self, method: str, path: str, payload: Any = None):
        """One HTTP exchange; returns ``(status, headers, decoded-json)``.

        Raises ``_RemoteUnavailable`` on anything transient: connection
        trouble, timeouts, torn responses, undecodable JSON where JSON
        was promised.  DNS failure (a bad hostname is configuration,
        not weather) and non-transient responses pass through to the
        caller's classification.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            # Propagate the ambient trace (the job span running this
            # engine) so the store service can journal this call under
            # the same fleet-wide trace id.
            trace = current_trace()
            if trace is not None:
                headers[TRACEPARENT_HEADER] = trace.header()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except socket.gaierror as exc:
                raise CacheUnavailable(
                    f"cannot resolve cache server host {self.host!r} ({exc})"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise _RemoteUnavailable(f"{method} {path}: {exc}") from exc
            if (
                response.status != 204
                and response.getheader("Content-Length") is None
                and not response.getheader("Transfer-Encoding")
            ):
                # The cache API always declares Content-Length; a
                # response without it is a head torn mid-headers
                # (http.client parses EOF as end-of-headers) — weather,
                # never an empty body.
                raise _RemoteUnavailable(f"{method} {path}: torn response head")
            decoded = None
            if raw:
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except ValueError as exc:
                    content_type = response.getheader("Content-Type", "")
                    if "json" in content_type:
                        # A 200 with torn JSON is a transport fault
                        # (truncation mid-body), never store state.
                        raise _RemoteUnavailable(
                            f"{method} {path}: torn JSON body"
                        ) from exc
            return response.status, dict(response.getheaders()), decoded
        finally:
            conn.close()

    def _call(
        self,
        method: str,
        path: str,
        payload: Any = None,
        expect: tuple[int, ...] = (200, 204),
        miss_status: int | None = None,
    ):
        """One remote operation under retry + circuit-breaker discipline.

        Returns the decoded body (or ``_MISS`` for ``miss_status``).
        Raises ``_RemoteUnavailable`` when the network loses (the caller
        degrades), :class:`CacheCorruption` when the server reports its
        store corrupt, :class:`CacheUnavailable` on misconfiguration.
        """
        if self._closed:
            raise CacheUnavailable("backend is closed")
        last_error: Exception | None = None
        for attempt in range(self.retry.max_retries + 1):
            if not self.breaker.allow():
                raise _RemoteUnavailable("circuit open")
            self.stats["remote_calls"] += 1
            try:
                status, headers, decoded = self._http(method, path, payload)
            except _RemoteUnavailable as exc:
                last_error = exc
                self.stats["failures"] += 1
                self.breaker.record_failure(str(exc))
            else:
                if status in expect:
                    self.breaker.record_success()
                    self._maybe_replay()
                    return decoded
                if miss_status is not None and status == miss_status:
                    self.breaker.record_success()
                    self._maybe_replay()
                    return _MISS
                if isinstance(decoded, dict) and decoded.get("corruption"):
                    # The *server's* store is damaged — real corruption,
                    # propagated so the cache can quarantine its tier.
                    raise CacheCorruption(
                        f"cache server reports corrupt store: "
                        f"{decoded.get('error', status)}"
                    )
                if status in (429, 503, 500, 502, 504):
                    # Overload / injected 5xx: transient.  Honour
                    # Retry-After as a floor on the deterministic delay.
                    last_error = _RemoteUnavailable(f"{method} {path} -> {status}")
                    self.stats["failures"] += 1
                    self.breaker.record_failure(f"status {status}")
                    retry_after = _parse_retry_after(headers)
                    if attempt < self.retry.max_retries:
                        delay = max(
                            self.retry.delay_s(path, attempt + 1), retry_after
                        )
                        self.stats["retries"] += 1
                        time.sleep(min(delay, self.retry.backoff_max_s))
                        continue
                    break
                # Anything else (404 on an unexpected route, 400, 405):
                # the server answered but is not serving a cache API —
                # misconfiguration, fail fast without burning retries.
                raise CacheUnavailable(
                    f"cache server rejected {method} {path} with {status}"
                )
            if attempt < self.retry.max_retries:
                self.stats["retries"] += 1
                time.sleep(self.retry.delay_s(path, attempt + 1))
        raise _RemoteUnavailable(str(last_error or "remote store unreachable"))

    # -- the local read-through/write-behind tier -----------------------

    def _local_remember(self, key: str, row: "tuple[str, str | None]") -> None:
        with self._lock:
            self._local[key] = row
            self._local.move_to_end(key)
            if self.max_local_entries and len(self._local) > self.max_local_entries:
                self._local.popitem(last=False)

    def _defer(self, op: tuple) -> None:
        with self._lock:
            self._pending.append(op)
            self.stats["deferred_writes"] += 1
            if len(self._pending) > self.max_pending:
                self._pending.pop(0)
                self.stats["dropped_writes"] += 1

    def _maybe_replay(self) -> None:
        """Flush the write-behind queue after the network healed.

        Runs at most once at a time; replays strictly in order so
        last-write-wins semantics match what an always-connected client
        would have produced.  A failure mid-replay re-queues the
        remainder and goes back to degraded mode.
        """
        with self._lock:
            if self._replaying or not self._pending:
                return
            self._replaying = True
            pending, self._pending = self._pending, []
        try:
            while pending:
                op = pending[0]
                try:
                    if op[0] == "put":
                        self._call(
                            "PUT",
                            self._key_path(op[1]),
                            {"value": op[2], "checksum": op[3]},
                            expect=(200, 204),
                        )
                    elif op[0] == "delete":
                        self._call(
                            "DELETE", self._key_path(op[1]), expect=(200, 204)
                        )
                    elif op[0] == "clear":
                        self._call(
                            "DELETE", f"{self.base_path}/v1/cache", expect=(200, 204)
                        )
                except _RemoteUnavailable:
                    with self._lock:
                        self._pending = pending + self._pending
                    return
                pending.pop(0)
                self.stats["replayed_writes"] += 1
        finally:
            with self._lock:
                self._replaying = False

    # -- rows -----------------------------------------------------------

    def get(self, key: str) -> tuple[str, str | None] | None:
        try:
            decoded = self._call(
                "GET", self._key_path(key), expect=(200,), miss_status=404
            )
        except _RemoteUnavailable:
            with self._lock:
                row = self._local.get(key)
                if row is not None:
                    self._local.move_to_end(key)
                    self.stats["degraded_reads"] += 1
            return row
        if decoded is _MISS:
            return None
        if not isinstance(decoded, dict) or "value" not in decoded:
            raise CacheUnavailable(
                f"cache server returned a malformed row for {key[:16]!r}"
            )
        row = (str(decoded["value"]), decoded.get("checksum"))
        self._local_remember(key, row)
        return row

    def put(self, key: str, value: str, checksum: str | None) -> None:
        self._local_remember(key, (value, checksum))
        try:
            self._call(
                "PUT",
                self._key_path(key),
                {"value": value, "checksum": checksum},
                expect=(200, 204),
            )
        except _RemoteUnavailable:
            self._defer(("put", key, value, checksum))

    def delete(self, key: str) -> None:
        with self._lock:
            self._local.pop(key, None)
        try:
            self._call("DELETE", self._key_path(key), expect=(200, 204))
        except _RemoteUnavailable:
            self._defer(("delete", key))

    def __len__(self) -> int:
        try:
            decoded = self._call(
                "GET", f"{self.base_path}/v1/cache", expect=(200,)
            )
        except _RemoteUnavailable:
            with self._lock:
                return len(self._local)
        return int(decoded.get("count", 0)) if isinstance(decoded, dict) else 0

    def __contains__(self, key: str) -> bool:
        try:
            decoded = self._call(
                "GET", self._key_path(key), expect=(200,), miss_status=404
            )
        except _RemoteUnavailable:
            with self._lock:
                return key in self._local
        return decoded is not _MISS

    def keys(self) -> Iterator[str]:
        try:
            decoded = self._call(
                "GET", f"{self.base_path}/v1/cache", expect=(200,)
            )
        except _RemoteUnavailable:
            with self._lock:
                return iter(list(self._local))
        listed = decoded.get("keys", []) if isinstance(decoded, dict) else []
        return iter([str(k) for k in listed])

    def clear(self) -> None:
        with self._lock:
            self._local.clear()
            self._pending.clear()
        try:
            self._call("DELETE", f"{self.base_path}/v1/cache", expect=(200, 204))
        except _RemoteUnavailable:
            self._defer(("clear",))

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Best-effort replay of queued write-behind operations."""
        if self._closed:
            return
        self._maybe_replay()

    def close(self) -> None:
        if self._closed:
            return
        with contextlib.suppress(Exception):
            self.flush()
        self._closed = True

    def describe(self) -> str:
        return f"http://{self.host}:{self.port}{self.base_path}"

    def stats_snapshot(self) -> dict:
        """Backend counters merged with the circuit's state/counters."""
        with self._lock:
            pending = len(self._pending)
            local = len(self._local)
        return {
            **self.stats,
            "pending_writes": pending,
            "local_entries": local,
            "circuit": self.breaker.snapshot(),
        }


#: Sentinel distinguishing "row absent" (a 404) from "no body".
_MISS = object()


def _parse_retry_after(headers: dict) -> float:
    """Seconds asked for by a ``Retry-After`` header (0.0 when absent)."""
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return max(float(value), 0.0)
            except ValueError:
                return 0.0
    return 0.0
