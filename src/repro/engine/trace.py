"""Post-hoc trace analysis: read a run journal, answer "where did the time go".

The write side lives in :mod:`repro.engine.telemetry` (the
:class:`~repro.engine.telemetry.RunJournal`); this module is the read
side, backing the ``repro trace`` CLI:

* :func:`read_events` — stream a journal (current file plus rotated
  predecessors, torn lines skipped) as dicts;
* :func:`summarize` / :class:`TraceSummary` — per-phase wall-time
  totals, evaluation/cache counters, per-workload search breakdowns,
  resume-attempt accounting and sequence-number integrity;
* :func:`slowest_tasks` — the top-N slowest evaluations/tasks by
  worker-measured latency;
* :func:`critical_path` — the chain of nested spans that dominated the
  run's wall clock;
* :func:`chrome_trace` — export to Chrome/Perfetto trace-event JSON
  (load in ``chrome://tracing`` or https://ui.perfetto.dev).

Everything here is read-only and tolerant: a journal truncated by a
crash, or mid-write at copy time, still analyzes — bad lines are
counted, not fatal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..errors import ReproError
from .telemetry import JOURNAL_FILE, journal_files


class TraceError(ReproError):
    """A journal could not be located or yielded no events."""


#: The event vocabulary the structural readers understand.  Journals
#: written by newer layers (the serve fleet's ``replica_failover``,
#: circuit-breaker transitions, ...) may carry kinds outside this set;
#: readers skip those with a *counted* warning instead of misparsing.
KNOWN_EVENTS = frozenset(
    {
        "evaluation",
        "cache_hit",
        "cache_miss",
        "batch",
        "retry",
        "task_timeout",
        "pool_restart",
        "checkpoint",
        "fallback",
        "phase_start",
        "phase_end",
        "span_start",
        "span_end",
        "task_span",
        "search_run",
        "strategy_timing",
        "pareto_front",
        "quarantine",
        "storage_degraded",
        "lock_takeover",
        # serve-layer vocabulary (PR 6+): understood as instants/spans.
        "job_start",
        "job_end",
        "cache_call",
        "replica_failover",
        "circuit_open",
        "circuit_close",
        "circuit_half_open",
    }
)


def resolve_journal(target: str | Path) -> Path:
    """Map a run directory or journal path to the journal file itself."""
    target = Path(target)
    if target.is_dir():
        candidate = target / JOURNAL_FILE
        if not candidate.exists() and not journal_files(candidate):
            raise TraceError(
                f"{target} has no {JOURNAL_FILE}; was the run started with "
                "--run-dir or --journal? (see docs/observability.md)"
            )
        return candidate
    if not target.exists() and not journal_files(target):
        raise TraceError(f"no journal at {target}")
    return target


def read_events(target: str | Path) -> Iterator[dict]:
    """Stream every parsable event of a journal, oldest first.

    ``target`` may be a run directory, the current journal file, or any
    rotated segment's base name.  Unparsable lines (torn by a crash) are
    skipped silently — :func:`summarize` counts them via sequence gaps.
    """
    journal = resolve_journal(target)
    for file_path in journal_files(journal):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and "event" in record:
                        yield record
        except OSError:
            continue


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------


@dataclass
class SearchTrace:
    """Aggregate of one workload's ``search_run`` events."""

    workload: str
    runs: int = 0
    evaluations: int = 0
    moves: int = 0
    best_score: float = 0.0
    strategies: set[str] = field(default_factory=set)


@dataclass
class TraceSummary:
    """Everything ``repro trace summary`` prints, structured."""

    events: int = 0
    first_ts: float | None = None
    last_ts: float | None = None
    attempts: int = 0  # distinct trace ids == run attempts (resumes + 1)
    seq_first: int | None = None
    seq_last: int | None = None
    monotonic: bool = True
    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    checkpoints: int = 0
    fallbacks: int = 0
    task_spans: int = 0
    task_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    searches: dict[str, SearchTrace] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    unknown_events: dict[str, int] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return max(self.last_ts - self.first_ts, 0.0)

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "seq_first": self.seq_first,
            "seq_last": self.seq_last,
            "monotonic": self.monotonic,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "batches": self.batches,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "checkpoints": self.checkpoints,
            "fallbacks": self.fallbacks,
            "task_spans": self.task_spans,
            "task_seconds": self.task_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "searches": {
                name: {
                    "runs": s.runs,
                    "evaluations": s.evaluations,
                    "moves": s.moves,
                    "best_score": s.best_score,
                    "strategies": sorted(s.strategies),
                }
                for name, s in self.searches.items()
            },
            "event_counts": dict(self.counts),
            "unknown_events": dict(self.unknown_events),
        }

    def render(self) -> str:
        lines = [
            f"events: {self.events} over {self.wall_seconds:.2f}s wall "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''}, "
            f"seq {self.seq_first}..{self.seq_last}, "
            f"{'monotonic' if self.monotonic else 'NON-MONOTONIC'})",
            f"evaluations: {self.evaluations} simulated, "
            f"{self.cache_hits} cache hits "
            f"({self.hit_rate * 100:.1f}% hit rate), {self.batches} batches",
        ]
        if self.task_spans:
            lines.append(
                f"worker tasks: {self.task_spans} spans, "
                f"{self.task_seconds:.2f}s in-worker time"
            )
        if self.retries or self.timeouts or self.pool_restarts or self.fallbacks:
            lines.append(
                f"resilience: {self.retries} retries, {self.timeouts} timeouts, "
                f"{self.pool_restarts} pool restarts, "
                f"{self.fallbacks} serial fallbacks"
            )
        if self.checkpoints:
            lines.append(f"checkpoints: {self.checkpoints}")
        for name, seconds in sorted(
            self.phase_seconds.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"phase {name}: {seconds:.2f}s")
        if self.searches:
            lines.append("searches:")
            for name in sorted(self.searches):
                s = self.searches[name]
                strategies = ",".join(sorted(s.strategies)) or "?"
                lines.append(
                    f"  {name}: {s.runs} runs ({strategies}), "
                    f"{s.evaluations} evaluations, best {s.best_score:.2f}"
                )
        if self.unknown_events:
            skipped = sum(self.unknown_events.values())
            kinds = ", ".join(sorted(self.unknown_events))
            lines.append(
                f"warning: skipped {skipped} event(s) of "
                f"{len(self.unknown_events)} unknown kind(s): {kinds}"
            )
        return "\n".join(lines)


def _as_int(value: Any, default: int = 0) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _as_float(value: Any, default: float = 0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def summarize(events: Iterable[dict]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary` (single pass).

    Event kinds outside :data:`KNOWN_EVENTS` (journals written by newer
    or foreign layers) still count toward totals and timing but are
    tallied in ``unknown_events`` and surfaced as a warning, never
    misparsed as the PR 5 vocabulary.
    """
    summary = TraceSummary()
    traces_seen: set[str] = set()
    previous_seq: int | None = None
    for record in events:
        summary.events += 1
        name = record.get("event", "?")
        summary.counts[name] = summary.counts.get(name, 0) + 1
        if name not in KNOWN_EVENTS:
            summary.unknown_events[name] = summary.unknown_events.get(name, 0) + 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            if summary.first_ts is None:
                summary.first_ts = float(ts)
            summary.last_ts = float(ts)
        seq = record.get("seq")
        if isinstance(seq, int):
            if summary.seq_first is None:
                summary.seq_first = seq
            summary.seq_last = seq
            if previous_seq is not None and seq <= previous_seq:
                summary.monotonic = False
            previous_seq = seq
        trace = record.get("trace")
        if isinstance(trace, str):
            traces_seen.add(trace)

        if name == "evaluation":
            summary.evaluations += _as_int(record.get("count", 1), 1)
        elif name == "cache_hit":
            summary.cache_hits += _as_int(record.get("count", 1), 1)
        elif name == "cache_miss":
            summary.cache_misses += _as_int(record.get("count", 1), 1)
        elif name == "batch":
            summary.batches += 1
        elif name == "retry":
            summary.retries += 1
        elif name == "task_timeout":
            summary.timeouts += 1
        elif name == "pool_restart":
            summary.pool_restarts += 1
        elif name == "checkpoint":
            summary.checkpoints += 1
        elif name == "fallback":
            summary.fallbacks += 1
        elif name == "phase_end":
            phase = record.get("name", "?")
            summary.phase_seconds[phase] = summary.phase_seconds.get(
                phase, 0.0
            ) + _as_float(record.get("seconds", 0.0))
        elif name == "task_span":
            summary.task_spans += 1
            summary.task_seconds += _as_float(record.get("seconds", 0.0))
        elif name == "search_run":
            workload = record.get("workload", "?")
            entry = summary.searches.setdefault(workload, SearchTrace(workload))
            entry.runs += 1
            entry.evaluations += _as_int(record.get("evaluations", 0))
            entry.moves += _as_int(record.get("moves", 0))
            entry.best_score = max(
                entry.best_score, _as_float(record.get("best_score", 0.0))
            )
            strategy = record.get("strategy")
            if isinstance(strategy, str):
                entry.strategies.add(strategy)
    summary.attempts = len(traces_seen) if traces_seen else (1 if summary.events else 0)
    return summary


# ----------------------------------------------------------------------
# slowest tasks
# ----------------------------------------------------------------------


def slowest_tasks(events: Iterable[dict], top: int = 10) -> list[dict]:
    """The ``top`` slowest task/worker spans, slowest first.

    Sort key is worker-measured seconds; ties break on sequence number
    so the order is reproducible for one journal.
    """
    tasks = [
        record
        for record in events
        if record.get("event") == "task_span" and record.get("seconds") is not None
    ]
    tasks.sort(key=lambda r: (-float(r["seconds"]), r.get("seq", 0)))
    return tasks[: max(top, 0)]


def render_slowest(tasks: list[dict]) -> str:
    if not tasks:
        return "no task spans in this journal (serial run, or tracing was off)"
    lines = [f"{'seconds':>9}  {'wait':>7}  {'pid':>7}  task"]
    for record in tasks:
        wait = record.get("queue_wait_s")
        label = record.get("name", "task")
        key = record.get("key")
        if key:
            label = f"{label} {key}"
        items = record.get("items")
        if items and items != 1:
            label += f" ({items} items)"
        lines.append(
            f"{float(record['seconds']):9.4f}  "
            f"{f'{float(wait):7.4f}' if wait is not None else '      -'}  "
            f"{record.get('worker_pid', '-'):>7}  {label}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# span tree and critical path
# ----------------------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span (phase, batch, search or worker task)."""

    span: str
    name: str
    kind: str
    parent: str | None
    seconds: float = 0.0
    start_ts: float | None = None
    children: list["SpanNode"] = field(default_factory=list)


def build_span_tree(events: Iterable[dict]) -> list[SpanNode]:
    """Reconstruct the span forest of a journal (roots returned).

    Spans arrive as ``phase_start``/``phase_end``, ``span_start``/
    ``span_end`` and point-like ``task_span`` events; an end without a
    start (rotated-away head) synthesizes its node.  Parent links that
    point at spans from another attempt (a resume) fall back to roots.
    """
    nodes: dict[str, SpanNode] = {}
    order: list[str] = []

    def ensure(record: dict) -> SpanNode | None:
        span = record.get("span")
        if not isinstance(span, str):
            return None
        # A resumed run reuses span ids under a new trace id; qualify.
        trace = record.get("trace")
        key = f"{trace}/{span}" if isinstance(trace, str) else span
        node = nodes.get(key)
        if node is None:
            parent = record.get("parent")
            parent_key = (
                f"{trace}/{parent}"
                if isinstance(trace, str) and isinstance(parent, str)
                else parent
            )
            node = SpanNode(
                span=key,
                name=record.get("name", "?"),
                kind=record.get("kind", "span"),
                parent=parent_key if isinstance(parent_key, str) else None,
                start_ts=record.get("ts"),
            )
            nodes[key] = node
            order.append(key)
        return node

    for record in events:
        event = record.get("event")
        if event in ("phase_start", "span_start"):
            ensure(record)
        elif event in ("phase_end", "span_end"):
            node = ensure(record)
            if node is not None:
                node.seconds += _as_float(record.get("seconds", 0.0))
        elif event == "task_span":
            node = ensure(record)
            if node is not None:
                node.kind = "task"
                node.seconds += _as_float(record.get("seconds", 0.0))

    roots: list[SpanNode] = []
    for key in order:
        node = nodes[key]
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def critical_path(events: Iterable[dict]) -> list[SpanNode]:
    """The root-to-leaf chain of spans with the largest wall time.

    At each level the child with the most recorded seconds is followed —
    the answer to "which nesting of phases dominated this run".
    """
    roots = build_span_tree(events)
    if not roots:
        return []
    path: list[SpanNode] = []
    node = max(roots, key=lambda n: n.seconds)
    while node is not None:
        path.append(node)
        node = max(node.children, key=lambda n: n.seconds, default=None)
    return path


def render_critical_path(path: list[SpanNode]) -> str:
    if not path:
        return "no spans in this journal"
    total = path[0].seconds
    lines = [f"critical path ({total:.2f}s at the root):"]
    for depth, node in enumerate(path):
        share = node.seconds / total * 100 if total > 0 else 0.0
        lines.append(
            f"{'  ' * depth}{node.name} [{node.kind}] "
            f"{node.seconds:.2f}s ({share:.0f}%)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------


#: Event kinds rendered as Chrome instant ('i') markers.
_INSTANT_EVENTS = frozenset(
    {
        "retry",
        "task_timeout",
        "pool_restart",
        "checkpoint",
        "fallback",
        "quarantine",
        "storage_degraded",
        "lock_takeover",
        "search_run",
        "job_start",
        "cache_call",
        "replica_failover",
        "circuit_open",
        "circuit_close",
        "circuit_half_open",
    }
)


def chrome_trace(events: Iterable[dict], pid: int = 1) -> dict[str, Any]:
    """Chrome trace-event JSON for a journal (complete 'X' events).

    Wall-clock timestamps anchor each span's end; the worker-measured
    duration places its start.  Worker task spans carry their worker
    pid as ``tid`` so per-worker lanes render separately.  ``pid``
    distinguishes journals when a fleet export merges several replicas
    into one trace.  Event kinds outside the known vocabulary are
    skipped and tallied in ``metadata.unknown_events``.
    """
    trace_events: list[dict[str, Any]] = []
    unknown: dict[str, int] = {}
    for record in events:
        event = record.get("event")
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        micros = float(ts) * 1e6
        if event in ("phase_end", "span_end", "job_end"):
            seconds = _as_float(record.get("seconds", 0.0))
            trace_events.append(
                {
                    "name": record.get("name") or record.get("job") or "?",
                    "cat": record.get("kind", "span") if event != "job_end" else "job",
                    "ph": "X",
                    "ts": micros - seconds * 1e6,
                    "dur": seconds * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "span": record.get("span"),
                        "seq": record.get("seq"),
                        "trace_id": record.get("trace_id"),
                        "replica_id": record.get("replica_id"),
                    },
                }
            )
        elif event == "task_span":
            seconds = _as_float(record.get("seconds", 0.0))
            start = record.get("start_ts")
            start_us = (
                float(start) * 1e6
                if isinstance(start, (int, float))
                else micros - seconds * 1e6
            )
            trace_events.append(
                {
                    "name": record.get("name", "task"),
                    "cat": "task",
                    "ph": "X",
                    "ts": start_us,
                    "dur": seconds * 1e6,
                    "pid": pid,
                    "tid": record.get("worker_pid", 0),
                    "args": {
                        "key": record.get("key"),
                        "queue_wait_s": record.get("queue_wait_s"),
                        "seq": record.get("seq"),
                    },
                }
            )
        elif event in _INSTANT_EVENTS:
            trace_events.append(
                {
                    "name": event,
                    "cat": "event",
                    "ph": "i",
                    "s": "g",
                    "ts": micros,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        k: v
                        for k, v in record.items()
                        if k not in ("event", "ts")
                    },
                }
            )
        elif event not in KNOWN_EVENTS:
            key = event if isinstance(event, str) else "?"
            unknown[key] = unknown.get(key, 0) + 1
    out: dict[str, Any] = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if unknown:
        out["metadata"] = {"unknown_events": unknown}
    return out
