"""The evaluation engine: cache-aware, optionally parallel batch evaluation.

:class:`EvaluationEngine` is the single funnel through which exploration
and characterization code runs simulations.  It layers, in order:

1. **content-addressed caching** — every request is keyed by
   :func:`repro.engine.keys.evaluation_key`; hits skip the simulator
   entirely and are bit-identical to a fresh evaluation;
2. **batch deduplication** — :meth:`evaluate_many` simulates each
   distinct (workload, configuration) pair at most once per batch, no
   matter how often the batch repeats it (the Table-5 matrix fill
   overlaps heavily with cross-seeding);
3. **process-pool parallelism** — misses are simulated across
   ``jobs`` worker processes (each worker re-instantiates the simulator
   once, during pool initialization), falling back to serial execution
   whenever the work is not picklable or a pool cannot be created;
4. **resilience** — every accepted result passes integrity validation,
   failed or timed-out tasks are retried under the engine's
   :class:`~repro.engine.resilience.RetryPolicy` (bounded exponential
   backoff, deterministic jitter), a dead pool is rebuilt up to the
   policy's restart budget, and beyond that the engine degrades
   gracefully to serial execution instead of aborting the run.

Results are deterministic by construction: caching returns the exact
stored result, batches preserve request order, and the per-item work is
itself deterministic — so ``jobs=1`` and ``jobs=N`` produce bit-identical
outputs, *including* under retries, pool restarts and injected faults
(a retried evaluation re-runs the same deterministic simulator).

The engine also offers a generic :meth:`map` for coarse-grained task
parallelism (one annealing run per workload, one pinned-clock anneal per
sweep point) with the same retry/fallback guarantees.

Fault injection (:class:`~repro.engine.faults.FaultPlan`, the
``faults=`` parameter) exists to *test* all of the above: see
``docs/resilience.md``.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from ..errors import EngineError
from ..sim.interval import IntervalSimulator
from ..sim.interval_batch import BatchIntervalModel
from ..sim.metrics import SimResult
from ..workloads.profile import WorkloadProfile
from .cache import ResultCache
from .events import EngineMetrics, EventBus
from .faults import WRONG_RESULT, FaultPlan, InjectedCrash, InjectedFault, corrupt_result, enact
from .keys import digest, evaluation_key, simulator_id
from .resilience import (
    ResultIntegrityError,
    RetryPolicy,
    failure_reason,
    validate_result,
)

T = TypeVar("T")
U = TypeVar("U")

Pair = tuple[WorkloadProfile, Any]

#: Sentinel distinguishing "default cache" from "explicitly no cache".
_DEFAULT_CACHE = object()


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def _is_broken_pool(exc: BaseException) -> bool:
    return type(exc).__name__ == "BrokenProcessPool"


# ----------------------------------------------------------------------
# worker-process plumbing (module level: must be picklable by name)
# ----------------------------------------------------------------------

_WORKER_SIMULATOR: Any = None


def _init_worker(simulator: Any) -> None:
    """Pool initializer: install this process's own simulator instance."""
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def _simulate_pairs(sim: Any, pairs: Sequence[Pair]) -> list[SimResult]:
    """Simulate pairs through the simulator's batch path when it has one.

    Pairs are grouped by profile (first-seen order) and each group goes
    through ``evaluate_batch`` in one call; results come back in input
    order.  Simulators without a batch path — and unbatchable inputs
    (single pair, unhashable profile subtype) — take the plain scalar
    loop.
    """
    evaluate_batch = getattr(sim, "evaluate_batch", None)
    if evaluate_batch is None or len(pairs) < 2:
        return [sim.evaluate(profile, config) for profile, config in pairs]
    groups: dict[Any, list[int]] = {}
    try:
        for i, (profile, _) in enumerate(pairs):
            groups.setdefault(profile, []).append(i)
    except TypeError:  # unhashable profile subtype
        return [sim.evaluate(profile, config) for profile, config in pairs]
    results: list[SimResult | None] = [None] * len(pairs)
    for profile, indices in groups.items():
        batch = evaluate_batch(profile, [pairs[i][1] for i in indices])
        for i, result in zip(indices, batch):
            results[i] = result
    return results  # type: ignore[return-value]


def _evaluate_chunk(pairs: Sequence[Pair]) -> list[SimResult]:
    """Simulate a chunk of (profile, config) pairs in a worker process."""
    sim = _WORKER_SIMULATOR
    if sim is None:  # serial in-process use
        sim = BatchIntervalModel()
    return _simulate_pairs(sim, pairs)


def _evaluate_task(
    task: tuple[WorkloadProfile, Any, str, int, FaultPlan | None],
) -> SimResult:
    """Simulate one pair in a worker, enacting any fault planned for it.

    One task per future (rather than a chunk) so the parent can time
    out, retry and re-attribute failures per evaluation.
    """
    profile, config, key, attempt, plan = task
    in_worker = _WORKER_SIMULATOR is not None
    sim = _WORKER_SIMULATOR if in_worker else IntervalSimulator()
    kind = None
    if plan is not None:
        kind = enact(plan, key, attempt, allow_exit=in_worker)
    result = sim.evaluate(profile, config)
    if kind == WRONG_RESULT:
        result = corrupt_result(result)
    return result


def _worker_record(submit_ts: float, start_ts: float, seconds: float) -> dict:
    """The timing facts a traced worker task ships back to the parent.

    Workers cannot reach the parent's bus, so traced task variants
    return ``(value, record)`` and the parent emits the ``task_span``
    event — with span ids allocated parent-side in harvest order, so
    trace topology stays deterministic.  ``queue_wait_s`` compares two
    wall clocks on the same machine (submit in parent, start in
    worker), which is exactly the pool's dispatch latency.
    """
    return {
        "worker_pid": os.getpid(),
        "start_ts": start_ts,
        "seconds": seconds,
        "queue_wait_s": max(start_ts - submit_ts, 0.0),
    }


def _evaluate_chunk_traced(
    payload: tuple[Sequence[Pair], float],
) -> tuple[list[SimResult], dict]:
    """Traced variant of :func:`_evaluate_chunk`: results + timing record."""
    pairs, submit_ts = payload
    start_ts = time.time()
    t0 = time.perf_counter()
    results = _evaluate_chunk(pairs)
    return results, _worker_record(submit_ts, start_ts, time.perf_counter() - t0)


def _evaluate_task_traced(
    payload: tuple[tuple[WorkloadProfile, Any, str, int, FaultPlan | None], float],
) -> tuple[SimResult, dict]:
    """Traced variant of :func:`_evaluate_task`: result + timing record.

    A failing attempt raises before any record exists — the parent's
    ``retry`` event already covers failed attempts.
    """
    task, submit_ts = payload
    start_ts = time.time()
    t0 = time.perf_counter()
    result = _evaluate_task(task)
    return result, _worker_record(submit_ts, start_ts, time.perf_counter() - t0)


def _map_call_traced(payload: tuple[Callable, Any, float]) -> tuple[Any, dict]:
    """Traced variant of one :meth:`EvaluationEngine.map` call."""
    fn, item, submit_ts = payload
    start_ts = time.time()
    t0 = time.perf_counter()
    value = fn(item)
    return value, _worker_record(submit_ts, start_ts, time.perf_counter() - t0)


def _chunked(items: Sequence[T], size: int) -> list[Sequence[T]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


class EvaluationEngine:
    """Shared runtime for all (workload, configuration) evaluations.

    Parameters
    ----------
    simulator:
        Evaluator with ``evaluate(profile, config) -> SimResult``;
        defaults to the interval model.  It is shipped (pickled) to each
        worker process once at pool start-up, so each worker runs its own
        instance.
    jobs:
        Worker processes for batch/task parallelism; ``1`` (the default)
        stays fully serial and in-process.
    clamp_jobs:
        Bound the effective worker count by :func:`available_cpus`
        (default True): oversubscribing a 1-core container with
        ``jobs=4`` would only add dispatch overhead, never speed.  The
        requested ``jobs`` is kept as intent; ``workers`` is what runs.
        Pass False to force the pool regardless (tests do).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching entirely;
        by default an in-memory cache is created.
    events:
        An :class:`EventBus` to emit progress on; a fresh bus (with an
        attached :class:`EngineMetrics`) is created by default.
    context:
        Extra identity folded into every cache key — pass the technology
        node so caches shared across technologies cannot collide.
    policy:
        The :class:`~repro.engine.resilience.RetryPolicy` governing
        retries, per-task timeouts, backoff and pool restarts; defaults
        to ``RetryPolicy()`` (retries on, no timeout).
    faults:
        Optional :class:`~repro.engine.faults.FaultPlan` injecting
        deterministic failures into evaluations (testing/chaos runs
        only; results remain bit-identical to a fault-free run).
    """

    def __init__(
        self,
        simulator: Any = None,
        jobs: int = 1,
        cache: ResultCache | None | object = _DEFAULT_CACHE,
        events: EventBus | None = None,
        context: Any = None,
        clamp_jobs: bool = True,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        # The default simulator is the vectorized batch model: scalar
        # calls are inherited unchanged, batches hit the array path, and
        # its shared cache identity keeps keys interoperable with plain
        # IntervalSimulator results.
        self.simulator = simulator if simulator is not None else BatchIntervalModel()
        self.jobs = jobs
        self.workers = min(jobs, available_cpus()) if clamp_jobs else jobs
        self.policy = policy if policy is not None else RetryPolicy()
        self.faults = faults if faults is not None and faults.active else None
        self.cache: ResultCache | None
        if cache is _DEFAULT_CACHE:
            self.cache = ResultCache(path=None)
        else:
            self.cache = cache  # type: ignore[assignment]
        self.events = events or EventBus()
        self.metrics = EngineMetrics(self.events)
        if self.cache is not None:
            self.cache.on_quarantine = self._on_cache_quarantine
            self.cache.on_degrade = self._on_cache_degrade
        self._simulator_id = simulator_id(self.simulator)
        self._context_digest = "" if context is None else digest(context)
        self._context_bound = context is not None
        self._executor: ProcessPoolExecutor | None = None
        self._pool_broken = False
        self._pool_deaths = 0

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def bind_context(self, context: Any) -> None:
        """Fold ``context`` (e.g. the technology node) into cache keys.

        Only the first binding takes effect; later calls with different
        content raise, because silently re-keying a warm cache would make
        earlier entries unreachable.
        """
        new = digest(context)
        if self._context_bound and new != self._context_digest:
            raise EngineError("engine context is already bound to different content")
        self._context_digest = new
        self._context_bound = True

    @property
    def context_bound(self) -> bool:
        return self._context_bound

    @property
    def mode(self) -> str:
        """``"pool"`` while worker parallelism is live, else ``"serial"``."""
        return "pool" if self.workers > 1 and not self._pool_broken else "serial"

    def key_for(self, profile: WorkloadProfile, config: Any) -> str:
        """The cache key this engine uses for one evaluation."""
        return evaluation_key(
            profile, config, simulator=self._simulator_id, context=self._context_digest
        )

    def phase(self, name: str):
        """Context manager timing a named phase (see :mod:`.events`)."""
        return self.events.phase(name)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, profile: WorkloadProfile, config: Any) -> SimResult:
        """One cache-aware evaluation (always in-process)."""
        if self.cache is None:
            key = self.key_for(profile, config) if self.faults is not None else ""
            result = self._evaluate_serial(profile, config, key)
            self.events.emit("evaluation", count=1)
            return result
        key = self.key_for(profile, config)
        hit = self.cache.get(key)
        if hit is not None:
            self.events.emit("cache_hit", count=1)
            return hit
        self.events.emit("cache_miss", count=1)
        result = self._evaluate_serial(profile, config, key)
        self.events.emit("evaluation", count=1)
        self.cache.put(key, result)
        return result

    def evaluate_many(self, pairs: Sequence[Pair]) -> list[SimResult]:
        """Evaluate a batch, dedup'd against the cache and within itself.

        Returns one result per input pair, in input order.  Each distinct
        (workload, configuration) content is simulated at most once; with
        ``jobs > 1`` the distinct misses are simulated across the worker
        pool in deterministic order.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        with self._interrupt_guard():
            if self.events.tracing:
                with self.events.span("batch", kind="batch", size=len(pairs)):
                    return self._evaluate_many(pairs)
            return self._evaluate_many(pairs)

    def _evaluate_many(self, pairs: Sequence[Pair]) -> list[SimResult]:
        if self.cache is None:
            results = self._simulate(pairs)
            self.events.emit("evaluation", count=len(pairs))
            self.events.emit("batch", size=len(pairs), unique=len(pairs), hits=0)
            return results

        keys = [self.key_for(profile, config) for profile, config in pairs]
        resolved: dict[str, SimResult] = {}
        missing: dict[str, Pair] = {}
        hits = 0
        for key, pair in zip(keys, pairs):
            if key in resolved or key in missing:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                resolved[key] = cached
                hits += 1
            else:
                missing[key] = pair
        if hits:
            self.events.emit("cache_hit", count=hits)
        if missing:
            self.events.emit("cache_miss", count=len(missing))
            fresh = self._simulate(list(missing.values()), keys=list(missing))
            self.events.emit("evaluation", count=len(fresh))
            for key, result in zip(missing, fresh):
                self.cache.put(key, result)
                resolved[key] = result
        self.events.emit(
            "batch", size=len(pairs), unique=len(missing), hits=len(pairs) - len(missing)
        )
        return [resolved[key] for key in keys]

    def map(self, fn: Callable[[T], U], items: Iterable[T]) -> list[U]:
        """Apply ``fn`` to every item, in order, across the worker pool.

        ``fn`` must be a module-level (picklable) callable for parallel
        execution; anything unpicklable degrades to an in-process loop
        (announced via a ``fallback`` event), never to an error.  Under
        the pool, a broken worker or a task overrunning the policy's
        ``timeout_s`` triggers retries and pool restarts exactly like
        :meth:`evaluate_many`; exceptions raised by ``fn`` itself
        propagate to the caller.
        """
        items = list(items)
        if self.workers == 1 or len(items) < 2 or not self._picklable(fn, items):
            return [fn(item) for item in items]
        with self._interrupt_guard():
            return self._map_pooled(fn, items)

    def _map_pooled(self, fn: Callable[[T], U], items: list[T]) -> list[U]:
        n = len(items)
        results: dict[int, U] = {}
        attempts = [0] * n
        pending = list(range(n))
        traced = self.events.tracing
        while pending:
            executor = self._ensure_executor()
            if executor is None:
                for i in pending:
                    results[i] = fn(items[i])
                break
            submit_ts = time.time()
            futures = self._submit_all(
                executor,
                [
                    (i, _map_call_traced, ((fn, items[i], submit_ts),))
                    if traced
                    else (i, fn, (items[i],))
                    for i in pending
                ],
            )
            if futures is None:
                continue

            def accept_map(i: int, outcome: Any) -> None:
                if traced:
                    value, record = outcome
                    self._emit_task_span("map", record, key=f"map:{i}")
                else:
                    value = outcome
                results[i] = value

            failed, pool_death = self._collect(
                futures,
                accept_map,
                key_of=lambda i: f"map:{i}",
            )
            if failed is None:  # unpicklable mid-flight: finish serially
                for i in pending:
                    if i not in results:
                        results[i] = fn(items[i])
                break
            pending = self._account_failures(failed, attempts, lambda i: f"map:{i}")
            if pool_death is not None:
                self._note_pool_death(pool_death)
        return [results[i] for i in range(n)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _emit_task_span(self, name: str, record: dict, **extra: Any) -> None:
        """Stitch one worker-measured task into the parent's trace.

        Called at harvest time, in deterministic (submission) order, so
        span ids and parentage match across runs; only the timing fields
        inside ``record`` vary.
        """
        self.events.emit(
            "task_span",
            name=name,
            span=self.events.next_span_id(),
            parent=self.events.current_span,
            trace=self.events.trace_id,
            **record,
            **extra,
        )

    @contextmanager
    def _interrupt_guard(self) -> Iterator[None]:
        """Never leak worker processes to an interrupt.

        A ``KeyboardInterrupt``/``SIGTERM`` (or any other non-``Exception``
        escape: ``SystemExit``, a run-orchestration interrupt) landing
        mid-batch used to unwind past ``close()``, leaving worker
        children alive and buffered cache writes unflushed.  Ordinary
        :class:`Exception` propagation is untouched — the engine stays
        usable after an evaluation error.
        """
        try:
            yield
        except BaseException as exc:
            if not isinstance(exc, Exception):
                self.terminate()
            raise

    def _evaluate_serial(
        self,
        profile: WorkloadProfile,
        config: Any,
        key: str,
        start_attempt: int = 0,
    ) -> SimResult:
        """One in-process evaluation under the retry policy.

        Injected faults (when a plan is armed) and integrity violations
        are retried with backoff up to ``policy.max_retries``; anything
        else — a genuine simulator error — propagates immediately, since
        a deterministic simulator will not heal on retry.
        """
        attempt = start_attempt
        while True:
            try:
                kind = None
                if self.faults is not None:
                    kind = enact(self.faults, key, attempt, allow_exit=False)
                result = self.simulator.evaluate(profile, config)
                if kind == WRONG_RESULT:
                    result = corrupt_result(result)
                return validate_result(profile, result)
            except (InjectedFault, ResultIntegrityError) as exc:
                attempt = self._before_retry(key, attempt, exc)

    def _before_retry(self, key: str, attempt: int, exc: BaseException) -> int:
        """Account one failed attempt: back off, or give up loudly."""
        next_attempt = attempt + 1
        if next_attempt > self.policy.max_retries:
            raise EngineError(
                f"evaluation {key[:12] or '<unkeyed>'} still failing after "
                f"{next_attempt} attempts: {exc}"
            ) from exc
        delay = self.policy.delay_s(key, next_attempt)
        self.events.emit(
            "retry",
            key=key,
            attempt=next_attempt,
            reason=failure_reason(exc),
            delay_s=delay,
        )
        if delay > 0:
            time.sleep(delay)
        return next_attempt

    def _keys_if_needed(self, pairs: Sequence[Pair], keys: Sequence[str] | None) -> list[str]:
        """Evaluation keys for backoff/fault addressing (cheap when unused)."""
        if keys is not None:
            return list(keys)
        if self.faults is not None:
            return [self.key_for(p, c) for p, c in pairs]
        return [""] * len(pairs)

    def _simulate(
        self, pairs: Sequence[Pair], keys: Sequence[str] | None = None
    ) -> list[SimResult]:
        """Simulate pairs (order-preserving), parallel when worthwhile."""
        if self.workers == 1 or len(pairs) < 2 or not self._picklable(_evaluate_chunk, pairs):
            if self.faults is None and len(pairs) > 1:
                # Serial batch fast path: one vectorized call per profile
                # group, with the same validate-and-raise semantics as
                # the chunked pool path.
                results = _simulate_pairs(self.simulator, pairs)
                for (profile, _), result in zip(pairs, results):
                    validate_result(profile, result)
                return results
            all_keys = self._keys_if_needed(pairs, keys)
            return [
                self._evaluate_serial(p, c, k)
                for (p, c), k in zip(pairs, all_keys)
            ]
        if self.faults is not None or self.policy.timeout_s is not None:
            return self._simulate_resilient(pairs, self._keys_if_needed(pairs, keys))
        return self._simulate_chunked(pairs, keys)

    def _simulate_chunked(
        self, pairs: Sequence[Pair], keys: Sequence[str] | None
    ) -> list[SimResult]:
        """The fast path: chunked pool dispatch, pool restarts on death.

        Without per-task timeouts or fault injection there is nothing to
        retry per evaluation, so work ships in chunks (~4 per worker —
        scheduling slack vs IPC cost).  A broken pool is rebuilt up to
        ``policy.pool_restarts`` times and the whole batch re-dispatched
        (the simulator is deterministic, so recomputation is safe);
        beyond the budget the engine degrades to serial.
        """
        chunk = max(1, -(-len(pairs) // (self.workers * 4)))
        traced = self.events.tracing
        while True:
            executor = self._ensure_executor()
            if executor is None:
                break
            try:
                if traced:
                    submit_ts = time.time()
                    work = [(c, submit_ts) for c in _chunked(pairs, chunk)]
                    outcomes = list(executor.map(_evaluate_chunk_traced, work))
                    chunks = []
                    for (batch_results, record), (batch_pairs, _) in zip(outcomes, work):
                        self._emit_task_span(
                            "chunk", record, items=len(batch_pairs)
                        )
                        chunks.append(batch_results)
                else:
                    chunks = list(executor.map(_evaluate_chunk, _chunked(pairs, chunk)))
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                self._fall_back(f"parallel execution failed ({exc}); retrying serially")
                break
            except Exception as exc:
                if not _is_broken_pool(exc):
                    self._shutdown_executor(cancel=True)
                    raise
                self._note_pool_death(f"worker pool broke ({exc})")
                continue
            flat = [result for batch in chunks for result in batch]
            for (profile, _), result in zip(pairs, flat):
                validate_result(profile, result)
            return flat
        all_keys = self._keys_if_needed(pairs, keys)
        return [
            self._evaluate_serial(p, c, k) for (p, c), k in zip(pairs, all_keys)
        ]

    def _simulate_resilient(
        self, pairs: Sequence[Pair], keys: Sequence[str]
    ) -> list[SimResult]:
        """Per-task pool dispatch with timeouts, retries and restarts.

        Each pending evaluation is its own future, harvested in
        submission order with the policy's per-task deadline.  Failed
        tasks are retried with backoff (fresh attempt numbers, so an
        armed fault plan draws fresh faults); a timeout or broken pool
        condemns the pool, which is rebuilt — or, once the restart
        budget is spent, abandoned for serial execution.  Output order
        and values are identical to the serial path.
        """
        n = len(pairs)
        results: dict[int, SimResult] = {}
        attempts = [0] * n
        pending = list(range(n))
        traced = self.events.tracing
        while pending:
            executor = self._ensure_executor()
            if executor is None:
                for i in pending:
                    profile, config = pairs[i]
                    results[i] = self._evaluate_serial(
                        profile, config, keys[i], start_attempt=attempts[i]
                    )
                break
            submit_ts = time.time()
            futures = self._submit_all(
                executor,
                [
                    (
                        i,
                        _evaluate_task_traced if traced else _evaluate_task,
                        (
                            ((pairs[i][0], pairs[i][1], keys[i], attempts[i], self.faults),
                             submit_ts)
                            if traced
                            else (pairs[i][0], pairs[i][1], keys[i], attempts[i],
                                  self.faults),
                        ),
                    )
                    for i in pending
                ],
            )
            if futures is None:
                continue

            def accept(i: int, outcome: Any) -> None:
                if traced:
                    result, record = outcome
                    self._emit_task_span(
                        "task", record, key=keys[i], attempt=attempts[i]
                    )
                else:
                    result = outcome
                results[i] = validate_result(pairs[i][0], result)

            failed, pool_death = self._collect(
                futures, accept, key_of=lambda i: keys[i]
            )
            if failed is None:  # unpicklable mid-flight: finish serially
                for i in pending:
                    if i not in results:
                        profile, config = pairs[i]
                        results[i] = self._evaluate_serial(
                            profile, config, keys[i], start_attempt=attempts[i]
                        )
                break
            pending = self._account_failures(failed, attempts, lambda i: keys[i])
            if pool_death is not None:
                self._note_pool_death(pool_death)
        return [results[i] for i in range(n)]

    def _submit_all(
        self, executor: ProcessPoolExecutor, work: Sequence[tuple[int, Any, tuple]]
    ) -> list[tuple[int, Any]] | None:
        """Submit every ``(index, fn, args)``; ``None`` if the pool died.

        A pool can break *between* rounds (a worker segfaults while
        idle), in which case ``submit`` itself raises — that counts as
        one pool death and the caller simply re-enters its round loop.
        """
        futures: list[tuple[int, Any]] = []
        try:
            for i, fn, args in work:
                futures.append((i, executor.submit(fn, *args)))
        except Exception as exc:
            if not _is_broken_pool(exc):
                self._shutdown_executor(cancel=True)
                raise
            self._note_pool_death(f"worker pool broke on submit ({exc})")
            return None
        return futures

    def _collect(
        self,
        futures: Sequence[tuple[int, Any]],
        accept: Callable[[int, Any], None],
        key_of: Callable[[int], str],
    ) -> tuple[list[tuple[int, BaseException]] | None, str | None]:
        """Harvest futures in order; sort outcomes into accepted/failed.

        Returns ``(failed, pool_death_reason)``.  ``failed`` is ``None``
        when the work itself proved unpicklable (permanent serial
        fallback was triggered; the caller finishes in-process).  After
        the pool is condemned (first timeout or break), remaining
        futures are only harvested if already done — nothing waits on a
        suspect pool.
        """
        failed: list[tuple[int, BaseException]] = []
        pool_death: str | None = None
        for i, fut in futures:
            if pool_death is not None and not fut.done():
                fut.cancel()
                failed.append((i, RuntimeError("abandoned after pool death")))
                continue
            try:
                accept(i, fut.result(timeout=self.policy.timeout_s))
            except (InjectedFault, ResultIntegrityError) as exc:
                failed.append((i, exc))
            except FuturesTimeout as exc:
                self.events.emit(
                    "task_timeout", key=key_of(i), timeout_s=self.policy.timeout_s
                )
                failed.append((i, exc))
                pool_death = (
                    f"task exceeded {self.policy.timeout_s}s deadline (hung worker)"
                )
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                self._fall_back(f"parallel work failed to pickle ({exc}); "
                                "retrying serially")
                return None, None
            except Exception as exc:
                if not _is_broken_pool(exc):
                    self._shutdown_executor(cancel=True)
                    raise
                failed.append((i, exc))
                pool_death = f"worker pool broke ({exc})"
        return failed, pool_death

    def _account_failures(
        self,
        failed: Sequence[tuple[int, BaseException]],
        attempts: list[int],
        key_of: Callable[[int], str],
    ) -> list[int]:
        """Bump attempt counts, emit retry events, sleep one backoff.

        Backoff is applied once per retry round (the longest delay among
        the round's failures) rather than serially per task, so a wide
        batch does not stack sleeps.
        """
        still_pending: list[int] = []
        worst_delay = 0.0
        for i, exc in failed:
            attempts[i] += 1
            if attempts[i] > self.policy.max_retries:
                self._shutdown_executor(cancel=True)
                raise EngineError(
                    f"task {key_of(i)[:12] or i} still failing after "
                    f"{attempts[i]} attempts: {exc}"
                ) from exc
            delay = self.policy.delay_s(key_of(i), attempts[i])
            worst_delay = max(worst_delay, delay)
            self.events.emit(
                "retry",
                key=key_of(i),
                attempt=attempts[i],
                reason=failure_reason(exc),
                delay_s=delay,
            )
            still_pending.append(i)
        if worst_delay > 0:
            time.sleep(worst_delay)
        return still_pending

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._pool_broken:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.simulator,),
                )
            except (OSError, ValueError, pickle.PicklingError) as exc:
                self._fall_back(f"cannot start worker pool ({exc})")
                return None
        return self._executor

    def _picklable(self, fn: Any, items: Any) -> bool:
        try:
            pickle.dumps((fn, items))
            return True
        except Exception as exc:
            self._fall_back(f"work is not picklable ({exc})")
            return False

    def _shutdown_executor(self, cancel: bool = False) -> None:
        """Tear down the current pool (keeping the engine usable)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=not cancel, cancel_futures=cancel)
            except Exception:
                pass

    def _note_pool_death(self, reason: str) -> None:
        """One pool death: rebuild within budget, degrade to serial past it."""
        self._shutdown_executor(cancel=True)
        self._pool_deaths += 1
        if self._pool_deaths > self.policy.pool_restarts:
            self._fall_back(
                f"{reason}; restart budget ({self.policy.pool_restarts}) spent"
            )
            return
        self.events.emit("pool_restart", deaths=self._pool_deaths, reason=reason)

    def _fall_back(self, reason: str) -> None:
        """Degrade permanently to serial execution (never an error).

        The engine stops *claiming* pool mode too: ``workers`` drops to
        1 so later batches take the serial path directly instead of
        re-discovering the broken pool.
        """
        self._pool_broken = True
        self.workers = 1
        self._shutdown_executor(cancel=True)
        self.events.emit("fallback", reason=reason)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool and flush the cache to disk.

        Safe to call in any state — including after an exception escaped
        mid-``evaluate_many`` or the pool broke: outstanding futures are
        cancelled rather than waited on, so close never hangs on a sick
        pool.
        """
        self._shutdown_executor(cancel=self._pool_broken or self._pool_deaths > 0)
        if self.cache is not None:
            self.cache.flush()

    def terminate(self) -> None:
        """Forcibly stop the pool *now*: kill children, flush the cache.

        The interrupt/shutdown path.  Where :meth:`close` shuts down
        politely, ``terminate`` cancels queued work, SIGTERMs the worker
        processes (a cancelled future does not stop a task already
        running), and flushes buffered cache writes so completed work
        survives the exit.  Idempotent and never raises; the engine
        remains usable (a later batch would build a fresh pool).
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            # Grab the children before shutdown forgets them.  The
            # process table is a private attribute, so guard against
            # future stdlib changes — leaking on an unknown Python is
            # acceptable, crashing the shutdown path is not.
            table = getattr(executor, "_processes", None)
            processes = list(table.values()) if isinstance(table, dict) else []
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            for process in processes:
                try:
                    process.terminate()
                except Exception:
                    pass
        if self.cache is not None:
            try:
                self.cache.flush()
            except Exception:
                pass

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # A pickled engine (shipped inside a task to a worker process) wakes
    # up serial, with a fresh private memory cache and bus: workers must
    # not spawn nested pools, share SQLite handles, or carry the parent's
    # subscribers.  The retry policy and fault plan travel with it, so
    # nested evaluations keep the same resilience (and injectability).
    def __getstate__(self) -> dict:
        return {
            "simulator": self.simulator,
            "context_digest": self._context_digest,
            "context_bound": self._context_bound,
            "policy": self.policy,
            "faults": self.faults,
        }

    def __setstate__(self, state: dict) -> None:
        self.simulator = state["simulator"]
        self.jobs = 1
        self.workers = 1
        self.policy = state.get("policy") or RetryPolicy()
        self.faults = state.get("faults")
        self.cache = ResultCache(path=None)
        self.events = EventBus()
        self.metrics = EngineMetrics(self.events)
        self.cache.on_quarantine = self._on_cache_quarantine
        self._simulator_id = simulator_id(self.simulator)
        self._context_digest = state["context_digest"]
        self._context_bound = state["context_bound"]
        self._executor = None
        self._pool_broken = False
        self._pool_deaths = 0

    def _on_cache_quarantine(self, key: str, reason: str) -> None:
        self.events.emit("quarantine", tier="cache", key=key, reason=reason)

    def _on_cache_degrade(self, reason: str) -> None:
        self.events.emit("storage_degraded", tier="cache", reason=reason)
