"""The evaluation engine: cache-aware, optionally parallel batch evaluation.

:class:`EvaluationEngine` is the single funnel through which exploration
and characterization code runs simulations.  It layers, in order:

1. **content-addressed caching** — every request is keyed by
   :func:`repro.engine.keys.evaluation_key`; hits skip the simulator
   entirely and are bit-identical to a fresh evaluation;
2. **batch deduplication** — :meth:`evaluate_many` simulates each
   distinct (workload, configuration) pair at most once per batch, no
   matter how often the batch repeats it (the Table-5 matrix fill
   overlaps heavily with cross-seeding);
3. **process-pool parallelism** — misses are simulated across
   ``jobs`` worker processes (each worker re-instantiates the simulator
   once, during pool initialization), falling back to serial execution
   whenever the work is not picklable or a pool cannot be created.

Results are deterministic by construction: caching returns the exact
stored result, batches preserve request order, and the per-item work is
itself deterministic — so ``jobs=1`` and ``jobs=N`` produce bit-identical
outputs.

The engine also offers a generic :meth:`map` for coarse-grained task
parallelism (one annealing run per workload, one pinned-clock anneal per
sweep point) with the same serial-fallback guarantee.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..errors import EngineError
from ..sim.interval import IntervalSimulator
from ..sim.metrics import SimResult
from ..workloads.profile import WorkloadProfile
from .cache import ResultCache
from .events import EngineMetrics, EventBus
from .keys import digest, evaluation_key, simulator_id

T = TypeVar("T")
U = TypeVar("U")

Pair = tuple[WorkloadProfile, Any]

#: Sentinel distinguishing "default cache" from "explicitly no cache".
_DEFAULT_CACHE = object()


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1

# ----------------------------------------------------------------------
# worker-process plumbing (module level: must be picklable by name)
# ----------------------------------------------------------------------

_WORKER_SIMULATOR: Any = None


def _init_worker(simulator: Any) -> None:
    """Pool initializer: install this process's own simulator instance."""
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def _evaluate_chunk(pairs: Sequence[Pair]) -> list[SimResult]:
    """Simulate a chunk of (profile, config) pairs in a worker process."""
    sim = _WORKER_SIMULATOR
    if sim is None:  # serial in-process use
        sim = IntervalSimulator()
    return [sim.evaluate(profile, config) for profile, config in pairs]


def _chunked(items: Sequence[T], size: int) -> list[Sequence[T]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


class EvaluationEngine:
    """Shared runtime for all (workload, configuration) evaluations.

    Parameters
    ----------
    simulator:
        Evaluator with ``evaluate(profile, config) -> SimResult``;
        defaults to the interval model.  It is shipped (pickled) to each
        worker process once at pool start-up, so each worker runs its own
        instance.
    jobs:
        Worker processes for batch/task parallelism; ``1`` (the default)
        stays fully serial and in-process.
    clamp_jobs:
        Bound the effective worker count by :func:`available_cpus`
        (default True): oversubscribing a 1-core container with
        ``jobs=4`` would only add dispatch overhead, never speed.  The
        requested ``jobs`` is kept as intent; ``workers`` is what runs.
        Pass False to force the pool regardless (tests do).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching entirely;
        by default an in-memory cache is created.
    events:
        An :class:`EventBus` to emit progress on; a fresh bus (with an
        attached :class:`EngineMetrics`) is created by default.
    context:
        Extra identity folded into every cache key — pass the technology
        node so caches shared across technologies cannot collide.
    """

    def __init__(
        self,
        simulator: Any = None,
        jobs: int = 1,
        cache: ResultCache | None | object = _DEFAULT_CACHE,
        events: EventBus | None = None,
        context: Any = None,
        clamp_jobs: bool = True,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        self.simulator = simulator if simulator is not None else IntervalSimulator()
        self.jobs = jobs
        self.workers = min(jobs, available_cpus()) if clamp_jobs else jobs
        self.cache: ResultCache | None
        if cache is _DEFAULT_CACHE:
            self.cache = ResultCache(path=None)
        else:
            self.cache = cache  # type: ignore[assignment]
        self.events = events or EventBus()
        self.metrics = EngineMetrics(self.events)
        self._simulator_id = simulator_id(self.simulator)
        self._context_digest = "" if context is None else digest(context)
        self._context_bound = context is not None
        self._executor: ProcessPoolExecutor | None = None
        self._pool_broken = False

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def bind_context(self, context: Any) -> None:
        """Fold ``context`` (e.g. the technology node) into cache keys.

        Only the first binding takes effect; later calls with different
        content raise, because silently re-keying a warm cache would make
        earlier entries unreachable.
        """
        new = digest(context)
        if self._context_bound and new != self._context_digest:
            raise EngineError("engine context is already bound to different content")
        self._context_digest = new
        self._context_bound = True

    @property
    def context_bound(self) -> bool:
        return self._context_bound

    def key_for(self, profile: WorkloadProfile, config: Any) -> str:
        """The cache key this engine uses for one evaluation."""
        return evaluation_key(
            profile, config, simulator=self._simulator_id, context=self._context_digest
        )

    def phase(self, name: str):
        """Context manager timing a named phase (see :mod:`.events`)."""
        return self.events.phase(name)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, profile: WorkloadProfile, config: Any) -> SimResult:
        """One cache-aware evaluation (always in-process)."""
        if self.cache is None:
            result = self.simulator.evaluate(profile, config)
            self.events.emit("evaluation", count=1)
            return result
        key = self.key_for(profile, config)
        hit = self.cache.get(key)
        if hit is not None:
            self.events.emit("cache_hit", count=1)
            return hit
        self.events.emit("cache_miss", count=1)
        result = self.simulator.evaluate(profile, config)
        self.events.emit("evaluation", count=1)
        self.cache.put(key, result)
        return result

    def evaluate_many(self, pairs: Sequence[Pair]) -> list[SimResult]:
        """Evaluate a batch, dedup'd against the cache and within itself.

        Returns one result per input pair, in input order.  Each distinct
        (workload, configuration) content is simulated at most once; with
        ``jobs > 1`` the distinct misses are simulated across the worker
        pool in deterministic order.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if self.cache is None:
            results = self._simulate(pairs)
            self.events.emit("evaluation", count=len(pairs))
            self.events.emit("batch", size=len(pairs), unique=len(pairs), hits=0)
            return results

        keys = [self.key_for(profile, config) for profile, config in pairs]
        resolved: dict[str, SimResult] = {}
        missing: dict[str, Pair] = {}
        hits = 0
        for key, pair in zip(keys, pairs):
            if key in resolved or key in missing:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                resolved[key] = cached
                hits += 1
            else:
                missing[key] = pair
        if hits:
            self.events.emit("cache_hit", count=hits)
        if missing:
            self.events.emit("cache_miss", count=len(missing))
            fresh = self._simulate(list(missing.values()))
            self.events.emit("evaluation", count=len(fresh))
            for key, result in zip(missing, fresh):
                self.cache.put(key, result)
                resolved[key] = result
        self.events.emit(
            "batch", size=len(pairs), unique=len(missing), hits=len(pairs) - len(missing)
        )
        return [resolved[key] for key in keys]

    def map(self, fn: Callable[[T], U], items: Iterable[T]) -> list[U]:
        """Apply ``fn`` to every item, in order, across the worker pool.

        ``fn`` must be a module-level (picklable) callable for parallel
        execution; anything unpicklable degrades to an in-process loop
        (announced via a ``fallback`` event), never to an error.
        """
        items = list(items)
        if self.workers == 1 or len(items) < 2 or not self._picklable(fn, items):
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        if executor is None:
            return [fn(item) for item in items]
        try:
            return list(executor.map(fn, items))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            self._fall_back(f"parallel map failed ({exc}); retrying serially")
            return [fn(item) for item in items]
        except Exception as exc:  # BrokenProcessPool and friends
            if type(exc).__name__ != "BrokenProcessPool":
                raise
            self._fall_back(f"worker pool broke ({exc}); retrying serially")
            return [fn(item) for item in items]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _simulate(self, pairs: Sequence[Pair]) -> list[SimResult]:
        """Simulate pairs (order-preserving), parallel when worthwhile."""
        if self.workers == 1 or len(pairs) < 2 or not self._picklable(_evaluate_chunk, pairs):
            return [self.simulator.evaluate(p, c) for p, c in pairs]
        executor = self._ensure_executor()
        if executor is None:
            return [self.simulator.evaluate(p, c) for p, c in pairs]
        # ~4 chunks per worker balances scheduling slack against IPC cost.
        chunk = max(1, -(-len(pairs) // (self.workers * 4)))
        try:
            chunks = list(executor.map(_evaluate_chunk, _chunked(pairs, chunk)))
        except Exception as exc:
            if type(exc).__name__ != "BrokenProcessPool":
                raise
            self._fall_back(f"worker pool broke ({exc}); retrying serially")
            return [self.simulator.evaluate(p, c) for p, c in pairs]
        return [result for batch in chunks for result in batch]

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._pool_broken:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.simulator,),
                )
            except (OSError, ValueError, pickle.PicklingError) as exc:
                self._fall_back(f"cannot start worker pool ({exc})")
                return None
        return self._executor

    def _picklable(self, fn: Any, items: Any) -> bool:
        try:
            pickle.dumps((fn, items))
            return True
        except Exception as exc:
            self._fall_back(f"work is not picklable ({exc})")
            return False

    def _fall_back(self, reason: str) -> None:
        self._pool_broken = True
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.events.emit("fallback", reason=reason)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool and flush the cache to disk."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # A pickled engine (shipped inside a task to a worker process) wakes
    # up serial, with a fresh private memory cache and bus: workers must
    # not spawn nested pools, share SQLite handles, or carry the parent's
    # subscribers.
    def __getstate__(self) -> dict:
        return {
            "simulator": self.simulator,
            "context_digest": self._context_digest,
            "context_bound": self._context_bound,
        }

    def __setstate__(self, state: dict) -> None:
        self.simulator = state["simulator"]
        self.jobs = 1
        self.workers = 1
        self.cache = ResultCache(path=None)
        self.events = EventBus()
        self.metrics = EngineMetrics(self.events)
        self._simulator_id = simulator_id(self.simulator)
        self._context_digest = state["context_digest"]
        self._context_bound = state["context_bound"]
        self._executor = None
        self._pool_broken = False
