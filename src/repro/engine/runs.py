"""Run orchestration: crash-safe, resumable, supervised units of work.

The paper's headline experiments — per-benchmark customization, the
11×11 cross-configuration matrix, exhaustive combination search — are
hours-long multi-phase jobs.  :mod:`repro.engine.checkpoint` makes the
*task* state survive crashes; this module makes the *run* itself a
durable unit: every long-running command executes inside a **run
directory** that can always be killed and resumed without losing or
corrupting results.

A run directory contains::

    <run-dir>/
      manifest.json   # versioned run manifest (see RunManifest)
      lock.json       # exclusive lock: PID + host + heartbeat mtime
      events.jsonl    # durable event journal (see repro.engine.telemetry)
      state/          # engine state: result cache, checkpoints
      artifacts/      # final outputs (tables, report JSON)

Four cooperating pieces:

* :class:`RunManifest` / :class:`RunDirectory` — the versioned manifest
  records command, argv, an args digest, code/schema versions, phase
  progress, wall-clock and exit status; every update is an atomic
  write-rename (:mod:`repro.engine.io_atomic`), so the manifest is
  always parseable.  Final artifacts are registered with SHA-256
  checksums, and :meth:`RunDirectory.verify` re-checksums them later —
  reporting (and optionally quarantining) corruption instead of crashing
  on it.
* :class:`RunLock` — an exclusive lock with stale-lock detection: a
  lock whose owning PID is dead (or whose heartbeat mtime is ancient on
  a foreign host) is taken over, so a crashed run never wedges its
  directory; two *live* concurrent invocations get a clear
  :class:`~repro.errors.RunLockedError` instead of silently corrupting
  shared state.
* :class:`ShutdownCoordinator` — cooperative SIGINT/SIGTERM handling:
  the first signal raises :class:`RunInterrupted` at the next safe
  point (deferred inside :meth:`~ShutdownCoordinator.shield` critical
  sections), letting drivers flush checkpoints and drain the worker
  pool; a second signal aborts immediately.  The driver records
  ``interrupted`` in the manifest and exits with ``128 + signum``
  (130 for SIGINT, 143 for SIGTERM) so supervisors can tell "killed,
  resumable" from "failed".
* :func:`list_runs` / :meth:`RunDirectory.verify` back the ``repro runs
  list|verify`` and ``repro resume`` commands (see ``docs/runs.md``).

Storage failures degrade, never abort: a manifest save on a full or
read-only filesystem emits ``storage_degraded`` and the run keeps
computing with an in-memory manifest.
"""

from __future__ import annotations

import os
import signal
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..errors import ResumeError, RunError, RunLockedError
from .events import EventBus
from .io_atomic import (
    file_sha256,
    is_storage_error,
    read_json,
    write_json_atomic,
)
from .keys import digest
from .resilience import quarantine_file
from .telemetry import JOURNAL_FILE

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1

MANIFEST_FILE = "manifest.json"
LOCK_FILE = "lock.json"
STATE_DIR = "state"
ARTIFACT_DIR = "artifacts"

#: A foreign-host lock with a heartbeat older than this is stale.
DEFAULT_STALE_AFTER_S = 15 * 60.0

#: Exit code for an interrupted (resumable) run: ``128 + signum``.
def interrupt_exit_code(signum: int) -> int:
    return 128 + int(signum)


class RunInterrupted(BaseException):
    """A shutdown signal arrived; unwind, flush, and exit resumably.

    Deliberately a :class:`BaseException`: ordinary ``except Exception``
    recovery code must not swallow a shutdown request.
    """

    def __init__(self, signum: int) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(f"run interrupted by {name}")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return interrupt_exit_code(self.signum)


class ShutdownCoordinator:
    """Cooperative SIGINT/SIGTERM handling for one run.

    The first signal raises :class:`RunInterrupted` from the handler —
    immediately, unless execution is inside a :meth:`shield` block, in
    which case the raise is deferred to the block's exit (checkpoint and
    manifest writes finish cleanly).  A second signal raises through the
    shield: the user escalated, stop now.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.signum: int | None = None
        self._pending = False
        self._shield_depth = 0
        self._previous: dict[int, Any] = {}

    @property
    def interrupted(self) -> bool:
        return self.signum is not None

    def install(self) -> "ShutdownCoordinator":
        """Install the handlers (main thread only); returns self."""
        for sig in self.SIGNALS:
            self._previous[sig] = signal.signal(sig, self._handle)
        return self

    def uninstall(self) -> None:
        """Restore the previous handlers."""
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()

    def _handle(self, signum: int, frame: Any) -> None:
        escalated = self.signum is not None
        self.signum = signum
        if self._shield_depth > 0 and not escalated:
            self._pending = True
            return
        raise RunInterrupted(signum)

    @contextmanager
    def shield(self) -> Iterator[None]:
        """Critical section: defer a first signal until the block exits."""
        self._shield_depth += 1
        try:
            yield
        finally:
            self._shield_depth -= 1
            if self._shield_depth == 0 and self._pending:
                self._pending = False
                raise RunInterrupted(self.signum or signal.SIGTERM)

    def check(self) -> None:
        """Raise a deferred interrupt, if one is pending (a safe point)."""
        if self._pending and self._shield_depth == 0:
            self._pending = False
            raise RunInterrupted(self.signum or signal.SIGTERM)


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a PID on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class RunLock:
    """Exclusive per-run-directory lock with stale-lock takeover.

    The lock file records ``{pid, host, acquired_at}``; its mtime is the
    heartbeat, refreshed by :meth:`heartbeat` (drivers tie this to
    checkpoint/phase events).  Staleness:

    * same host, owner PID dead → stale (crashed run), take over;
    * foreign host (or unreadable PID) and heartbeat mtime older than
      ``stale_after_s`` → stale, take over;
    * otherwise the lock is *held*: acquiring raises
      :class:`~repro.errors.RunLockedError` — two live invocations must
      not share a run directory's caches and checkpoints.
    """

    def __init__(
        self,
        path: str | Path,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        events: EventBus | None = None,
    ) -> None:
        self.path = Path(path)
        self.stale_after_s = stale_after_s
        self.events = events
        self._owned = False

    def _payload(self) -> dict[str, Any]:
        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": time.time(),
        }

    def acquire(self) -> "RunLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            self._take_over_or_raise()
        else:
            import json as _json

            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                _json.dump(self._payload(), handle)
        self._owned = True
        return self

    def _take_over_or_raise(self) -> None:
        """Existing lock: adopt it if stale, refuse if live."""
        holder: dict[str, Any] | None
        try:
            raw = read_json(self.path)
            holder = raw if isinstance(raw, dict) else None
        except (OSError, ValueError):
            holder = None  # unreadable/corrupt lock: treat as stale below

        reason = None
        if holder is None:
            reason = "lock file is unreadable"
        else:
            pid = holder.get("pid")
            host = holder.get("host")
            same_host = host == socket.gethostname()
            if same_host and isinstance(pid, int):
                if _pid_alive(pid):
                    raise RunLockedError(
                        f"run directory is locked by live pid {pid} on this "
                        f"host ({self.path}); refusing to run concurrently"
                    )
                reason = f"owner pid {pid} is dead"
            else:
                age = time.time() - self._heartbeat_mtime()
                if age < self.stale_after_s:
                    raise RunLockedError(
                        f"run directory is locked by pid {pid} on "
                        f"{host!r} with a live heartbeat "
                        f"({age:.0f}s old < {self.stale_after_s:.0f}s); "
                        f"refusing takeover ({self.path})"
                    )
                reason = f"heartbeat stale ({age:.0f}s old)"

        # Stale: replace the lock atomically with our own claim.
        write_json_atomic(self.path, self._payload())
        if self.events is not None:
            self.events.emit(
                "lock_takeover", path=str(self.path), pid=os.getpid(), reason=reason
            )

    def _heartbeat_mtime(self) -> float:
        try:
            return self.path.stat().st_mtime
        except OSError:
            return 0.0

    def heartbeat(self) -> None:
        """Refresh the lock's mtime (cheap; call on checkpoint/phase)."""
        if not self._owned:
            return
        try:
            os.utime(self.path)
        except OSError:
            pass

    def release(self) -> None:
        """Drop the lock if we still own it (tolerates takeover/crash)."""
        if not self._owned:
            return
        self._owned = False
        try:
            holder = read_json(self.path)
            if isinstance(holder, dict) and holder.get("pid") != os.getpid():
                return  # someone legitimately took it over; leave theirs
        except (OSError, ValueError):
            pass
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "RunLock":
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


@dataclass
class RunManifest:
    """The versioned record of one run (see module docstring for layout)."""

    run_id: str
    command: str
    argv: list[str]
    args_digest: str
    code_version: str
    created_at: float
    status: str = "created"  # created | running | completed | interrupted | failed
    updated_at: float = 0.0
    exit_code: int | None = None
    signal: int | None = None
    wall_seconds: float = 0.0
    phases: list[dict[str, Any]] = field(default_factory=list)
    artifacts: dict[str, dict[str, Any]] = field(default_factory=dict)
    error: str | None = None

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": list(self.argv),
            "args_digest": self.args_digest,
            "code_version": self.code_version,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "status": self.status,
            "exit_code": self.exit_code,
            "signal": self.signal,
            "wall_seconds": self.wall_seconds,
            "phases": list(self.phases),
            "artifacts": dict(self.artifacts),
            "error": self.error,
        }

    @classmethod
    def from_jsonable(cls, payload: Any, source: str = "manifest") -> "RunManifest":
        if not isinstance(payload, dict):
            raise ResumeError(f"{source} is not a JSON object")
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            found = "no version" if version is None else f"version {version!r}"
            raise ResumeError(
                f"{source} has {found}; this version reads manifest "
                f"version {MANIFEST_VERSION}"
            )
        try:
            return cls(
                run_id=payload["run_id"],
                command=payload["command"],
                argv=list(payload["argv"]),
                args_digest=payload["args_digest"],
                code_version=payload.get("code_version", "?"),
                created_at=float(payload.get("created_at", 0.0)),
                status=payload.get("status", "created"),
                updated_at=float(payload.get("updated_at", 0.0)),
                exit_code=payload.get("exit_code"),
                signal=payload.get("signal"),
                wall_seconds=float(payload.get("wall_seconds", 0.0)),
                phases=list(payload.get("phases", [])),
                artifacts=dict(payload.get("artifacts", {})),
                error=payload.get("error"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ResumeError(f"{source} is malformed: {exc}") from exc


@dataclass
class ArtifactStatus:
    """One artifact's verification outcome."""

    path: str
    status: str  # ok | missing | corrupt
    detail: str = ""


@dataclass
class VerifyReport:
    """Outcome of re-checksumming a run directory's artifacts."""

    run_dir: Path
    artifacts: list[ArtifactStatus]
    manifest_ok: bool = True

    @property
    def clean(self) -> bool:
        return self.manifest_ok and all(a.status == "ok" for a in self.artifacts)

    def render(self) -> str:
        lines = [f"run {self.run_dir}: manifest {'ok' if self.manifest_ok else 'BAD'}"]
        for artifact in self.artifacts:
            suffix = f" ({artifact.detail})" if artifact.detail else ""
            lines.append(f"  {artifact.status:7s} {artifact.path}{suffix}")
        if not self.artifacts:
            lines.append("  (no registered artifacts)")
        lines.append("verdict: " + ("clean" if self.clean else "CORRUPTION DETECTED"))
        return "\n".join(lines)


class RunDirectory:
    """One run's durable home: manifest + lock + state + artifacts.

    Use :meth:`create` for a fresh run, :meth:`open` to resume or
    inspect an existing one; :meth:`supervise` brackets the actual work
    with lock acquisition, signal handling, phase accounting and
    manifest finalization.
    """

    def __init__(self, path: str | Path, manifest: RunManifest, events: EventBus | None = None) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.events = events
        self.lock = RunLock(self.path / LOCK_FILE, events=events)
        self._degraded = False
        self._started: float | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        command: str,
        argv: Sequence[str],
        events: EventBus | None = None,
    ) -> "RunDirectory":
        """Initialize a fresh run directory (manifest status ``created``)."""
        from .. import __version__

        path = Path(path)
        if (path / MANIFEST_FILE).exists():
            raise RunError(
                f"{path} already contains a run manifest; use resume, or "
                "choose a fresh directory"
            )
        run_id = f"{command}-{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid() % 100000:05d}"
        manifest = RunManifest(
            run_id=run_id,
            command=command,
            argv=list(argv),
            args_digest=digest(list(argv)),
            code_version=__version__,
            created_at=time.time(),
        )
        run = cls(path, manifest, events=events)
        (path / STATE_DIR).mkdir(parents=True, exist_ok=True)
        (path / ARTIFACT_DIR).mkdir(parents=True, exist_ok=True)
        run.save_manifest()
        return run

    @classmethod
    def open(cls, path: str | Path, events: EventBus | None = None) -> "RunDirectory":
        """Load an existing run directory (clear errors, never tracebacks)."""
        path = Path(path)
        manifest_path = path / MANIFEST_FILE
        if not manifest_path.exists():
            raise ResumeError(f"{path} is not a run directory (no {MANIFEST_FILE})")
        try:
            payload = read_json(manifest_path)
        except ValueError as exc:
            raise ResumeError(
                f"run manifest {manifest_path} is unreadable ({exc}); the "
                "directory cannot be resumed — `repro runs verify` it"
            ) from exc
        manifest = RunManifest.from_jsonable(payload, source=str(manifest_path))
        return cls(path, manifest, events=events)

    # -- paths ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_FILE

    @property
    def state_dir(self) -> Path:
        return self.path / STATE_DIR

    @property
    def artifact_dir(self) -> Path:
        return self.path / ARTIFACT_DIR

    @property
    def journal_path(self) -> Path:
        """The run's durable event journal (``events.jsonl``).

        Lives at the run root, next to the manifest — deliberately
        outside ``state/``/``artifacts/`` so terminal transitions never
        checksum it (a resume legitimately appends to it).
        """
        return self.path / JOURNAL_FILE

    # -- manifest persistence -------------------------------------------

    def save_manifest(self) -> None:
        """Atomically persist the manifest; degrade on sick storage."""
        self.manifest.updated_at = time.time()
        if self._started is not None:
            self.manifest.wall_seconds += time.time() - self._started
            self._started = time.time()
        if self._degraded:
            return
        try:
            write_json_atomic(self.manifest_path, self.manifest.to_jsonable(), indent=2)
        except OSError as exc:
            if not is_storage_error(exc):
                raise
            self._degraded = True
            if self.events is not None:
                self.events.emit(
                    "storage_degraded",
                    tier="manifest",
                    path=str(self.manifest_path),
                    reason=f"manifest save failed ({exc}); continuing in memory",
                )
        self.lock.heartbeat()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Acquire the lock and mark the run ``running``."""
        self.lock.events = self.events
        self.lock.acquire()
        self._started = time.time()
        self.manifest.status = "running"
        self.manifest.exit_code = None
        self.manifest.signal = None
        self.manifest.error = None
        self.save_manifest()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Record one named phase's progress in the manifest.

        Re-entering a phase on resume reuses (and re-opens) its entry,
        so the manifest shows each phase once with cumulative wall time.
        """
        entry = next((p for p in self.manifest.phases if p["name"] == name), None)
        if entry is None:
            entry = {"name": name, "status": "running", "seconds": 0.0}
            self.manifest.phases.append(entry)
        else:
            entry["status"] = "running"
        self.save_manifest()
        started = time.perf_counter()
        try:
            yield
        except BaseException:
            entry["status"] = "interrupted"
            entry["seconds"] += time.perf_counter() - started
            self.save_manifest()
            raise
        entry["status"] = "done"
        entry["seconds"] += time.perf_counter() - started
        self.save_manifest()

    def record_artifact(self, file_path: str | Path, save: bool = True) -> None:
        """Register one produced file: relative path + SHA-256 + size."""
        file_path = Path(file_path)
        try:
            relative = str(file_path.relative_to(self.path))
        except ValueError:
            relative = str(file_path)
        self.manifest.artifacts[relative] = {
            "sha256": file_sha256(file_path),
            "bytes": file_path.stat().st_size,
        }
        if save:
            self.save_manifest()

    def _record_state_files(self) -> None:
        """Checksum the run's durable state (checkpoints, artifacts).

        Called at every terminal transition so ``runs verify`` can later
        re-checksum exactly what this run left behind.  The SQLite cache
        is deliberately excluded: it is legitimately rewritten by other
        runs sharing the directory and defends itself row-by-row.
        """
        for directory in (self.state_dir, self.artifact_dir):
            if not directory.exists():
                continue
            for file_path in sorted(directory.iterdir()):
                if file_path.is_file() and file_path.suffix in (".json", ".txt"):
                    try:
                        self.record_artifact(file_path, save=False)
                    except OSError:
                        continue

    def attach_engine(self, bus: EventBus) -> None:
        """Mirror engine progress into the run records.

        Subscribes to the engine's event bus: ``checkpoint`` events
        refresh the lock heartbeat (a checkpointing run is a live run),
        and ``phase_start``/``phase_end`` mirror the engine's phase
        bracketing into the manifest's phase progress.
        """

        def on_event(event: str, payload: dict) -> None:
            if event == "checkpoint":
                self.lock.heartbeat()
            elif event == "phase_start":
                self._phase_update(payload.get("name", "?"), "running", 0.0)
            elif event == "phase_end":
                self._phase_update(
                    payload.get("name", "?"), "done", payload.get("seconds", 0.0)
                )

        bus.subscribe(on_event)

    def _phase_update(self, name: str, status: str, seconds: float) -> None:
        entry = next((p for p in self.manifest.phases if p["name"] == name), None)
        if entry is None:
            entry = {"name": name, "status": status, "seconds": 0.0}
            self.manifest.phases.append(entry)
        entry["status"] = status
        entry["seconds"] += seconds
        self.save_manifest()

    def _close_open_phases(self, status: str) -> None:
        for entry in self.manifest.phases:
            if entry.get("status") == "running":
                entry["status"] = status

    def finish(self, exit_code: int = 0) -> None:
        self.manifest.status = "completed"
        self.manifest.exit_code = exit_code
        self._record_state_files()
        self.save_manifest()
        self.lock.release()

    def interrupted(self, signum: int) -> int:
        """Mark the run interrupted; returns the (distinct) exit code."""
        code = interrupt_exit_code(signum)
        self.manifest.status = "interrupted"
        self.manifest.signal = int(signum)
        self.manifest.exit_code = code
        self._close_open_phases("interrupted")
        self._record_state_files()
        self.save_manifest()
        self.lock.release()
        return code

    def failed(self, error: str, exit_code: int = 2) -> None:
        self.manifest.status = "failed"
        self.manifest.error = error
        self.manifest.exit_code = exit_code
        self._close_open_phases("failed")
        self._record_state_files()
        self.save_manifest()
        self.lock.release()

    def supervise(self, coordinator: ShutdownCoordinator) -> "_Supervision":
        """Bracket the run's work: ``with run.supervise(coord): work()``."""
        return _Supervision(self, coordinator)

    # -- integrity ------------------------------------------------------

    def verify(self, quarantine: bool = False) -> VerifyReport:
        """Re-checksum every registered artifact; report, don't crash.

        ``quarantine=True`` additionally moves corrupt artifacts aside
        (``<name>.corrupt``) so a later resume cannot consume them.
        """
        statuses: list[ArtifactStatus] = []
        for relative, meta in sorted(self.manifest.artifacts.items()):
            target = self.path / relative
            if not target.exists():
                statuses.append(ArtifactStatus(relative, "missing"))
                continue
            try:
                actual = file_sha256(target)
            except OSError as exc:
                statuses.append(ArtifactStatus(relative, "corrupt", f"unreadable: {exc}"))
                continue
            expected = meta.get("sha256")
            if expected is not None and actual != expected:
                detail = f"sha256 {actual[:12]}… != recorded {str(expected)[:12]}…"
                if quarantine:
                    quarantined = quarantine_file(target)
                    detail += f"; quarantined to {quarantined.name}"
                    if self.events is not None:
                        self.events.emit(
                            "quarantine",
                            tier="artifact",
                            path=str(quarantined),
                            reason="artifact failed its checksum",
                        )
                statuses.append(ArtifactStatus(relative, "corrupt", detail))
            else:
                statuses.append(ArtifactStatus(relative, "ok"))
        return VerifyReport(run_dir=self.path, artifacts=statuses)


class _Supervision:
    """Context manager pairing a run directory with signal handling."""

    def __init__(self, run: RunDirectory, coordinator: ShutdownCoordinator) -> None:
        self.run = run
        self.coordinator = coordinator

    def __enter__(self) -> RunDirectory:
        self.coordinator.install()
        try:
            self.run.start()
        except BaseException:
            self.coordinator.uninstall()
            raise
        return self.run

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        try:
            if exc is None:
                with self.coordinator.shield():
                    self.run.finish()
            elif isinstance(exc, RunInterrupted):
                with self.coordinator.shield():
                    self.run.interrupted(exc.signum)
            else:
                with self.coordinator.shield():
                    self.run.failed(f"{type(exc).__name__}: {exc}")
        finally:
            self.coordinator.uninstall()
        return False  # never swallow; the CLI maps exceptions to exit codes


def list_runs(root: str | Path) -> list[tuple[Path, RunManifest | None]]:
    """Every run directory under ``root`` (newest first).

    Directories whose manifest is unreadable are included with ``None``
    so `runs list` can surface damage instead of hiding it.
    """
    root = Path(root)
    if not root.exists():
        return []
    found: list[tuple[Path, RunManifest | None]] = []
    for candidate in sorted(root.iterdir()):
        manifest_path = candidate / MANIFEST_FILE
        if not manifest_path.exists():
            continue
        try:
            manifest = RunManifest.from_jsonable(
                read_json(manifest_path), source=str(manifest_path)
            )
        except (ResumeError, ValueError, OSError):
            manifest = None
        found.append((candidate, manifest))
    found.sort(
        key=lambda item: item[1].updated_at if item[1] is not None else 0.0,
        reverse=True,
    )
    return found
