"""Deterministic content hashing for evaluation requests.

The result cache and the checkpoint/resume machinery both need a stable
identity for "this exact simulation": the same ``(WorkloadProfile,
CoreConfig, technology, simulator)`` tuple must map to the same key in
every process, on every run, on every machine.  Python's built-in
``hash`` is salted per process and ``repr`` is not guaranteed stable, so
keys are derived instead from a *canonical encoding*:

* dataclasses become ``{"__type__": qualified-name, **fields}`` with the
  fields recursively encoded;
* floats are encoded through ``repr`` (the shortest round-tripping
  form — bit-exact and stable across platforms for IEEE doubles);
* numpy scalars are converted to their Python equivalents;
* mappings are sorted by key.

The canonical encoding is serialized as compact JSON and digested with
SHA-256.  A key therefore changes whenever *any* model input changes —
including a bump of the simulator's ``cache_version`` attribute, which is
how a simulator invalidates previously cached results after a model fix.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from typing import Any

from ..errors import EngineError

#: Bump when the canonical encoding itself changes (invalidates all keys).
ENCODING_VERSION = 1


def _type_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical(obj: Any) -> Any:
    """Recursively encode ``obj`` into a JSON-serializable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # float(obj) strips float subclasses (np.float64) down to the
        # plain IEEE double so their reprs don't leak the subtype name.
        return {"__float__": repr(float(obj))}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # A dataclass may list newly added fields in
        # ``__canonical_omit_defaults__``: such a field is omitted from
        # the encoding while it holds its default value, so growing a
        # type does not reshuffle the digests (cache keys, run
        # signatures, seeded fault schedules) of every value that
        # predates the field.  Non-default values always encode.
        omit = getattr(obj, "__canonical_omit_defaults__", ())
        encoded: dict[str, Any] = {"__type__": _type_name(obj)}
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if (
                field.name in omit
                and field.default is not dataclasses.MISSING
                and value == field.default
            ):
                continue
            encoded[field.name] = canonical(value)
        return encoded
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    # numpy scalars (and anything else exposing .item()) normalize to
    # their Python equivalents without importing numpy here.
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return canonical(item())
        except (TypeError, ValueError):
            pass
    raise EngineError(f"cannot canonically encode {_type_name(obj)}: {obj!r}")


def digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    payload = json.dumps(
        [ENCODING_VERSION, *(canonical(p) for p in parts)],
        separators=(",", ":"),
        sort_keys=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Per-benchmark seed strides.  Exploration seeds are derived from one
#: base seed so that every (workload, refinement round, restart) gets a
#: distinct, stable RNG stream; the strides keep the derived seeds of a
#: paper-scale run (tens of workloads, a few rounds, a few restarts)
#: disjoint.  These constants — and :func:`derive_seed` — are the single
#: source of truth; xp-scalar, the clock sweep and the multi-start
#: search all derive their seeds here.
ROUND_SEED_STRIDE = 1000
RESTART_SEED_STRIDE = 7919  # the 1000th prime; far outside any round block


def derive_seed(base: int, index: int = 0, round_no: int = 0, restart: int = 0) -> int:
    """Per-benchmark RNG seed: one base seed, three disjoint dimensions.

    ``index`` is the workload's position in its suite (or a sweep's grid
    position), ``round_no`` the cross-seeding refinement round (0 for
    the initial exploration), ``restart`` the independent-restart number
    (0 for the first/only start).  Purely arithmetic — no hashing — so
    seeds stay human-readable in logs and bit-compatible with the
    pre-helper derivations scattered across the explorers.
    """
    return base + ROUND_SEED_STRIDE * round_no + index + RESTART_SEED_STRIDE * restart


def unit_draw(*parts: Any) -> float:
    """Deterministic draw in ``[0, 1)`` from a tuple of labels.

    SHA-256 of the ``|``-joined string forms of ``parts`` — the shared
    primitive behind fault-plan scheduling and retry-backoff jitter: no
    global RNG state is consumed, and the same parts draw the same unit
    in every process on every platform.
    """
    payload = "|".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") / 2**64


def simulator_id(simulator: Any) -> str:
    """Stable identity of a simulator: qualified class name + cache version.

    Simulators may declare a ``cache_version`` class attribute; bumping it
    invalidates every cached result produced by earlier versions.  A
    simulator that is *bit-identical* to another implementation may
    declare ``cache_identity`` (a qualified class name) to share that
    implementation's cache entries — e.g. the vectorized
    ``BatchIntervalModel`` interoperates with scalar
    ``IntervalSimulator`` results because the differential suite proves
    their numbers equal.
    """
    identity = getattr(simulator, "cache_identity", None) or _type_name(simulator)
    return f"{identity}@{getattr(simulator, 'cache_version', 0)}"


@lru_cache(maxsize=512)
def _profile_digest(profile: Any) -> str:
    """Digest of one workload profile (memoized — profiles are few and
    frozen, and re-encoding one on every annealing step would dominate
    the key cost)."""
    return digest(profile)


def evaluation_key(
    profile: Any,
    config: Any,
    simulator: str = "",
    context: str = "",
) -> str:
    """Content key of one ``(workload, configuration)`` evaluation.

    ``simulator`` is a :func:`simulator_id` string; ``context`` carries
    any additional identity the caller wants folded in (the technology
    node's digest, typically).  Both are plain strings so callers can
    pre-compute them once per engine rather than per evaluation.
    """
    try:
        profile_part = _profile_digest(profile)
    except TypeError:  # unhashable profile subtype: skip memoization
        profile_part = digest(profile)
    return digest(profile_part, config, simulator, context)
