"""Engine throughput benchmark: the repo's in-tree perf trajectory.

``repro bench-engine`` measures configs/sec over one seeded
design-space walk four ways:

* the scalar golden model — an ``IntervalSimulator.evaluate`` loop;
* the vectorized batch path — ``BatchIntervalModel.evaluate_batch``
  across a batch-size sweep (full ``SimResult`` materialization);
* the array scoring path — ``BatchIntervalModel.ipt_batch`` across the
  same sweep (scores only, what batched search strategies consume);
* the engine's serial dispatch — ``EvaluationEngine.evaluate_many``
  with caching off, once with the scalar simulator and once with the
  batch model, so the speedup users actually see has a number too.

The report (``BENCH_engine.json``) is committed to the repository per
PR, so configs/sec and speedup carry a reviewable history; CI runs the
same harness as a smoke job and asserts the speedup floor.  Every run
also cross-checks batch against scalar results for exact equality —
a benchmark of a wrong model would be worse than no benchmark.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, TimingError
from ..sim.interval import IntervalSimulator
from ..sim.interval_batch import BatchIntervalModel
from ..tech import CactiModel, default_technology
from ..uarch.config import CoreConfig, DesignSpace, initial_configuration
from ..workloads.spec2000 import spec2000_profile
from .pool import EvaluationEngine

SCHEMA_VERSION = 1

DEFAULT_BATCH_SIZES = (16, 64, 256, 512)


def generate_configs(count: int, seed: int = 7) -> list[CoreConfig]:
    """A deterministic design-space walk of ``count`` configurations.

    The same seeded :class:`~repro.explore.moves.MoveGenerator` chain
    the annealer walks, so the benchmark exercises realistic parameter
    mixtures (untenable proposals are skipped, not counted).
    """
    from ..explore.moves import MoveGenerator  # explore imports engine; stay lazy

    tech = default_technology()
    moves = MoveGenerator(tech, CactiModel(tech), DesignSpace())
    rng = np.random.default_rng(seed)
    config = initial_configuration(tech)
    configs = [config]
    while len(configs) < count:
        try:
            config = moves.propose(config, rng)
        except (TimingError, ConfigurationError):
            continue
        configs.append(config)
    return configs


def _best_seconds(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-N wall time of ``fn`` (min is the standard noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _in_batches(
    configs: Sequence[CoreConfig], size: int
) -> list[Sequence[CoreConfig]]:
    return [configs[i : i + size] for i in range(0, len(configs), size)]


def run_engine_bench(
    profile_name: str = "gzip",
    configs: int = 512,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 3,
    seed: int = 7,
) -> dict:
    """Run the full benchmark and return the report dict."""
    if configs < 2:
        raise ConfigurationError(f"need at least 2 configs, got {configs}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    sizes = sorted({int(s) for s in batch_sizes if 1 < int(s) <= configs})
    if not sizes:
        raise ConfigurationError(
            f"no usable batch sizes in {list(batch_sizes)} for {configs} configs"
        )
    profile = spec2000_profile(profile_name)
    walk = generate_configs(configs, seed=seed)
    n = len(walk)

    scalar = IntervalSimulator()
    batch = BatchIntervalModel()

    # Equivalence first: a fast wrong model must fail loudly, and the
    # pass doubles as warm-up for both paths (incl. the miss-rate memo).
    want = [scalar.evaluate(profile, c) for c in walk]
    got = batch.evaluate_batch(profile, walk)
    ipts = batch.ipt_batch(profile, walk)
    result_mismatches = sum(1 for w, g in zip(want, got) if w != g)
    score_mismatches = sum(
        1 for w, i in zip(want, ipts.tolist()) if w.ipt != i
    )
    equivalent = result_mismatches == 0 and score_mismatches == 0

    scalar_s = _best_seconds(
        lambda: [scalar.evaluate(profile, c) for c in walk], repeats
    )
    scalar_rate = n / scalar_s

    def sweep(evaluate: Callable[[Any, Sequence[CoreConfig]], Any]) -> list[dict]:
        rows = []
        for size in sizes:
            groups = _in_batches(walk, size)
            seconds = _best_seconds(
                lambda: [evaluate(profile, group) for group in groups], repeats
            )
            rate = n / seconds
            rows.append(
                {
                    "batch_size": size,
                    "configs_per_s": rate,
                    "speedup": rate / scalar_rate,
                }
            )
        return rows

    batch_rows = sweep(batch.evaluate_batch)
    scoring_rows = sweep(batch.ipt_batch)

    # Engine-level serial dispatch (cache off so simulation is timed,
    # not cache lookups): the scalar engine loops one evaluation per
    # pair, the batch engine takes the grouped fast path.
    pairs = [(profile, c) for c in walk]
    engine_scalar = EvaluationEngine(simulator=IntervalSimulator(), cache=None)
    engine_batch = EvaluationEngine(cache=None)  # default: BatchIntervalModel
    engine_scalar_s = _best_seconds(lambda: engine_scalar.evaluate_many(pairs), repeats)
    engine_batch_s = _best_seconds(lambda: engine_batch.evaluate_many(pairs), repeats)

    def best_row(rows: list[dict]) -> dict:
        return max(rows, key=lambda row: row["configs_per_s"])

    return {
        "schema": SCHEMA_VERSION,
        "profile": profile.name,
        "configs": n,
        "repeats": repeats,
        "seed": seed,
        "equivalence": {
            "equivalent": equivalent,
            "result_mismatches": result_mismatches,
            "score_mismatches": score_mismatches,
        },
        "scalar": {"configs_per_s": scalar_rate},
        "batch": batch_rows,
        "scoring": scoring_rows,
        "best": {
            "batch": best_row(batch_rows),
            "scoring": best_row(scoring_rows),
        },
        "engine": {
            "scalar_configs_per_s": n / engine_scalar_s,
            "batch_configs_per_s": n / engine_batch_s,
            "speedup": engine_scalar_s / engine_batch_s,
        },
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the report as stable, human-diffable JSON."""
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def format_report(report: dict) -> str:
    """The CLI summary: one line per measurement."""
    lines = [
        f"profile {report['profile']}, {report['configs']} configs, "
        f"best of {report['repeats']}",
        f"scalar: {report['scalar']['configs_per_s']:,.0f} configs/s",
    ]
    for label, rows in (("batch", report["batch"]), ("scoring", report["scoring"])):
        for row in rows:
            lines.append(
                f"{label} @{row['batch_size']}: "
                f"{row['configs_per_s']:,.0f} configs/s "
                f"({row['speedup']:.1f}x)"
            )
    engine = report["engine"]
    lines.append(
        f"engine serial dispatch: {engine['scalar_configs_per_s']:,.0f} -> "
        f"{engine['batch_configs_per_s']:,.0f} configs/s "
        f"({engine['speedup']:.1f}x)"
    )
    eq = report["equivalence"]
    lines.append(
        "equivalence: batch == scalar"
        if eq["equivalent"]
        else f"equivalence: FAILED ({eq['result_mismatches']} result, "
        f"{eq['score_mismatches']} score mismatches)"
    )
    return "\n".join(lines)
