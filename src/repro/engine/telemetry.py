"""Durable telemetry: the run journal, metrics registry and heartbeat.

Everything the engine announces on its :class:`~repro.engine.events.EventBus`
evaporates at process exit; this module makes the announcement durable
and measurable, so a three-hour pipeline run can be debugged *after* it
finished (or crashed):

* :class:`RunJournal` — an append-only JSONL journal of every bus event,
  one line per event with a monotonic sequence number and wall-clock
  timestamp.  Appends are flushed per line (a SIGKILL loses at most the
  line in flight), rotation is size-capped (``events.jsonl`` →
  ``events.jsonl.1`` …), and reopening a journal — a resumed run —
  recovers the last sequence number so numbering stays monotonic across
  attempts.  Storage failures degrade (warn once, keep computing),
  mirroring the manifest/cache tiers.
* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — a minimal metrics surface with log-scale
  histogram buckets, exportable as JSON or Prometheus textfile format
  (the ``--metrics-out`` flag).
* :class:`TelemetryCollector` — the standard registry wiring over one
  bus: evaluation counts, cache hit/miss, batch sizes, per-task
  evaluation latency and queue wait (from the pool's ``task_span``
  events), phase durations, retries, search timings.
* :class:`ProgressLine` — a lightweight single-line TTY heartbeat
  (``\\r``-rewritten, rate-limited) so interactive runs show progress
  without scrolling; inert on non-TTY streams.

Analysis of a written journal lives in :mod:`repro.engine.trace` (the
``repro trace`` CLI).  Telemetry is strictly passive: attaching or
detaching any of these subscribers never changes computed results.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import math
import os
import re
import secrets
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, TextIO

from .events import EventBus
from .io_atomic import is_storage_error, write_text_atomic

#: Journal file name inside a run directory.
JOURNAL_FILE = "events.jsonl"

#: Default journal rotation threshold (per file, not total).
DEFAULT_ROTATE_BYTES = 32 * 1024 * 1024

_ROTATED_RE = re.compile(r"\.(\d+)$")


def _jsonable(value: Any) -> Any:
    """Best-effort JSON fallback: telemetry must never raise on payloads."""
    return repr(value)


# ----------------------------------------------------------------------
# distributed trace context (W3C-traceparent-style)
# ----------------------------------------------------------------------

#: HTTP header carrying the trace context across the serve layer.
TRACEPARENT_HEADER = "traceparent"

#: Version prefix of the ``traceparent`` value we mint.
_TRACE_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def mint_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return secrets.token_hex(16)


def mint_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace: ``(trace_id, span_id)``.

    ``trace_id`` names the whole request tree (one client submit, every
    replica incarnation and store call it causes); ``span_id`` is the
    *sender's* current span, which the receiver records as its
    ``parent_span_id``.  The wire format is the W3C ``traceparent``
    shape, ``00-<trace_id>-<span_id>-01``.
    """

    trace_id: str
    span_id: str

    @classmethod
    def mint(cls) -> "TraceContext":
        return cls(trace_id=mint_trace_id(), span_id=mint_span_id())

    def child(self) -> "TraceContext":
        """Same trace, a freshly minted span id (the next hop's parent)."""
        return TraceContext(trace_id=self.trace_id, span_id=mint_span_id())

    def header(self) -> str:
        return f"{_TRACE_VERSION}-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Decode a ``traceparent`` header (None for absent/malformed).

    Malformed values are dropped rather than rejected: trace context is
    telemetry, and a bad header must never fail a job submission.
    """
    if not isinstance(value, str):
        return None
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    return TraceContext(trace_id=match.group(2), span_id=match.group(3))


_active_trace: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> TraceContext | None:
    """The trace context active on this thread/task, if any."""
    return _active_trace.get()


@contextlib.contextmanager
def activate_trace(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``context`` the ambient trace for the enclosed block.

    The serve layer wraps job execution in this so outbound calls made
    on the job's thread — the ``http:`` cache backend above all — can
    stamp the job's trace context onto their requests without plumbing
    it through every engine signature.
    """
    token = _active_trace.set(context)
    try:
        yield context
    finally:
        _active_trace.reset(token)


# ----------------------------------------------------------------------
# the durable event journal
# ----------------------------------------------------------------------


def journal_files(path: str | Path) -> list[Path]:
    """Every file of one journal, oldest first (rotations then current).

    ``path`` is the current journal file (``events.jsonl``); rotated
    predecessors are ``events.jsonl.1``, ``events.jsonl.2``, … in
    rotation order.
    """
    path = Path(path)
    rotated = []
    if path.parent.exists():
        for candidate in path.parent.iterdir():
            if not candidate.name.startswith(path.name + "."):
                continue
            match = _ROTATED_RE.search(candidate.name)
            if match is not None:
                rotated.append((int(match.group(1)), candidate))
    files = [p for _, p in sorted(rotated)]
    if path.exists():
        files.append(path)
    return files


class RunJournal:
    """Append-only JSONL journal of one run's event stream.

    Parameters
    ----------
    path:
        The journal file (conventionally ``<run-dir>/events.jsonl``).
        If it (or a rotated predecessor) already exists, sequence
        numbering continues from the last recorded event — a killed and
        resumed run yields one coherent journal.
    rotate_bytes:
        Size cap per journal file; exceeding it rotates the current file
        to ``<name>.<n>`` and starts a fresh one (sequence numbers keep
        counting — rotation is invisible to readers).
    context:
        Fields stamped onto *every* record (after the payload, which
        wins on key collisions).  The serve layer passes
        ``{trace_id, parent_span_id, replica_id}`` here so a journal's
        lines are attributable in a stitched fleet trace.

    Use :meth:`attach` to subscribe it to a bus (this also flips the
    bus's ``tracing`` flag on, telling the pool to ship per-task span
    telemetry home from workers), and :meth:`close` to flush and fsync.
    """

    def __init__(
        self,
        path: str | Path,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        context: dict[str, Any] | None = None,
    ) -> None:
        self.path = Path(path)
        self.rotate_bytes = max(int(rotate_bytes), 4096)
        self.context = dict(context or {})
        self._handle: TextIO | None = None
        self._size = 0
        self._degraded = False
        self._bus: EventBus | None = None
        self._seq = self._recover_seq()

    # -- recovery -------------------------------------------------------

    def _recover_seq(self) -> int:
        """Last sequence number already on disk (0 for a fresh journal)."""
        for file_path in reversed(journal_files(self.path)):
            seq = _last_seq_in(file_path)
            if seq is not None:
                return seq
        return 0

    @property
    def seq(self) -> int:
        """The last sequence number written (0 before any event)."""
        return self._seq

    @property
    def degraded(self) -> bool:
        """True once storage failed and the journal stopped writing."""
        return self._degraded

    # -- wiring ---------------------------------------------------------

    def attach(self, bus: EventBus) -> "RunJournal":
        """Subscribe to ``bus`` and enable fine-grained tracing on it."""
        self._bus = bus
        bus.subscribe(self._on_event)
        bus.tracing = True
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus (tracing stays as-is) and flush."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None
        self.close()

    # -- writing --------------------------------------------------------

    def _on_event(self, event: str, payload: dict) -> None:
        self.append(event, payload)

    def append(self, event: str, payload: dict | None = None) -> None:
        """Append one event as a JSON line (no-op once degraded)."""
        if self._degraded:
            return
        record: dict[str, Any] = {
            "seq": self._seq + 1,
            "ts": round(time.time(), 6),
            # The monotonic clock is what the fleet stitcher aligns on:
            # wall clocks step (NTP, VM migration), monotonic deltas
            # within one process never do.
            "mono": round(time.monotonic(), 6),
            "event": event,
        }
        for key, value in (payload or {}).items():
            if key not in record:
                record[key] = value
        for key, value in self.context.items():
            if key not in record:
                record[key] = value
        line = json.dumps(record, separators=(",", ":"), default=_jsonable) + "\n"
        try:
            if self._size + len(line) > self.rotate_bytes and self._size > 0:
                self._rotate()
            handle = self._ensure_handle()
            handle.write(line)
            handle.flush()
        except OSError as exc:
            self._degrade(exc)
            return
        self._seq += 1
        self._size += len(line)

    def _ensure_handle(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            self._size = self._handle.tell()
        return self._handle

    def _rotate(self) -> None:
        """Move the full journal aside and start a fresh file."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        existing = journal_files(self.path)
        next_index = len([p for p in existing if p != self.path]) + 1
        os.replace(self.path, self.path.with_name(f"{self.path.name}.{next_index}"))
        self._size = 0

    def _degrade(self, exc: OSError) -> None:
        """Storage went away: stop journaling, warn once, keep the run."""
        self._degraded = True
        try:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
        except OSError:
            pass
        self._handle = None
        reason = f"journal append failed ({exc}); telemetry disabled for this run"
        print(f"warning: {reason}", file=sys.stderr)
        if self._bus is not None and is_storage_error(exc):
            # Safe reentrancy: degraded is already set, so the journal
            # skips its own storage_degraded event.
            self._bus.emit(
                "storage_degraded", tier="journal", path=str(self.path), reason=reason
            )

    def sync(self) -> None:
        """Flush and fsync the journal (called at checkpoints/close)."""
        if self._handle is None or self._handle.closed:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            pass

    def close(self) -> None:
        """Flush, fsync and close the journal file (idempotent)."""
        self.sync()
        if self._handle is not None and not self._handle.closed:
            try:
                self._handle.close()
            except OSError:
                pass
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _last_seq_in(path: Path) -> int | None:
    """The last parsable event's ``seq`` in one journal file, if any.

    Reads only the file's tail; tolerates a torn final line (the crash
    case journals exist for) by falling back to earlier lines.
    """
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            handle.seek(max(0, size - 65536))
            tail = handle.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    for line in reversed(tail.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            seq = record.get("seq")
            if isinstance(seq, int):
                return seq
        except ValueError:
            continue
    return None


# ----------------------------------------------------------------------
# metrics: counters, gauges, log-scale histograms
# ----------------------------------------------------------------------


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: ``\\``, ``"`` and newline.

    The exposition format requires exactly these three escapes inside a
    quoted label value; everything else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(labels: dict[str, str] | None) -> str:
    """``{k="v",...}`` with escaped values ('' when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def series_key(name: str, labels: dict[str, str] | None = None) -> str:
    """Registry key of one series: the name plus its label suffix."""
    return name + _label_suffix(labels)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def to_jsonable(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind, "help": self.help, "value": self.value
        }
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def render_prometheus(self) -> str:
        return f"{series_key(self.name, self.labels)} {_fmt_num(self.value)}\n"


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def to_jsonable(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind, "help": self.help, "value": self.value
        }
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def render_prometheus(self) -> str:
        return f"{series_key(self.name, self.labels)} {_fmt_num(self.value)}\n"


def log_buckets(
    low: float = 1e-6, high: float = 1e3, per_decade: int = 2
) -> list[float]:
    """Logarithmically spaced bucket upper bounds spanning [low, high]."""
    if low <= 0 or high <= low or per_decade < 1:
        raise ValueError("log_buckets needs 0 < low < high and per_decade >= 1")
    steps = int(round(math.log10(high / low) * per_decade))
    return [round(low * 10 ** (i / per_decade), 12) for i in range(steps + 1)]


class Histogram:
    """A log-scale-bucketed distribution (latency-shaped by default).

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics);
    observations above the last bound land only in ``+Inf`` (the total
    count).  ``sum``/``count``/``min``/``max`` are tracked exactly.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = sorted(set(buckets)) if buckets is not None else log_buckets()
        self.counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            return
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_jsonable(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {_fmt_num(b): c for b, c in zip(self.bounds, self.counts)},
        }
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def _bucket_series(self, le: str) -> str:
        # `le` must come last by convention; sorted() would not keep it
        # there, so render the suffix by hand.
        inner = ",".join(
            f'{key}="{escape_label_value(value)}"'
            for key, value in sorted(self.labels.items())
        )
        inner = f'{inner},le="{le}"' if inner else f'le="{le}"'
        return f"{self.name}_bucket{{{inner}}}"

    def render_prometheus(self) -> str:
        suffix = _label_suffix(self.labels)
        lines = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            lines.append(f"{self._bucket_series(_fmt_num(bound))} {cumulative}")
        lines.append(f'{self._bucket_series("+Inf")} {self.count}')
        lines.append(f"{self.name}_sum{suffix} {_fmt_num(self.sum)}")
        lines.append(f"{self.name}_count{suffix} {self.count}")
        return "\n".join(lines) + "\n"


def _fmt_num(value: float) -> str:
    """Compact numeric rendering (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry:
    """A named collection of metrics with JSON and Prometheus export.

    Series are keyed by name plus (sorted, escaped) label suffix, so
    ``counter("x_total", labels={"tenant": "a"})`` and the unlabeled
    ``counter("x_total")`` are distinct series under one metric family;
    the Prometheus rendering emits the family's HELP/TYPE once.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(name, Counter, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(name, Gauge, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        key = series_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, help, buckets=buckets, labels=labels)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {key!r} is a {metric.kind}, not a histogram")
        return metric

    def _get_or_create(
        self, name: str, cls: type, help: str, labels: dict[str, str] | None = None
    ) -> Any:
        key = series_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help, labels=labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {key!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Any:
        return self._metrics.get(name)

    def to_jsonable(self) -> dict[str, Any]:
        return {name: metric.to_jsonable() for name, metric in self._metrics.items()}

    def render_prometheus(self) -> str:
        """Prometheus textfile-collector format (HELP/TYPE + samples)."""
        out = io.StringIO()
        seen_families: set[str] = set()
        for metric in self._metrics.values():
            if metric.name not in seen_families:
                seen_families.add(metric.name)
                if metric.help:
                    out.write(f"# HELP {metric.name} {metric.help}\n")
                out.write(f"# TYPE {metric.name} {metric.kind}\n")
            out.write(metric.render_prometheus())
        return out.getvalue()

    def write(self, path: str | Path) -> Path:
        """Persist the registry: ``.json`` paths get JSON, others
        Prometheus textfile format (atomic write either way)."""
        path = Path(path)
        if path.suffix == ".json":
            text = json.dumps(self.to_jsonable(), indent=2, default=_jsonable) + "\n"
        else:
            text = self.render_prometheus()
        return write_text_atomic(path, text)


# ----------------------------------------------------------------------
# snapshot merging (the fleet-aggregation primitive)
# ----------------------------------------------------------------------


def merge_metric_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge ``MetricsRegistry.to_jsonable()`` snapshots series-wise.

    Counters and gauges sum their values; histograms sum bucket-wise
    (non-cumulative per-bucket counts, as stored), sum their ``count``/
    ``sum`` and fold ``min``/``max``; ``mean`` is recomputed from the
    merged totals.  Series are matched by their full key — name plus
    label suffix — so per-tenant series merge with their twins only.
    ``repro fleet metrics`` is exactly this over N replicas' scrapes.
    """
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for key, entry in snapshot.items():
            if not isinstance(entry, dict):
                continue
            current = merged.get(key)
            if current is None:
                merged[key] = json.loads(json.dumps(entry))  # deep copy
                continue
            if current.get("kind") != entry.get("kind"):
                raise ValueError(
                    f"series {key!r} changes kind across snapshots "
                    f"({current.get('kind')} vs {entry.get('kind')})"
                )
            if entry.get("kind") == "histogram":
                current["count"] = int(current.get("count", 0)) + int(
                    entry.get("count", 0)
                )
                current["sum"] = float(current.get("sum", 0.0)) + float(
                    entry.get("sum", 0.0)
                )
                for side, fold in (("min", min), ("max", max)):
                    theirs = entry.get(side)
                    if theirs is not None:
                        ours = current.get(side)
                        current[side] = (
                            theirs if ours is None else fold(ours, theirs)
                        )
                current["mean"] = (
                    current["sum"] / current["count"] if current["count"] else 0.0
                )
                buckets = current.setdefault("buckets", {})
                for bound, count in (entry.get("buckets") or {}).items():
                    buckets[bound] = int(buckets.get(bound, 0)) + int(count)
            else:
                current["value"] = float(current.get("value", 0.0)) + float(
                    entry.get("value", 0.0)
                )
    return merged


def render_prometheus_snapshot(snapshot: dict[str, Any]) -> str:
    """Prometheus textfile rendering of a (possibly merged) JSON snapshot.

    The inverse-ish of :meth:`MetricsRegistry.to_jsonable`: reconstructs
    each series from its snapshot entry (labels are already baked into
    the series key) and renders the same exposition format the live
    registry would.
    """
    out = io.StringIO()
    seen_families: set[str] = set()
    for key, entry in snapshot.items():
        if not isinstance(entry, dict):
            continue
        family = key.split("{", 1)[0]
        suffix = key[len(family):]
        if family not in seen_families:
            seen_families.add(family)
            if entry.get("help"):
                out.write(f"# HELP {family} {entry['help']}\n")
            out.write(f"# TYPE {family} {entry.get('kind', 'untyped')}\n")
        if entry.get("kind") == "histogram":
            buckets = entry.get("buckets") or {}
            cumulative = 0
            inner = suffix[1:-1] if suffix else ""
            for bound in sorted(buckets, key=float):
                cumulative += int(buckets[bound])
                le = f'le="{bound}"'
                label_part = f"{inner},{le}" if inner else le
                out.write(f"{family}_bucket{{{label_part}}} {cumulative}\n")
            le = 'le="+Inf"'
            label_part = f"{inner},{le}" if inner else le
            out.write(
                f"{family}_bucket{{{label_part}}} {int(entry.get('count', 0))}\n"
            )
            out.write(f"{family}_sum{suffix} {_fmt_num(entry.get('sum', 0.0))}\n")
            out.write(f"{family}_count{suffix} {int(entry.get('count', 0))}\n")
        else:
            out.write(f"{key} {_fmt_num(entry.get('value', 0))}\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# the standard collector: bus events -> metrics
# ----------------------------------------------------------------------


class TelemetryCollector:
    """Populate a :class:`MetricsRegistry` from one bus's event stream.

    The counter set mirrors :class:`~repro.engine.events.EngineMetrics`
    (which stays the ``--stats`` renderer); the histograms are what the
    odometer cannot express — evaluation latency, queue wait, batch
    size, phase duration, search move latency.
    """

    def __init__(
        self, bus: EventBus | None = None, registry: MetricsRegistry | None = None
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._evaluations = r.counter(
            "repro_evaluations_total", "Fresh simulator invocations"
        )
        self._cache_hits = r.counter(
            "repro_cache_hits_total", "Result-cache lookups served from cache"
        )
        self._cache_misses = r.counter(
            "repro_cache_misses_total", "Result-cache lookups that simulated"
        )
        self._batches = r.counter(
            "repro_batches_total", "evaluate_many batch dispatches"
        )
        self._retries = r.counter("repro_retries_total", "Evaluation retries")
        self._timeouts = r.counter(
            "repro_task_timeouts_total", "Tasks that overran the per-task deadline"
        )
        self._pool_restarts = r.counter(
            "repro_pool_restarts_total", "Worker-pool rebuilds"
        )
        self._searches = r.counter(
            "repro_search_runs_total", "Design-space searches completed"
        )
        self._checkpoints = r.counter(
            "repro_checkpoints_total", "Checkpoint saves"
        )
        self._batch_size = r.histogram(
            "repro_batch_size",
            "Pairs requested per evaluate_many batch",
            buckets=[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096],
        )
        self._eval_latency = r.histogram(
            "repro_eval_latency_seconds",
            "Per-task evaluation latency measured inside workers",
        )
        self._queue_wait = r.histogram(
            "repro_queue_wait_seconds",
            "Delay between batch submission and task start in a worker",
        )
        self._phase_seconds = r.histogram(
            "repro_phase_seconds", "Wall time per completed phase"
        )
        self._search_seconds = r.histogram(
            "repro_search_seconds", "Wall time per design-space search"
        )
        self._move_latency = r.histogram(
            "repro_search_move_latency_seconds",
            "Mean per-move latency of timed searches",
        )
        if bus is not None:
            bus.subscribe(self.on_event)

    def on_event(self, event: str, payload: dict) -> None:
        if event == "evaluation":
            self._evaluations.inc(payload.get("count", 1))
        elif event == "cache_hit":
            self._cache_hits.inc(payload.get("count", 1))
        elif event == "cache_miss":
            self._cache_misses.inc(payload.get("count", 1))
        elif event == "batch":
            self._batches.inc()
            self._batch_size.observe(payload.get("size", 0))
        elif event == "retry":
            self._retries.inc()
        elif event == "task_timeout":
            self._timeouts.inc()
        elif event == "pool_restart":
            self._pool_restarts.inc()
        elif event == "checkpoint":
            self._checkpoints.inc()
        elif event == "phase_end":
            self._phase_seconds.observe(payload.get("seconds", 0.0))
        elif event == "task_span":
            seconds = payload.get("seconds")
            if seconds is not None:
                # A chunk span covers `items` evaluations; record the
                # per-evaluation latency so jobs=1 and jobs=N histograms
                # measure the same thing.
                items = max(int(payload.get("items", 1) or 1), 1)
                self._eval_latency.observe(seconds / items)
            wait = payload.get("queue_wait_s")
            if wait is not None:
                self._queue_wait.observe(max(float(wait), 0.0))
        elif event == "search_run":
            self._searches.inc()
            seconds = payload.get("seconds")
            if seconds is not None:
                self._search_seconds.observe(seconds)
                moves = max(int(payload.get("moves", 0) or 0), 1)
                self._move_latency.observe(seconds / moves)
        elif event == "strategy_timing":
            seconds = payload.get("seconds")
            if seconds is not None:
                self._search_seconds.observe(seconds)
                moves = max(int(payload.get("moves", 0) or 0), 1)
                self._move_latency.observe(seconds / moves)


# ----------------------------------------------------------------------
# TTY heartbeat
# ----------------------------------------------------------------------


class ProgressLine:
    """A rate-limited, single-line progress heartbeat for TTYs.

    Subscribes to a bus and rewrites one ``\\r``-terminated stderr line
    (current phase, evaluation count, cache hit rate, elapsed time) at
    most every ``interval`` seconds.  On a non-TTY stream every update
    is suppressed, so batch logs and tests never see it.  Call
    :meth:`close` to clear the line before normal output resumes.
    """

    def __init__(
        self,
        bus: EventBus,
        stream: TextIO | None = None,
        interval: float = 0.5,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._started = time.monotonic()
        self._last_write = 0.0
        self._phase = ""
        self._evaluations = 0
        self._hits = 0
        self._lookups = 0
        self._dirty = False
        self._width = 0
        self._bus = bus
        bus.subscribe(self._on_event)

    def _enabled(self) -> bool:
        try:
            return self.stream.isatty()
        except (AttributeError, ValueError):
            return False

    @property
    def active(self) -> bool:
        """True when the stream is a TTY (updates will actually render)."""
        return self._enabled()

    def _on_event(self, event: str, payload: dict) -> None:
        if event == "phase_start":
            self._phase = payload.get("name", "")
        elif event == "evaluation":
            self._evaluations += payload.get("count", 1)
        elif event == "cache_hit":
            count = payload.get("count", 1)
            self._hits += count
            self._lookups += count
        elif event == "cache_miss":
            self._lookups += count if (count := payload.get("count", 1)) else 0
        self._maybe_render()

    def _maybe_render(self) -> None:
        if not self._enabled():
            return
        now = time.monotonic()
        if now - self._last_write < self.interval:
            return
        self._last_write = now
        elapsed = now - self._started
        rate = f"{self._hits / self._lookups * 100:.0f}%" if self._lookups else "-"
        line = (
            f"[{self._phase or 'run'}] evals {self._evaluations} | "
            f"cache {rate} | {elapsed:.0f}s"
        )
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except OSError:
            pass
        self._dirty = True

    def close(self) -> None:
        """Clear the heartbeat line and unsubscribe."""
        self._bus.unsubscribe(self._on_event)
        if self._dirty and self._enabled():
            try:
                self.stream.write("\r" + " " * self._width + "\r")
                self.stream.flush()
            except OSError:
                pass
        self._dirty = False
