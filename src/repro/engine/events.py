"""Progress and metrics hooks for the evaluation engine.

The engine announces what it is doing through a tiny synchronous
:class:`EventBus`; anything — the CLI's ``--stats`` printer, a test
asserting "zero simulator invocations", a future dashboard — subscribes a
callback.  The bus deliberately has no queue or thread: callbacks run
inline on the emitting thread, so subscribers see events in exact
program order.

Event vocabulary (payload keys in parentheses):

``evaluation`` (``count``)
    ``count`` fresh simulator invocations were performed.
``cache_hit`` / ``cache_miss`` (``count``)
    Result-cache lookups resolved.
``batch`` (``size``, ``unique``, ``hits``)
    One ``evaluate_many`` call: total pairs requested, distinct missing
    keys simulated, pairs served from cache.
``phase_start`` / ``phase_end`` (``name``; ``seconds`` on end)
    Wall-time bracket around a named stage of a larger computation.
``fallback`` (``reason``)
    The engine degraded to serial execution (unpicklable work, pool
    creation failure, repeated worker deaths, ...).
``checkpoint`` (``path``)
    Exploration state was persisted.
``retry`` (``key``, ``attempt``, ``reason``, ``delay_s``)
    One evaluation failed (crash, hang/timeout, integrity violation,
    broken pool) and will be re-run after ``delay_s`` of backoff.
``task_timeout`` (``key``, ``timeout_s``)
    A task overran the retry policy's per-task deadline.
``pool_restart`` (``deaths``, ``reason``)
    The worker pool died and was rebuilt (``deaths`` is cumulative).
``quarantine`` (``tier``, ``reason``; ``key`` or ``path``)
    Corrupt persistent state (a cache row, the cache database, a
    checkpoint file, a run artifact) was isolated and the run continued
    without it.
``storage_degraded`` (``tier``, ``reason``; ``path`` when known)
    Storage became unavailable (disk full, read-only filesystem) and a
    persistence tier — result cache, checkpoint, run manifest — fell
    back to memory-only operation; the run keeps computing.
``lock_takeover`` (``path``, ``pid``, ``reason``)
    A run directory's lock was held by a dead or stalled process and
    was taken over.
``search_run`` (``strategy``, ``workload``, ``best_score``,
``evaluations``, ``moves``, ``accepted``, ``acceptance_rate``,
``plateau``, ``rollbacks``, ``stop_reason``)
    One design-space search finished: the convergence diagnostics of a
    :class:`~repro.search.SearchResult` (see
    :class:`~repro.search.SearchDiagnostics`).  Emitted by the parent
    process from returned results, so ``jobs=1`` and ``jobs=N`` report
    identical events.

:class:`EngineMetrics` is the standard subscriber: it aggregates the
counters every caller wants (evaluations, hit rate, per-phase wall time)
and renders a one-line summary for the CLI.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

Callback = Callable[[str, dict], Any]


class EventBus:
    """Synchronous publish/subscribe hub for engine progress events."""

    def __init__(self) -> None:
        self._subscribers: list[Callback] = []

    def subscribe(self, callback: Callback) -> Callback:
        """Register ``callback(event, payload)``; returns it for symmetry."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callback) -> None:
        """Remove a previously subscribed callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def emit(self, event: str, **payload: Any) -> None:
        """Deliver one event to every subscriber, in subscription order."""
        for callback in list(self._subscribers):
            callback(event, payload)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Bracket a code region with ``phase_start``/``phase_end`` events."""
        self.emit("phase_start", name=name)
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit("phase_end", name=name, seconds=time.perf_counter() - started)


class EngineMetrics:
    """Aggregated counters over one bus: the engine's odometer.

    ``evaluations`` counts *actual simulator invocations* (cache hits do
    not simulate, so they are excluded — this is the counter the
    redundancy tests assert on).  ``phase_seconds`` accumulates wall time
    per named phase.
    """

    def __init__(self, bus: EventBus | None = None) -> None:
        self.evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.fallbacks = 0
        self.checkpoints = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_restarts = 0
        self.quarantines = 0
        self.storage_degradations = 0
        self.lock_takeovers = 0
        self.searches = 0
        self.search_evaluations = 0
        self.search_plateau_max = 0
        self._acceptance_sum = 0.0
        self.searches_by_strategy: dict[str, int] = {}
        self.phase_seconds: dict[str, float] = {}
        if bus is not None:
            bus.subscribe(self._on_event)

    def _on_event(self, event: str, payload: dict) -> None:
        if event == "evaluation":
            self.evaluations += payload.get("count", 1)
        elif event == "cache_hit":
            self.cache_hits += payload.get("count", 1)
        elif event == "cache_miss":
            self.cache_misses += payload.get("count", 1)
        elif event == "batch":
            self.batches += 1
        elif event == "fallback":
            self.fallbacks += 1
        elif event == "checkpoint":
            self.checkpoints += 1
        elif event == "retry":
            self.retries += 1
        elif event == "task_timeout":
            self.timeouts += 1
        elif event == "pool_restart":
            self.pool_restarts += 1
        elif event == "quarantine":
            self.quarantines += 1
        elif event == "storage_degraded":
            self.storage_degradations += 1
        elif event == "lock_takeover":
            self.lock_takeovers += 1
        elif event == "search_run":
            self.searches += 1
            self.search_evaluations += payload.get("evaluations", 0)
            self.search_plateau_max = max(
                self.search_plateau_max, payload.get("plateau", 0)
            )
            self._acceptance_sum += payload.get("acceptance_rate", 0.0)
            strategy = payload.get("strategy", "?")
            self.searches_by_strategy[strategy] = (
                self.searches_by_strategy.get(strategy, 0) + 1
            )
        elif event == "phase_end":
            name = payload.get("name", "?")
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + payload.get("seconds", 0.0)
            )

    @property
    def lookups(self) -> int:
        """Total cache lookups observed."""
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from cache (0 when none)."""
        total = self.lookups
        return self.cache_hits / total if total else 0.0

    @property
    def mean_acceptance_rate(self) -> float:
        """Mean per-search acceptance rate (0 when no searches ran)."""
        return self._acceptance_sum / self.searches if self.searches else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
            "fallbacks": self.fallbacks,
            "checkpoints": self.checkpoints,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "quarantines": self.quarantines,
            "storage_degradations": self.storage_degradations,
            "lock_takeovers": self.lock_takeovers,
            "searches": self.searches,
            "search_evaluations": self.search_evaluations,
            "search_plateau_max": self.search_plateau_max,
            "mean_acceptance_rate": self.mean_acceptance_rate,
            "searches_by_strategy": dict(self.searches_by_strategy),
            "phase_seconds": dict(self.phase_seconds),
        }

    def summary(self) -> str:
        """Human-readable one-stop summary for the CLI's ``--stats``."""
        lines = [
            f"evaluations: {self.evaluations} simulated, "
            f"{self.cache_hits} cache hits "
            f"({self.hit_rate * 100:.1f}% hit rate over {self.lookups} lookups)",
        ]
        if self.searches:
            by_strategy = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(self.searches_by_strategy.items())
            )
            lines.append(
                f"searches: {self.searches} runs ({by_strategy}), "
                f"{self.search_evaluations} search evaluations, "
                f"mean acceptance {self.mean_acceptance_rate * 100:.1f}%, "
                f"longest plateau {self.search_plateau_max}"
            )
        for name, seconds in self.phase_seconds.items():
            lines.append(f"phase {name}: {seconds:.2f}s")
        if self.fallbacks:
            lines.append(f"serial fallbacks: {self.fallbacks}")
        if self.retries or self.timeouts or self.pool_restarts or self.quarantines:
            lines.append(
                f"resilience: {self.retries} retries, {self.timeouts} timeouts, "
                f"{self.pool_restarts} pool restarts, "
                f"{self.quarantines} quarantined"
            )
        if self.storage_degradations or self.lock_takeovers:
            lines.append(
                f"durability: {self.storage_degradations} storage degradations, "
                f"{self.lock_takeovers} lock takeovers"
            )
        return "\n".join(lines)
