"""Progress and metrics hooks for the evaluation engine.

The engine announces what it is doing through a tiny synchronous
:class:`EventBus`; anything — the CLI's ``--stats`` printer, a test
asserting "zero simulator invocations", the durable run journal
(:class:`~repro.engine.telemetry.RunJournal`) — subscribes a callback.
The bus deliberately has no queue or thread: callbacks run inline on the
emitting thread, so subscribers see events in exact program order.

The full event vocabulary (every event name and its payload keys) is
documented in ``docs/observability.md``; the bus itself does not
restrict names.  A raising subscriber never aborts the emitting code:
its exception is swallowed, a warning is printed once per subscriber,
and delivery continues to the remaining subscribers.

Beyond flat events, the bus carries **hierarchical spans**:
:meth:`EventBus.phase` and :meth:`EventBus.span` bracket a code region
with start/end events that carry stable ``trace``/``span``/``parent``
identifiers, so a subscriber (the journal) can reconstruct the nesting
tree of a whole run — including per-task spans stitched in from worker
processes by the pool (see :mod:`repro.engine.telemetry`).

:class:`EngineMetrics` is the standard subscriber: it aggregates the
counters every caller wants (evaluations, hit rate, per-phase wall time)
and renders a one-line summary for the CLI.
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

Callback = Callable[[str, dict], Any]


def new_trace_id() -> str:
    """A fresh trace identifier (unique per process + instant)."""
    return f"{os.getpid():05d}-{time.time_ns() & 0xFFFFFFFFFF:010x}"


class EventBus:
    """Synchronous publish/subscribe hub for engine progress events.

    The bus also owns the run's **trace context**: a ``trace_id`` naming
    this process's event stream and a stack of open spans.  Span
    identifiers are allocated in emission order (``s00001``, ``s00002``,
    ...), so they are stable for a given program order — two runs of the
    same deterministic computation produce the same span topology, and
    only timing fields differ.  ``tracing`` marks whether a durable
    subscriber (the run journal) wants fine-grained spans; the engine
    pool consults it before paying for worker-side span round-trips.
    """

    def __init__(self) -> None:
        self._subscribers: list[Callback] = []
        self._warned: set[int] = set()
        self.trace_id = new_trace_id()
        self.tracing = False
        self._span_stack: list[str] = []
        self._span_count = 0

    def subscribe(self, callback: Callback) -> Callback:
        """Register ``callback(event, payload)``; returns it for symmetry."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callback) -> None:
        """Remove a previously subscribed callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def emit(self, event: str, **payload: Any) -> None:
        """Deliver one event to every subscriber, in subscription order.

        Subscriber exceptions are isolated: a raising callback is warned
        about once (to stderr) and delivery continues — a sick stats
        printer or journal must never abort the engine mid-batch.
        """
        for callback in list(self._subscribers):
            try:
                callback(event, payload)
            except Exception as exc:
                marker = id(callback)
                if marker not in self._warned:
                    self._warned.add(marker)
                    print(
                        f"warning: event subscriber {callback!r} raised "
                        f"{type(exc).__name__}: {exc}; continuing without it "
                        "(warned once)",
                        file=sys.stderr,
                    )

    # -- spans ----------------------------------------------------------

    def next_span_id(self) -> str:
        """Allocate the next span identifier (stable in program order)."""
        self._span_count += 1
        return f"s{self._span_count:05d}"

    @property
    def current_span(self) -> str | None:
        """The innermost open span's id, or ``None`` outside all spans."""
        return self._span_stack[-1] if self._span_stack else None

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        _start_event: str = "span_start",
        _end_event: str = "span_end",
        **attrs: Any,
    ) -> Iterator[str]:
        """Bracket a code region as a hierarchical span.

        Emits ``span_start``/``span_end`` (payload: ``name``, ``span``,
        ``parent``, ``trace``, ``kind``, plus any ``attrs``; ``seconds``
        on end).  Nested spans parent automatically; yields the span id
        so callers can parent out-of-band work (worker tasks) under it.
        """
        span_id = self.next_span_id()
        parent = self.current_span
        self.emit(
            _start_event,
            name=name,
            span=span_id,
            parent=parent,
            trace=self.trace_id,
            kind=kind,
            **attrs,
        )
        self._span_stack.append(span_id)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            self._span_stack.pop()
            self.emit(
                _end_event,
                name=name,
                span=span_id,
                parent=parent,
                trace=self.trace_id,
                kind=kind,
                seconds=time.perf_counter() - started,
                **attrs,
            )

    def phase(self, name: str):
        """Bracket a code region with ``phase_start``/``phase_end`` events.

        A phase is a span of kind ``"phase"`` that keeps its historical
        event names, so existing subscribers (metrics, run manifests)
        are untouched while the journal gains the span identifiers.
        """
        return self.span(
            name, kind="phase", _start_event="phase_start", _end_event="phase_end"
        )


class EngineMetrics:
    """Aggregated counters over one bus: the engine's odometer.

    ``evaluations`` counts *actual simulator invocations* (cache hits do
    not simulate, so they are excluded — this is the counter the
    redundancy tests assert on).  ``phase_seconds`` accumulates wall time
    per named phase.
    """

    def __init__(self, bus: EventBus | None = None) -> None:
        self.evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.fallbacks = 0
        self.checkpoints = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_restarts = 0
        self.quarantines = 0
        self.storage_degradations = 0
        self.lock_takeovers = 0
        self.searches = 0
        self.search_evaluations = 0
        self.search_plateau_max = 0
        self._acceptance_sum = 0.0
        self.searches_by_strategy: dict[str, int] = {}
        self.phase_seconds: dict[str, float] = {}
        if bus is not None:
            bus.subscribe(self._on_event)

    def _on_event(self, event: str, payload: dict) -> None:
        if event == "evaluation":
            self.evaluations += payload.get("count", 1)
        elif event == "cache_hit":
            self.cache_hits += payload.get("count", 1)
        elif event == "cache_miss":
            self.cache_misses += payload.get("count", 1)
        elif event == "batch":
            self.batches += 1
        elif event == "fallback":
            self.fallbacks += 1
        elif event == "checkpoint":
            self.checkpoints += 1
        elif event == "retry":
            self.retries += 1
        elif event == "task_timeout":
            self.timeouts += 1
        elif event == "pool_restart":
            self.pool_restarts += 1
        elif event == "quarantine":
            self.quarantines += 1
        elif event == "storage_degraded":
            self.storage_degradations += 1
        elif event == "lock_takeover":
            self.lock_takeovers += 1
        elif event == "search_run":
            self.searches += 1
            self.search_evaluations += payload.get("evaluations", 0)
            self.search_plateau_max = max(
                self.search_plateau_max, payload.get("plateau", 0)
            )
            self._acceptance_sum += payload.get("acceptance_rate", 0.0)
            strategy = payload.get("strategy", "?")
            self.searches_by_strategy[strategy] = (
                self.searches_by_strategy.get(strategy, 0) + 1
            )
        elif event == "phase_end":
            name = payload.get("name", "?")
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + payload.get("seconds", 0.0)
            )

    @property
    def lookups(self) -> int:
        """Total cache lookups observed."""
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from cache (0 when none)."""
        total = self.lookups
        return self.cache_hits / total if total else 0.0

    @property
    def mean_acceptance_rate(self) -> float:
        """Mean per-search acceptance rate (0 when no searches ran)."""
        return self._acceptance_sum / self.searches if self.searches else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
            "fallbacks": self.fallbacks,
            "checkpoints": self.checkpoints,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "quarantines": self.quarantines,
            "storage_degradations": self.storage_degradations,
            "lock_takeovers": self.lock_takeovers,
            "searches": self.searches,
            "search_evaluations": self.search_evaluations,
            "search_plateau_max": self.search_plateau_max,
            "mean_acceptance_rate": self.mean_acceptance_rate,
            "searches_by_strategy": dict(self.searches_by_strategy),
            "phase_seconds": dict(self.phase_seconds),
        }

    def summary(self) -> str:
        """Human-readable one-stop summary for the CLI's ``--stats``."""
        lines = [
            f"evaluations: {self.evaluations} simulated, "
            f"{self.cache_hits} cache hits "
            f"({self.hit_rate * 100:.1f}% hit rate over {self.lookups} lookups)",
        ]
        if self.searches:
            by_strategy = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(self.searches_by_strategy.items())
            )
            lines.append(
                f"searches: {self.searches} runs ({by_strategy}), "
                f"{self.search_evaluations} search evaluations, "
                f"mean acceptance {self.mean_acceptance_rate * 100:.1f}%, "
                f"longest plateau {self.search_plateau_max}"
            )
        # Hottest phase first: sorted descending by wall time (ties by
        # name) so the line that matters leads, not insertion order.
        for name, seconds in sorted(
            self.phase_seconds.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"phase {name}: {seconds:.2f}s")
        if self.fallbacks:
            lines.append(f"serial fallbacks: {self.fallbacks}")
        if self.retries or self.timeouts or self.pool_restarts or self.quarantines:
            lines.append(
                f"resilience: {self.retries} retries, {self.timeouts} timeouts, "
                f"{self.pool_restarts} pool restarts, "
                f"{self.quarantines} quarantined"
            )
        if self.storage_degradations or self.lock_takeovers:
            lines.append(
                f"durability: {self.storage_degradations} storage degradations, "
                f"{self.lock_takeovers} lock takeovers"
            )
        return "\n".join(lines)
