"""Evaluation engine: the shared runtime under every exploration.

This package is the scaling substrate the ROADMAP's north star calls
for: all code that needs simulation results routes through one
:class:`~repro.engine.pool.EvaluationEngine`, which provides

* content-addressed result caching (:mod:`repro.engine.keys`,
  :mod:`repro.engine.cache`) — in memory, optionally persisted to SQLite;
* deduplicated, optionally process-parallel batch evaluation
  (:mod:`repro.engine.pool`);
* checkpoint/resume of long explorations
  (:mod:`repro.engine.checkpoint`);
* progress/metrics hooks (:mod:`repro.engine.events`);
* retry/timeout/backoff resilience and integrity checking
  (:mod:`repro.engine.resilience`) with a deterministic fault-injection
  harness for testing it (:mod:`repro.engine.faults`);
* durable run orchestration (:mod:`repro.engine.runs`): run directories
  with versioned manifests, exclusive locks with stale-lock takeover,
  cooperative SIGINT/SIGTERM shutdown and artifact integrity
  verification, on top of the atomic write-rename primitives of
  :mod:`repro.engine.io_atomic`;
* end-to-end observability (:mod:`repro.engine.telemetry`,
  :mod:`repro.engine.trace`): a durable JSONL event journal per run,
  hierarchical spans stitched across worker processes, a
  counters/gauges/histograms registry exportable as JSON or Prometheus
  textfiles, and the post-hoc analysis behind ``repro trace``.

See ``docs/engine.md`` for the key scheme, checkpoint format and
parallelism model, ``docs/resilience.md`` for the failure model,
``docs/runs.md`` for run directories and resume semantics, and
``docs/observability.md`` for the event vocabulary, journal schema and
trace CLI.
"""

from .cache import CacheStats, ResultCache
from .cache_backends import (
    CacheBackend,
    CacheBackendError,
    CacheCorruption,
    CacheUnavailable,
    DirectoryBackend,
    MemoryBackend,
    SQLiteBackend,
    backend_names,
    make_backend,
    register_backend,
)
from .checkpoint import CheckpointManager
from .events import EngineMetrics, EventBus
from .io_atomic import (
    file_sha256,
    is_storage_error,
    read_json,
    write_json_atomic,
    write_text_atomic,
)
from .runs import (
    RunDirectory,
    RunInterrupted,
    RunLock,
    RunManifest,
    ShutdownCoordinator,
    VerifyReport,
    interrupt_exit_code,
    list_runs,
)
from .faults import (
    CRASH,
    HANG,
    WRONG_RESULT,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
)
from .keys import (
    RESTART_SEED_STRIDE,
    ROUND_SEED_STRIDE,
    canonical,
    derive_seed,
    digest,
    evaluation_key,
    simulator_id,
    unit_draw,
)
from .pool import EvaluationEngine
from .resilience import ResultIntegrityError, RetryPolicy, validate_result
from .telemetry import (
    JOURNAL_FILE,
    TRACEPARENT_HEADER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProgressLine,
    RunJournal,
    TelemetryCollector,
    TraceContext,
    activate_trace,
    current_trace,
    escape_label_value,
    journal_files,
    merge_metric_snapshots,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
    render_prometheus_snapshot,
)
from .trace import (
    KNOWN_EVENTS,
    TraceSummary,
    chrome_trace,
    critical_path,
    read_events,
    slowest_tasks,
    summarize,
)
from .serialize import (
    config_from_jsonable,
    config_to_jsonable,
    simresult_from_jsonable,
    simresult_to_jsonable,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "CacheBackend",
    "CacheBackendError",
    "CacheCorruption",
    "CacheUnavailable",
    "DirectoryBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "backend_names",
    "make_backend",
    "register_backend",
    "CheckpointManager",
    "EngineMetrics",
    "EventBus",
    "file_sha256",
    "is_storage_error",
    "read_json",
    "write_json_atomic",
    "write_text_atomic",
    "RunDirectory",
    "RunInterrupted",
    "RunLock",
    "RunManifest",
    "ShutdownCoordinator",
    "VerifyReport",
    "interrupt_exit_code",
    "list_runs",
    "CRASH",
    "HANG",
    "WRONG_RESULT",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "ResultIntegrityError",
    "RetryPolicy",
    "validate_result",
    "RESTART_SEED_STRIDE",
    "ROUND_SEED_STRIDE",
    "canonical",
    "derive_seed",
    "digest",
    "evaluation_key",
    "simulator_id",
    "unit_draw",
    "EvaluationEngine",
    "JOURNAL_FILE",
    "TRACEPARENT_HEADER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressLine",
    "RunJournal",
    "TelemetryCollector",
    "TraceContext",
    "activate_trace",
    "current_trace",
    "escape_label_value",
    "journal_files",
    "merge_metric_snapshots",
    "mint_span_id",
    "mint_trace_id",
    "parse_traceparent",
    "render_prometheus_snapshot",
    "KNOWN_EVENTS",
    "TraceSummary",
    "chrome_trace",
    "critical_path",
    "read_events",
    "slowest_tasks",
    "summarize",
    "config_from_jsonable",
    "config_to_jsonable",
    "simresult_from_jsonable",
    "simresult_to_jsonable",
]
