"""Atomic, durable file writes — the one way bytes reach disk.

Every on-disk artifact this package produces (engine checkpoints, sweep
checkpoints, run manifests, golden/report JSON, comparison tables) goes
through :func:`write_text_atomic`: write to a temporary file in the
*same directory*, ``fsync`` it, then ``os.replace`` onto the final name.
A crash — power loss, OOM-kill, SIGKILL — at any instant leaves either
the previous complete file or the new complete file, never a torn one.
The temporary name includes the PID so two processes racing on the same
path cannot corrupt each other's staging file.

Storage failures are split into two classes:

* *corruption* (bad bytes already on disk) is the reader's problem and
  handled by quarantine (see :func:`repro.engine.resilience.quarantine_file`);
* *unavailability* (disk full, read-only filesystem, quota) is the
  writer's problem: :func:`is_storage_error` recognizes it so callers
  can degrade gracefully — warn, keep state in memory, keep computing —
  instead of aborting an hours-long run over a full ``/tmp``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..errors import EngineError

#: ``errno`` values that mean "the storage is unavailable", not "the
#: caller did something wrong": full disk, quota, read-only filesystem.
STORAGE_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EROFS, errno.EDQUOT, errno.EACCES, errno.EPERM}
)


def is_storage_error(exc: BaseException) -> bool:
    """True when ``exc`` is an OSError meaning storage is unavailable."""
    return isinstance(exc, OSError) and exc.errno in STORAGE_ERRNOS


def write_text_atomic(path: str | Path, text: str, fsync: bool = True) -> Path:
    """Atomically write ``text`` to ``path`` (write-temp + fsync + rename).

    Parent directories are created on demand.  On any failure the
    staging file is removed, so a full disk never litters ``*.tmp``
    files next to good artifacts.  With ``fsync`` (the default) the data
    is flushed to the device before the rename and the directory entry
    is flushed after it — the file survives power loss, not just a
    process crash.  Returns ``path`` as a :class:`~pathlib.Path`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)
    return path


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (best effort — not all platforms allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def dump_json(obj: Any, indent: int | None = None, sort_keys: bool = False) -> str:
    """Serialize ``obj`` as JSON text, raising :class:`EngineError` when
    the payload is not JSON-serializable (a clear message, not a
    ``TypeError`` traceback from deep inside a save path)."""
    try:
        text = json.dumps(obj, indent=indent, sort_keys=sort_keys,
                          separators=(",", ":") if indent is None else None)
    except (TypeError, ValueError) as exc:
        raise EngineError(f"payload is not JSON-serializable: {exc}") from exc
    return text + ("\n" if indent is not None else "")


def write_json_atomic(
    path: str | Path,
    obj: Any,
    indent: int | None = None,
    sort_keys: bool = False,
    fsync: bool = True,
) -> str:
    """Atomically write ``obj`` as JSON; returns the serialized text.

    The returned text is exactly what landed on disk, so callers can
    checksum it without re-reading the file.
    """
    text = dump_json(obj, indent=indent, sort_keys=sort_keys)
    write_text_atomic(path, text, fsync=fsync)
    return text


def read_json(path: str | Path) -> Any:
    """Parse a JSON file (plain read; callers decide how to treat damage)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def file_sha256(path: str | Path) -> str:
    """Streaming SHA-256 of a file's bytes (hex digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()
