"""Checkpoint/resume for long-running explorations.

The paper's exploration ran for ~three weeks; at that scale, losing the
run to a reboot is not an option.  :class:`CheckpointManager` persists an
exploration's progress as a single JSON document and restores it on the
next run, so ``customize_all`` (and any future long-running driver) can
resume mid-flight instead of starting over.

Format (one JSON object per file)::

    {
      "version": 2,             # checkpoint schema version
      "signature": "<sha256>",  # content hash of the run's inputs
      "checksum": "<sha256>",   # integrity hash of the state payload
      "state": { ... }          # caller-defined progress payload
    }

``signature`` is the crucial field: the caller derives it from everything
that determines the run's results (workload names, seed, schedule,
technology, simulator identity, ...).  :meth:`load` returns the stored
state only when the signature matches — a checkpoint from a different
run, an edited config, or an upgraded model is silently ignored rather
than resumed into inconsistency.

``version`` is the schema version of the file itself.  A file written by
a different schema (or a foreign JSON file that never was a checkpoint)
is never resumed; when the caller *explicitly* asked to resume
(``strict=True``), the mismatch raises a clear
:class:`~repro.errors.ResumeError` instead of silently starting fresh —
an unattended resume should fail loudly, not quietly discard weeks of
progress.  (Schema-1 files spelled the field ``format``; they are
recognized as version 1 and refused the same way.)

``checksum`` guards against *damage* rather than mismatch: it is the
SHA-256 of the state payload, recomputed on load.  A truncated, edited
or bit-rotted checkpoint — one that no longer parses, or parses but
fails its checksum — is **quarantined**: the file is moved aside as
``<name>.corrupt``, a ``quarantine`` event is emitted on the attached
bus, and the run starts fresh (even under ``strict``: torn state is
recoverable by recomputation, so it is never fatal).

Writes are atomic and durable (write-temp + fsync + ``os.replace``, see
:mod:`repro.engine.io_atomic`), so a crash mid-save leaves the previous
checkpoint intact.  A save that fails because storage is unavailable
(disk full, read-only filesystem) *degrades*: a ``storage_degraded``
event is emitted, further saves are skipped, and the run keeps computing
— a full disk costs resumability, never results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from ..errors import ResumeError
from .events import EventBus
from .io_atomic import dump_json, is_storage_error, write_text_atomic
from .resilience import quarantine_file

#: Bump when the checkpoint file layout changes incompatibly.
#: (v1 used a ``format`` key and no durability guarantees; v2 renamed it
#: to ``version`` when checkpoints joined the run-orchestration layer.)
SCHEMA_VERSION = 2


def _state_checksum(state_json: str) -> str:
    return hashlib.sha256(state_json.encode("utf-8")).hexdigest()


class CheckpointManager:
    """Atomic save/load of one run's progress state.

    Parameters
    ----------
    path:
        The checkpoint file.  Parent directories are created on save.
    events:
        Optional :class:`~repro.engine.events.EventBus` that quarantine
        and storage-degradation notifications are emitted on; drivers
        usually attach their engine's bus so ``--stats`` counts them.
    """

    def __init__(self, path: str | Path, events: EventBus | None = None) -> None:
        self.path = Path(path)
        self.events = events
        self._degraded = False

    @property
    def exists(self) -> bool:
        return self.path.exists()

    @property
    def degraded(self) -> bool:
        """True once a save failed on unavailable storage (saves stop)."""
        return self._degraded

    def save(self, signature: str, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` under the run ``signature``.

        On a full or read-only filesystem the save is skipped (after a
        one-time ``storage_degraded`` event): the exploration's results
        do not depend on the checkpoint, so the run continues without
        persistence rather than dying on ENOSPC.
        """
        if self._degraded:
            return
        state_json = dump_json(state)
        payload = dump_json(
            {
                "version": SCHEMA_VERSION,
                "signature": signature,
                "checksum": _state_checksum(state_json),
                "state": state,
            }
        )
        try:
            write_text_atomic(self.path, payload)
        except OSError as exc:
            if not is_storage_error(exc):
                raise
            self._degraded = True
            if self.events is not None:
                self.events.emit(
                    "storage_degraded",
                    tier="checkpoint",
                    path=str(self.path),
                    reason=f"checkpoint save failed ({exc}); continuing without persistence",
                )

    def load(self, signature: str, strict: bool = False) -> dict[str, Any] | None:
        """The stored state for this exact run, else ``None``.

        Missing files and signature mismatches return ``None`` (start
        fresh).  *Corrupt* files — unparseable JSON, a failing state
        checksum — additionally quarantine the file so the damage cannot
        be re-read forever: a bad checkpoint means "start fresh", never
        "crash the run it was meant to save".

        ``strict`` marks an *explicit* resume request: a file written by
        an older or foreign schema then raises
        :class:`~repro.errors.ResumeError` with a clear message instead
        of silently discarding the stored progress.
        """
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._quarantine(f"unparseable checkpoint ({exc})")
            return None
        if not isinstance(payload, dict):
            self._quarantine(f"checkpoint is not an object ({type(payload).__name__})")
            return None
        version = payload.get("version", payload.get("format"))
        if version != SCHEMA_VERSION:
            if strict:
                found = "no schema version" if version is None else f"schema version {version!r}"
                raise ResumeError(
                    f"cannot resume from {self.path}: file has {found}, this "
                    f"version reads schema {SCHEMA_VERSION}; delete the "
                    "checkpoint or rerun without resume to start fresh"
                )
            return None
        state = payload.get("state")
        if not isinstance(state, dict):
            self._quarantine("checkpoint state is missing or malformed")
            return None
        checksum = payload.get("checksum")
        if checksum is not None:  # absent on legacy (pre-checksum) files
            state_json = dump_json(state)
            if checksum != _state_checksum(state_json):
                self._quarantine("checkpoint state failed its checksum")
                return None
        if payload.get("signature") != signature:
            return None
        return state

    def _quarantine(self, reason: str) -> None:
        """Move the damaged file aside and report it."""
        quarantined = quarantine_file(self.path)
        if self.events is not None:
            self.events.emit(
                "quarantine", tier="checkpoint", path=str(quarantined), reason=reason
            )

    def clear(self) -> None:
        """Delete the checkpoint file (no-op if absent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
