"""Checkpoint/resume for long-running explorations.

The paper's exploration ran for ~three weeks; at that scale, losing the
run to a reboot is not an option.  :class:`CheckpointManager` persists an
exploration's progress as a single JSON document and restores it on the
next run, so ``customize_all`` (and any future long-running driver) can
resume mid-flight instead of starting over.

Format (one JSON object per file)::

    {
      "format": 1,              # file-format version
      "signature": "<sha256>",  # content hash of the run's inputs
      "checksum": "<sha256>",   # integrity hash of the state payload
      "state": { ... }          # caller-defined progress payload
    }

``signature`` is the crucial field: the caller derives it from everything
that determines the run's results (workload names, seed, schedule,
technology, simulator identity, ...).  :meth:`load` returns the stored
state only when the signature matches — a checkpoint from a different
run, an edited config, or an upgraded model is silently ignored rather
than resumed into inconsistency.

``checksum`` guards against *damage* rather than mismatch: it is the
SHA-256 of the state payload, recomputed on load.  A truncated, edited
or bit-rotted checkpoint — one that no longer parses, or parses but
fails its checksum — is **quarantined**: the file is moved aside as
``<name>.corrupt``, a ``quarantine`` event is emitted on the attached
bus, and the run starts fresh.  (Checkpoints written before checksums
existed lack the field and are accepted as legacy.)

Writes are atomic (temp file + ``os.replace``), so a crash mid-save
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..errors import EngineError
from .events import EventBus
from .resilience import quarantine_file

#: Bump when the checkpoint file layout changes incompatibly.
FORMAT_VERSION = 1


def _state_checksum(state_json: str) -> str:
    return hashlib.sha256(state_json.encode("utf-8")).hexdigest()


class CheckpointManager:
    """Atomic save/load of one run's progress state.

    Parameters
    ----------
    path:
        The checkpoint file.  Parent directories are created on save.
    events:
        Optional :class:`~repro.engine.events.EventBus` that quarantine
        notifications are emitted on; drivers usually attach their
        engine's bus so ``--stats`` counts checkpoint corruption.
    """

    def __init__(self, path: str | Path, events: EventBus | None = None) -> None:
        self.path = Path(path)
        self.events = events

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def save(self, signature: str, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` under the run ``signature``."""
        try:
            state_json = json.dumps(state, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise EngineError(f"checkpoint state is not JSON-serializable: {exc}") from exc
        payload = json.dumps(
            {
                "format": FORMAT_VERSION,
                "signature": signature,
                "checksum": _state_checksum(state_json),
                "state": state,
            },
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    def load(self, signature: str) -> dict[str, Any] | None:
        """The stored state for this exact run, else ``None``.

        Missing files, format mismatches and signature mismatches return
        ``None`` (start fresh).  *Corrupt* files — unparseable JSON, a
        failing state checksum — additionally quarantine the file so the
        damage cannot be re-read forever: a bad checkpoint means "start
        fresh", never "crash the run it was meant to save".
        """
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._quarantine(f"unparseable checkpoint ({exc})")
            return None
        if not isinstance(payload, dict):
            self._quarantine(f"checkpoint is not an object ({type(payload).__name__})")
            return None
        if payload.get("format") != FORMAT_VERSION:
            return None
        state = payload.get("state")
        if not isinstance(state, dict):
            self._quarantine("checkpoint state is missing or malformed")
            return None
        checksum = payload.get("checksum")
        if checksum is not None:  # absent on legacy (pre-checksum) files
            state_json = json.dumps(state, separators=(",", ":"))
            if checksum != _state_checksum(state_json):
                self._quarantine("checkpoint state failed its checksum")
                return None
        if payload.get("signature") != signature:
            return None
        return state

    def _quarantine(self, reason: str) -> None:
        """Move the damaged file aside and report it."""
        quarantined = quarantine_file(self.path)
        if self.events is not None:
            self.events.emit(
                "quarantine", tier="checkpoint", path=str(quarantined), reason=reason
            )

    def clear(self) -> None:
        """Delete the checkpoint file (no-op if absent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
