"""Checkpoint/resume for long-running explorations.

The paper's exploration ran for ~three weeks; at that scale, losing the
run to a reboot is not an option.  :class:`CheckpointManager` persists an
exploration's progress as a single JSON document and restores it on the
next run, so ``customize_all`` (and any future long-running driver) can
resume mid-flight instead of starting over.

Format (one JSON object per file)::

    {
      "format": 1,              # file-format version
      "signature": "<sha256>",  # content hash of the run's inputs
      "state": { ... }          # caller-defined progress payload
    }

``signature`` is the crucial field: the caller derives it from everything
that determines the run's results (workload names, seed, schedule,
technology, simulator identity, ...).  :meth:`load` returns the stored
state only when the signature matches — a checkpoint from a different
run, an edited config, or an upgraded model is silently ignored rather
than resumed into inconsistency.

Writes are atomic (temp file + ``os.replace``), so a crash mid-save
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..errors import EngineError

#: Bump when the checkpoint file layout changes incompatibly.
FORMAT_VERSION = 1


class CheckpointManager:
    """Atomic save/load of one run's progress state.

    Parameters
    ----------
    path:
        The checkpoint file.  Parent directories are created on save.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def save(self, signature: str, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` under the run ``signature``."""
        try:
            payload = json.dumps(
                {"format": FORMAT_VERSION, "signature": signature, "state": state},
                separators=(",", ":"),
            )
        except (TypeError, ValueError) as exc:
            raise EngineError(f"checkpoint state is not JSON-serializable: {exc}") from exc
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    def load(self, signature: str) -> dict[str, Any] | None:
        """The stored state for this exact run, else ``None``.

        Missing files, corrupt JSON, format mismatches and signature
        mismatches all return ``None``: a bad checkpoint means "start
        fresh", never "crash the run it was meant to save".
        """
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != FORMAT_VERSION:
            return None
        if payload.get("signature") != signature:
            return None
        state = payload.get("state")
        return state if isinstance(state, dict) else None

    def clear(self) -> None:
        """Delete the checkpoint file (no-op if absent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
