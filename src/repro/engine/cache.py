"""Content-addressed cache of simulation results.

The exploration workloads are pathologically repetitive: cross-seeding
re-evaluates every (workload, donor-configuration) pair that the final
Table-5 matrix fill then evaluates *again*, and every re-run of a
deterministic pipeline re-simulates the identical evaluation stream.
:class:`ResultCache` eliminates that waste by keying each
:class:`~repro.sim.metrics.SimResult` under its request's content hash
(:func:`repro.engine.keys.evaluation_key`).

Two tiers:

* an in-memory LRU front (bounded — annealing streams are mostly-unique,
  so an unbounded dict would grow without benefit);
* an optional SQLite file behind it, so a cache survives processes and
  can be shared across runs (``--cache-dir``).  SQLite is stdlib-only,
  atomic, and tolerant of concurrent readers; writes are batched and
  flushed on :meth:`close` / interpreter exit.

The cache is strictly *content*-addressed: a hit is bit-identical to the
simulation it replaces (see :mod:`repro.engine.serialize`), so cached and
uncached runs produce the same numbers.

The disk tier defends itself: every row carries a SHA-256 checksum of
its payload, verified on load.  A row that fails its checksum (or no
longer parses) is *quarantined* — deleted, counted, reported through the
owner's ``on_quarantine`` hook — and treated as a miss, so the entry is
simply re-simulated.  A database file corrupt beyond SQLite's tolerance
is moved aside (``<file>.corrupt``) and the cache continues memory-only.
A bad cache can cost time; it can never crash a run or alter a result.

Unavailable storage is not corruption: a write failing with "disk is
full" or on a read-only filesystem *degrades* the cache — the intact
database file is left in place, the connection is closed, the
``on_degrade`` hook is notified, and the cache continues memory-only.
The next run (with space again) picks the file back up.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import EngineError
from ..sim.metrics import SimResult
from .resilience import quarantine_file
from .serialize import simresult_from_jsonable, simresult_to_jsonable

#: Default bound on the in-memory tier.
DEFAULT_MEMORY_ENTRIES = 65_536

#: Disk writes are committed every this many puts (and on close).
_FLUSH_EVERY = 512


def _checksum(value: str) -> str:
    """Row checksum: SHA-256 of the serialized payload (hex, truncated)."""
    return hashlib.sha256(value.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    evictions: int = 0
    quarantined: int = 0
    degradations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Two-tier (memory + optional SQLite) store of :class:`SimResult`.

    Parameters
    ----------
    path:
        SQLite file for the persistent tier; ``None`` keeps the cache
        memory-only.  Parent directories are created on demand.
    max_memory_entries:
        LRU bound of the memory tier (``0`` disables the bound).
    """

    path: str | Path | None = None
    max_memory_entries: int = DEFAULT_MEMORY_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_memory_entries < 0:
            raise EngineError(
                f"max_memory_entries cannot be negative: {self.max_memory_entries}"
            )
        self._memory: OrderedDict[str, SimResult] = OrderedDict()
        self._conn: sqlite3.Connection | None = None
        self._pending = 0
        #: Called as ``on_quarantine(key_or_path, reason)`` whenever
        #: corrupt disk state is isolated (the engine wires this to its
        #: event bus).  ``"*"`` means the whole database file.
        self.on_quarantine: Callable[[str, str], None] | None = None
        #: Called as ``on_degrade(reason)`` when the disk tier is dropped
        #: because storage became unavailable (disk full, read-only fs);
        #: the database file itself is left intact.
        self.on_degrade: Callable[[str], None] | None = None
        if self.path is not None:
            self.path = Path(self.path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._connect()
            except sqlite3.DatabaseError as exc:
                self._quarantine_database(f"unreadable database ({exc})")

    def _connect(self) -> None:
        assert isinstance(self.path, Path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            "key TEXT PRIMARY KEY, value TEXT NOT NULL, checksum TEXT)"
        )
        # Databases written before checksumming existed lack the column;
        # add it in place (their rows verify as legacy, see get()).
        columns = {row[1] for row in self._conn.execute("PRAGMA table_info(results)")}
        if "checksum" not in columns:
            self._conn.execute("ALTER TABLE results ADD COLUMN checksum TEXT")
        self._conn.commit()

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> SimResult | None:
        """The cached result for ``key``, or ``None`` (counts a miss).

        Disk rows are integrity-checked on load: a checksum mismatch or
        unparseable payload quarantines the row (it is deleted and
        reported, never returned) and the lookup counts as a miss.
        """
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return hit
        if self._conn is not None:
            try:
                row = self._conn.execute(
                    "SELECT value, checksum FROM results WHERE key = ?", (key,)
                ).fetchone()
            except sqlite3.DatabaseError as exc:
                self._quarantine_database(f"database error on read ({exc})")
                row = None
            if row is not None:
                value, checksum = row
                if checksum is not None and checksum != _checksum(value):
                    self._quarantine_row(key, "checksum mismatch")
                else:
                    try:
                        result = simresult_from_jsonable(json.loads(value))
                    except (json.JSONDecodeError, EngineError) as exc:
                        self._quarantine_row(key, f"unparseable payload ({exc})")
                    else:
                        self._remember(key, result, store=False)
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: SimResult) -> None:
        """Store one result under its content key (write-through to disk)."""
        self._remember(key, result, store=True)
        self.stats.stores += 1

    def _remember(self, key: str, result: SimResult, store: bool) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        if self.max_memory_entries and len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
        if store and self._conn is not None:
            value = json.dumps(simresult_to_jsonable(result), separators=(",", ":"))
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (key, value, checksum) "
                    "VALUES (?, ?, ?)",
                    (key, value, _checksum(value)),
                )
            except sqlite3.DatabaseError as exc:
                self._dispose_disk_tier(exc, "write")
                return
            self._pending += 1
            if self._pending >= _FLUSH_EVERY:
                self.flush()

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    #: ``sqlite3`` error-message fragments that mean "storage unavailable",
    #: not "database corrupt" — these must never quarantine a healthy file.
    _STORAGE_MESSAGES = (
        "disk is full",
        "readonly database",
        "read-only",
        "disk i/o error",
        "unable to open database",
    )

    def _dispose_disk_tier(self, exc: sqlite3.DatabaseError, action: str) -> None:
        """A failed disk write: degrade on sick storage, quarantine corruption."""
        message = str(exc).lower()
        if any(fragment in message for fragment in self._STORAGE_MESSAGES):
            self._degrade(f"database {action} failed ({exc})")
        else:
            self._quarantine_database(f"database error on {action} ({exc})")

    def _degrade(self, reason: str) -> None:
        """Drop the disk tier but keep its (intact) file; go memory-only."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self._pending = 0
        self.stats.degradations += 1
        if self.on_degrade is not None:
            self.on_degrade(reason)

    def _report_quarantine(self, what: str, reason: str) -> None:
        self.stats.quarantined += 1
        if self.on_quarantine is not None:
            self.on_quarantine(what, reason)

    def _quarantine_row(self, key: str, reason: str) -> None:
        """Delete one corrupt row and carry on (the caller re-simulates)."""
        assert self._conn is not None
        try:
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            self._quarantine_database(f"database error during quarantine ({exc})")
            return
        self._report_quarantine(key, reason)

    def _quarantine_database(self, reason: str) -> None:
        """Move a corrupt database aside and continue memory-only."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self._pending = 0
        if self.path is not None:
            quarantine_file(self.path)
        self._report_quarantine("*", reason)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Commit pending disk writes."""
        if self._conn is not None and self._pending:
            try:
                self._conn.commit()
            except sqlite3.DatabaseError as exc:
                self._dispose_disk_tier(exc, "commit")
                return
            self._pending = 0

    def close(self) -> None:
        """Flush and release the disk connection (memory tier survives)."""
        if self._conn is not None:
            self.flush()
            self._conn.close()
            self._conn = None

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self._memory.clear()
        if self._conn is not None:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()
            self._pending = 0

    def __len__(self) -> int:
        """Number of distinct keys (disk tier included when present)."""
        if self._conn is None:
            return len(self._memory)
        self.flush()
        (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if self._conn is None:
            return False
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __del__(self) -> None:  # best-effort flush on GC
        try:
            self.close()
        except Exception:
            pass

    # Caches never travel across process boundaries with their disk
    # handle: a pickled copy (sent to a worker) starts memory-only and
    # empty, so workers cannot corrupt the parent's SQLite file.
    def __getstate__(self) -> dict:
        return {"max_memory_entries": self.max_memory_entries}

    def __setstate__(self, state: dict) -> None:
        self.path = None
        self.max_memory_entries = state["max_memory_entries"]
        self.stats = CacheStats()
        self._memory = OrderedDict()
        self._conn = None
        self._pending = 0
        self.on_quarantine = None
        self.on_degrade = None
