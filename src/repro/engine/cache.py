"""Content-addressed cache of simulation results.

The exploration workloads are pathologically repetitive: cross-seeding
re-evaluates every (workload, donor-configuration) pair that the final
Table-5 matrix fill then evaluates *again*, and every re-run of a
deterministic pipeline re-simulates the identical evaluation stream.
:class:`ResultCache` eliminates that waste by keying each
:class:`~repro.sim.metrics.SimResult` under its request's content hash
(:func:`repro.engine.keys.evaluation_key`).

Two tiers:

* an in-memory LRU front (bounded — annealing streams are mostly-unique,
  so an unbounded dict would grow without benefit);
* an optional persistent :class:`~repro.engine.cache_backends.CacheBackend`
  behind it, so a cache survives processes and can be *shared* — across
  runs (``--cache-dir``), across pool workers, and across `repro serve`
  replicas pointing at one store.  The default backend is the historical
  SQLite file (now WAL-journaled and busy-tolerant, safe for concurrent
  sibling processes); ``memory`` and ``file:<dir>`` backends register in
  :mod:`repro.engine.cache_backends`.

The cache is strictly *content*-addressed: a hit is bit-identical to the
simulation it replaces (see :mod:`repro.engine.serialize`), so cached and
uncached runs produce the same numbers.

The disk tier defends itself: every row carries a SHA-256 checksum of
its payload, verified on load.  A row that fails its checksum (or no
longer parses) is *quarantined* — deleted, counted, reported through the
owner's ``on_quarantine`` hook — and treated as a miss, so the entry is
simply re-simulated.  A store corrupt beyond the backend's tolerance
is moved aside (``<file>.corrupt``) and the cache continues memory-only.
A bad cache can cost time; it can never crash a run or alter a result.

Unavailable storage is not corruption: a backend raising
:class:`~repro.engine.cache_backends.CacheUnavailable` (disk full,
read-only filesystem, a sibling holding the database lock past the busy
budget) *degrades* the cache — the intact store is left in place, the
handle is closed, the ``on_degrade`` hook is notified, and the cache
continues memory-only.  The next run (with space again) picks the store
back up.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import EngineError
from ..sim.metrics import SimResult
from .cache_backends import (
    CacheBackend,
    CacheCorruption,
    CacheUnavailable,
    SQLiteBackend,
)
from .serialize import simresult_from_jsonable, simresult_to_jsonable

#: Default bound on the in-memory tier.
DEFAULT_MEMORY_ENTRIES = 65_536


def _checksum(value: str) -> str:
    """Row checksum: SHA-256 of the serialized payload (hex, truncated)."""
    return hashlib.sha256(value.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    evictions: int = 0
    quarantined: int = 0
    degradations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, int]:
        """Counter values as a plain dict (for delta accounting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "degradations": self.degradations,
        }


@dataclass
class ResultCache:
    """Two-tier (memory + optional persistent) store of :class:`SimResult`.

    Parameters
    ----------
    path:
        SQLite file for the persistent tier; ``None`` keeps the cache
        memory-only.  Parent directories are created on demand.  This is
        shorthand for ``backend=SQLiteBackend(path)``.
    max_memory_entries:
        LRU bound of the memory tier (``0`` disables the bound).
    backend:
        An explicit :class:`CacheBackend` for the persistent tier
        (mutually exclusive with ``path``).  Build one from a spec
        string with :func:`repro.engine.cache_backends.make_backend`.
    """

    path: str | Path | None = None
    max_memory_entries: int = DEFAULT_MEMORY_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    backend: CacheBackend | None = None

    def __post_init__(self) -> None:
        if self.max_memory_entries < 0:
            raise EngineError(
                f"max_memory_entries cannot be negative: {self.max_memory_entries}"
            )
        if self.path is not None and self.backend is not None:
            raise EngineError("pass either path or backend, not both")
        self._memory: OrderedDict[str, SimResult] = OrderedDict()
        #: Called as ``on_quarantine(key_or_path, reason)`` whenever
        #: corrupt disk state is isolated (the engine wires this to its
        #: event bus).  ``"*"`` means the whole store.
        self.on_quarantine: Callable[[str, str], None] | None = None
        #: Called as ``on_degrade(reason)`` when the disk tier is dropped
        #: because storage became unavailable (disk full, read-only fs);
        #: the store itself is left intact.
        self.on_degrade: Callable[[str], None] | None = None
        if self.path is not None:
            self.path = Path(self.path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self.backend = SQLiteBackend(self.path)
            except CacheUnavailable as exc:
                self.backend = None
                self._degrade(str(exc))
            except CacheCorruption as exc:
                self.backend = None
                self._quarantine_store_file(self.path, str(exc))
        elif self.backend is not None and not self.backend.persistent:
            # A memory backend is just a second dict behind the LRU; the
            # cache treats it as "no persistent tier" for stats purposes
            # but still writes through, so conformance semantics hold.
            pass
        if self.backend is not None and self.path is None:
            self.path = self.backend.location

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> SimResult | None:
        """The cached result for ``key``, or ``None`` (counts a miss).

        Backend rows are integrity-checked on load: a checksum mismatch
        or unparseable payload quarantines the row (it is deleted and
        reported, never returned) and the lookup counts as a miss.
        """
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return hit
        if self.backend is not None:
            try:
                row = self.backend.get(key)
            except CacheUnavailable as exc:
                self._degrade(str(exc))
                row = None
            except CacheCorruption as exc:
                self._quarantine_store(str(exc))
                row = None
            if row is not None:
                value, checksum = row
                if checksum is not None and checksum != _checksum(value):
                    self._quarantine_row(key, "checksum mismatch")
                else:
                    try:
                        result = simresult_from_jsonable(json.loads(value))
                    except (json.JSONDecodeError, EngineError) as exc:
                        self._quarantine_row(key, f"unparseable payload ({exc})")
                    else:
                        self._remember(key, result, store=False)
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: SimResult) -> None:
        """Store one result under its content key (write-through to disk)."""
        self._remember(key, result, store=True)
        self.stats.stores += 1

    def _remember(self, key: str, result: SimResult, store: bool) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        if self.max_memory_entries and len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
        if store and self.backend is not None:
            value = json.dumps(simresult_to_jsonable(result), separators=(",", ":"))
            try:
                self.backend.put(key, value, _checksum(value))
            except CacheUnavailable as exc:
                self._degrade(str(exc))
            except CacheCorruption as exc:
                self._quarantine_store(str(exc))

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Drop the disk tier but keep its (intact) store; go memory-only."""
        if self.backend is not None:
            try:
                self.backend.close()
            except (CacheUnavailable, CacheCorruption):
                pass
            self.backend = None
        self.stats.degradations += 1
        if self.on_degrade is not None:
            self.on_degrade(reason)

    def _report_quarantine(self, what: str, reason: str) -> None:
        self.stats.quarantined += 1
        if self.on_quarantine is not None:
            self.on_quarantine(what, reason)

    def _quarantine_row(self, key: str, reason: str) -> None:
        """Delete one corrupt row and carry on (the caller re-simulates)."""
        if self.backend is not None:
            try:
                self.backend.delete(key)
            except CacheUnavailable as exc:
                self._degrade(str(exc))
                return
            except CacheCorruption as exc:
                self._quarantine_store(f"{exc} (during row quarantine)")
                return
        self._report_quarantine(key, reason)

    def _quarantine_store(self, reason: str) -> None:
        """Move a corrupt store aside and continue memory-only."""
        backend, self.backend = self.backend, None
        if backend is not None:
            backend.quarantine()
        self._report_quarantine("*", reason)

    def _quarantine_store_file(self, path: Path, reason: str) -> None:
        """Quarantine a store whose backend never finished constructing."""
        from .resilience import quarantine_file

        quarantine_file(path)
        self._report_quarantine("*", reason)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Make accepted writes visible to other readers of the store."""
        if self.backend is not None:
            try:
                self.backend.flush()
            except CacheUnavailable as exc:
                self._degrade(str(exc))
            except CacheCorruption as exc:
                self._quarantine_store(str(exc))

    def close(self) -> None:
        """Flush and release the disk handle (memory tier survives)."""
        if self.backend is not None:
            self.backend.close()
            self.backend = None

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self._memory.clear()
        if self.backend is not None:
            try:
                self.backend.clear()
            except CacheUnavailable as exc:
                self._degrade(str(exc))
            except CacheCorruption as exc:
                self._quarantine_store(str(exc))

    def __len__(self) -> int:
        """Number of distinct keys (persistent tier included when present)."""
        if self.backend is None:
            return len(self._memory)
        try:
            self.flush()
            if self.backend is None:  # flush may have degraded the tier
                return len(self._memory)
            return len(self.backend)
        except CacheUnavailable as exc:
            self._degrade(str(exc))
            return len(self._memory)
        except CacheCorruption as exc:
            self._quarantine_store(str(exc))
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if self.backend is None:
            return False
        try:
            return key in self.backend
        except (CacheUnavailable, CacheCorruption):
            return False

    def __del__(self) -> None:  # best-effort flush on GC
        try:
            self.close()
        except Exception:
            pass

    # Caches never travel across process boundaries with their disk
    # handle: a pickled copy (sent to a worker) starts memory-only and
    # empty, so workers cannot corrupt the parent's store.
    def __getstate__(self) -> dict:
        return {"max_memory_entries": self.max_memory_entries}

    def __setstate__(self, state: dict) -> None:
        self.path = None
        self.max_memory_entries = state["max_memory_entries"]
        self.stats = CacheStats()
        self.backend = None
        self._memory = OrderedDict()
        self.on_quarantine = None
        self.on_degrade = None
