"""Deterministic fault injection for the evaluation engine.

Resilience code that is only exercised by real worker crashes is dead
code until the day it matters — and then it matters a lot.  This module
makes every failure mode the engine defends against *injectable on
demand and exactly reproducible*:

* a :class:`FaultPlan` decides, as a pure function of ``(seed, key,
  attempt)``, whether one evaluation attempt crashes, hangs, or returns
  a corrupted result.  The same plan replays the same faults in every
  process, on every run — a failing fault-matrix test can be re-run
  bit-for-bit;
* :func:`enact` performs the decided fault: raising
  :class:`InjectedCrash`, sleeping through the caller's deadline and
  raising :class:`InjectedHang`, or (with ``hard_crash``) killing the
  worker process outright so the parent really sees a broken pool;
* :func:`corrupt_result` mangles a :class:`~repro.sim.metrics.SimResult`
  in a way the engine's integrity validation is guaranteed to catch.

Plans are wired in through ``EvaluationEngine(faults=...)``, the CLI's
``--inject-faults`` flag, or the ``REPRO_INJECT_FAULTS`` environment
variable (see :meth:`FaultPlan.parse` for the spec format).

Faults are *bounded*: after ``max_faults_per_key`` injections on one
evaluation key the plan stops faulting that key, so a run with retries
enabled always completes — and, because retries re-run the genuine
deterministic simulator, completes with results bit-identical to a
fault-free run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

from ..errors import EngineError
from ..sim.metrics import SimResult
from .keys import unit_draw

#: Fault kinds a plan can inject.
CRASH = "crash"
HANG = "hang"
WRONG_RESULT = "wrong_result"
KINDS = (CRASH, HANG, WRONG_RESULT)

#: Exit status used by ``hard_crash`` worker deaths (diagnosable in CI logs).
CRASH_EXIT_CODE = 173


class InjectedFault(Exception):
    """Base class of all injected failures (never raised organically)."""


class InjectedCrash(InjectedFault):
    """An injected worker/task crash."""


class InjectedHang(InjectedFault):
    """An injected hang (the evaluation overran its deadline)."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of evaluation faults.

    Whether attempt ``n`` of evaluation ``key`` faults — and how — is a
    pure function of ``(seed, key, n)``: a SHA-256 draw in ``[0, 1)`` is
    compared against the cumulative ``crash``/``hang``/``wrong_result``
    rates.  Retries use fresh attempt numbers and therefore fresh draws.

    Parameters
    ----------
    seed:
        Replay seed; two plans with equal fields inject identical faults.
    crash, hang, wrong_result:
        Per-attempt injection probabilities (their sum must be <= 1).
    hang_seconds:
        How long an injected hang sleeps before raising.
    max_faults_per_key:
        Injection budget per evaluation key; once spent, that key runs
        clean, guaranteeing forward progress under retries.
    hard_crash:
        When true, a crash inside a worker process calls ``os._exit``
        (really breaking the pool) instead of raising
        :class:`InjectedCrash`.
    overrides:
        Explicit ``(key, attempt, kind)`` triples that fire regardless of
        rates or budget — for tests that target one exact evaluation.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    wrong_result: float = 0.0
    hang_seconds: float = 0.25
    max_faults_per_key: int = 2
    hard_crash: bool = False
    overrides: tuple[tuple[str, int, str], ...] = ()

    def __post_init__(self) -> None:
        for name, rate in (
            ("crash", self.crash), ("hang", self.hang),
            ("wrong_result", self.wrong_result),
        ):
            if not 0.0 <= rate <= 1.0:
                raise EngineError(f"fault rate {name} must be in [0, 1]: {rate}")
        if self.crash + self.hang + self.wrong_result > 1.0 + 1e-12:
            raise EngineError("fault rates must sum to at most 1")
        if self.hang_seconds < 0:
            raise EngineError(f"hang_seconds cannot be negative: {self.hang_seconds}")
        if self.max_faults_per_key < 0:
            raise EngineError(
                f"max_faults_per_key cannot be negative: {self.max_faults_per_key}"
            )
        for entry in self.overrides:
            if len(entry) != 3 or entry[2] not in KINDS:
                raise EngineError(f"malformed fault override: {entry!r}")

    # ------------------------------------------------------------------
    # decisions (pure)
    # ------------------------------------------------------------------

    def _draw(self, key: str, attempt: int) -> str | None:
        """The raw (budget-blind) fault drawn for one attempt."""
        unit = unit_draw(self.seed, key, attempt)
        if unit < self.crash:
            return CRASH
        if unit < self.crash + self.hang:
            return HANG
        if unit < self.crash + self.hang + self.wrong_result:
            return WRONG_RESULT
        return None

    def fault_for(self, key: str, attempt: int) -> str | None:
        """The fault (if any) injected into attempt ``attempt`` of ``key``.

        Overrides fire unconditionally; rate-drawn faults respect the
        per-key budget.  Attempts are assumed sequential per key (the
        engine retries with ``attempt + 1``), so the budget spent so far
        is recomputed purely from earlier draws.
        """
        for over_key, over_attempt, kind in self.overrides:
            if over_key == key and over_attempt == attempt:
                return kind
        spent = 0
        for earlier in range(attempt):
            if spent >= self.max_faults_per_key:
                break
            if self._draw(key, earlier) is not None:
                spent += 1
        if spent >= self.max_faults_per_key:
            return None
        return self._draw(key, attempt)

    def expected_faults(self, key: str, max_attempts: int = 64) -> list[str]:
        """The exact fault sequence a retrying caller will see for ``key``.

        Walks attempts 0, 1, ... collecting injected faults until the
        first clean attempt — the sequence of ``retry`` events a serial
        engine emits for this key (tests assert against it).
        """
        faults = []
        for attempt in range(max_attempts):
            kind = self.fault_for(key, attempt)
            if kind is None:
                return faults
            faults.append(kind)
        return faults

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(
            self.overrides
        ) or (self.crash + self.hang + self.wrong_result) > 0.0

    # ------------------------------------------------------------------
    # CLI / env spec
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--inject-faults`` spec string.

        Format: comma-separated ``key=value`` settings, e.g.
        ``"seed=7,crash=0.1,hang=0.05,wrong=0.02,hang-seconds=0.2,max-per-key=2,hard"``.
        Unknown settings are rejected so typos cannot silently disable
        injection.
        """
        kwargs: dict[str, object] = {}
        fields = {
            "seed": ("seed", int),
            "crash": ("crash", float),
            "hang": ("hang", float),
            "wrong": ("wrong_result", float),
            "wrong-result": ("wrong_result", float),
            "hang-seconds": ("hang_seconds", float),
            "max-per-key": ("max_faults_per_key", int),
        }
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if part == "hard":
                kwargs["hard_crash"] = True
                continue
            name, eq, raw = part.partition("=")
            if not eq or name not in fields:
                raise EngineError(
                    f"bad fault spec entry {part!r}; known: "
                    f"{', '.join(fields)}, hard"
                )
            attr, cast = fields[name]
            try:
                kwargs[attr] = cast(raw)
            except ValueError as exc:
                raise EngineError(f"bad fault spec value {part!r}: {exc}") from exc
        return cls(**kwargs)  # type: ignore[arg-type]


def enact(plan: FaultPlan, key: str, attempt: int, allow_exit: bool = False) -> str | None:
    """Perform the fault the plan schedules for this attempt, if any.

    ``crash`` raises :class:`InjectedCrash` — unless ``allow_exit`` is
    true (worker processes) and the plan asks for hard crashes, in which
    case the process dies for real.  ``hang`` sleeps ``hang_seconds``
    and then raises :class:`InjectedHang`: under a pool the parent's
    per-task timeout fires first, serially the raise itself models the
    missed deadline.  ``wrong_result`` is returned to the caller, which
    must corrupt the produced result via :func:`corrupt_result`.
    """
    kind = plan.fault_for(key, attempt)
    if kind == CRASH:
        if allow_exit and plan.hard_crash:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(f"injected crash (key {key[:12]}, attempt {attempt})")
    if kind == HANG:
        time.sleep(plan.hang_seconds)
        raise InjectedHang(f"injected hang (key {key[:12]}, attempt {attempt})")
    return kind


def corrupt_result(result: SimResult) -> SimResult:
    """A detectably-wrong copy of a result (workload mangled, IPT skewed)."""
    return replace(
        result,
        workload=f"!injected-corruption!{result.workload}",
        cycles=result.cycles * 1.375,
    )
