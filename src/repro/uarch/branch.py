"""Trace-driven branch predictors.

The exploration's design space fixes the predictor (Tables 3/4 carry no
predictor parameters), but the cycle-level simulator and the raw-
characteristic extraction both need real predictors: a 2-bit bimodal
table, a gshare global-history predictor, and a tournament combiner in
the style of SimpleScalar's ``comb`` predictor.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import is_power_of_two


class BimodalPredictor:
    """Per-PC table of 2-bit saturating counters."""

    def __init__(self, entries: int = 2048) -> None:
        if not is_power_of_two(entries):
            raise ConfigurationError(f"predictor entries must be a power of two: {entries}")
        self._mask = entries - 1
        self._table = bytearray([2]) * 1  # placeholder, replaced below
        self._table = bytearray([2] * entries)  # init weakly taken

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter with the resolved outcome."""
        idx = (pc >> 2) & self._mask
        state = self._table[idx]
        self._table[idx] = min(3, state + 1) if taken else max(0, state - 1)


class GsharePredictor:
    """Global-history XOR-indexed 2-bit counter table."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if not is_power_of_two(entries):
            raise ConfigurationError(f"predictor entries must be a power of two: {entries}")
        if history_bits < 1:
            raise ConfigurationError(f"history_bits must be >= 1: {history_bits}")
        self._mask = entries - 1
        self._table = bytearray([2] * entries)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        state = self._table[idx]
        self._table[idx] = min(3, state + 1) if taken else max(0, state - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class TournamentPredictor:
    """Bimodal/gshare combiner with a per-PC chooser table."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        self._bimodal = BimodalPredictor(entries)
        self._gshare = GsharePredictor(entries, history_bits)
        if not is_power_of_two(entries):
            raise ConfigurationError(f"predictor entries must be a power of two: {entries}")
        self._chooser = bytearray([2] * entries)
        self._mask = entries - 1

    def predict(self, pc: int) -> bool:
        use_gshare = self._chooser[(pc >> 2) & self._mask] >= 2
        return self._gshare.predict(pc) if use_gshare else self._bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        b_correct = self._bimodal.predict(pc) == taken
        g_correct = self._gshare.predict(pc) == taken
        idx = (pc >> 2) & self._mask
        if g_correct and not b_correct:
            self._chooser[idx] = min(3, self._chooser[idx] + 1)
        elif b_correct and not g_correct:
            self._chooser[idx] = max(0, self._chooser[idx] - 1)
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)


def measure_misprediction_rate(predictor, pcs, outcomes) -> float:
    """Run a predictor over a (pc, outcome) stream; return its miss rate."""
    if len(pcs) != len(outcomes):
        raise ConfigurationError("pcs and outcomes must have equal length")
    if len(pcs) == 0:
        return 0.0
    wrong = 0
    for pc, taken in zip(pcs, outcomes):
        pc = int(pc)
        taken = bool(taken)
        if predictor.predict(pc) != taken:
            wrong += 1
        predictor.update(pc, taken)
    return wrong / len(pcs)
