"""Set-associative cache simulation and the two-level data hierarchy.

Used by the cycle-level simulator (real address streams) and by tests
validating the analytical miss-rate model of
:class:`repro.workloads.profile.MemoryModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import clog2, is_power_of_two
from .config import CacheGeometry


class CacheSim:
    """An LRU set-associative cache over block addresses."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self._geometry = geometry
        self._block_shift = clog2(geometry.block_bytes)
        if not is_power_of_two(geometry.block_bytes):
            raise ConfigurationError("block size must be a power of two")
        self._set_mask = geometry.nsets - 1
        # Each set is an ordered list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(geometry.nsets)]
        self.accesses = 0
        self.misses = 0

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    def access(self, addr: int) -> bool:
        """Access a byte address; returns True on hit and updates LRU."""
        block = addr >> self._block_shift
        index = block & self._set_mask
        tag = block >> clog2(self._geometry.nsets) if self._geometry.nsets > 1 else block
        ways = self._sets[index]
        self.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self._geometry.assoc:
            ways.pop(0)
        return False

    @property
    def miss_rate(self) -> float:
        """Observed miss rate so far (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Clear counters without flushing contents."""
        self.accesses = 0
        self.misses = 0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency_cycles: int
    l1_hit: bool
    l2_hit: bool


class MemoryHierarchy:
    """L1 data cache backed by a unified L2 backed by flat memory."""

    def __init__(self, l1: CacheGeometry, l2: CacheGeometry, memory_cycles: int) -> None:
        if memory_cycles < 1:
            raise ConfigurationError(f"memory_cycles must be >= 1: {memory_cycles}")
        self.l1 = CacheSim(l1)
        self.l2 = CacheSim(l2)
        self._memory_cycles = memory_cycles

    def access(self, addr: int) -> AccessResult:
        """Look up an address; misses allocate in every level (inclusive)."""
        if self.l1.access(addr):
            return AccessResult(
                latency_cycles=self.l1.geometry.latency_cycles, l1_hit=True, l2_hit=False
            )
        if self.l2.access(addr):
            return AccessResult(
                latency_cycles=self.l1.geometry.latency_cycles
                + self.l2.geometry.latency_cycles,
                l1_hit=False,
                l2_hit=True,
            )
        return AccessResult(latency_cycles=self._memory_cycles, l1_hit=False, l2_hit=False)
