"""Superscalar core configuration schema and design space.

:class:`CoreConfig` carries exactly the knobs of the paper's Tables 3 and
4: clock period, dispatch/issue/commit width, ROB / issue-queue /
load-store-queue sizes, the minimum latency for awakening dependent
instructions (how deeply the wake-up/select loop is pipelined), the
pipeline depth of the scheduler/register-file and of the LSQ, the L1/L2
geometries with their access latencies in cycles, the front-end depth and
the memory access cycle count.

A configuration is *legal* for a technology node when every unit's access
time (from the CACTI analog) fits inside its stage budget:
``stages x clock - stages x latch`` (the paper's fitting rule), and the
front-end / memory cycle counts cover the node's fixed latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..tech import CactiModel, TechnologyNode
from ..tech.unitdelay import issue_queue_ns, l1_cache_ns, l2_cache_ns, lsq_ns, regfile_ns
from ..units import KB, MB, format_size, is_power_of_two

#: Legal core types.  ``"ooo"`` is the paper's out-of-order superscalar
#: (the historical default — every pre-existing configuration is one);
#: ``"inorder"`` is a stall-on-use in-order core in the lumos tradition:
#: the same sized units and timing rules, but no reordering window, so
#: the interval model clamps its effective window to the issue width and
#: the power/area models drop most of the scheduling-structure cost.
CORE_TYPES = ("ooo", "inorder")


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry and pipelined access latency of one cache level."""

    nsets: int
    assoc: int
    block_bytes: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.nsets):
            raise ConfigurationError(f"cache sets must be a power of two: {self.nsets}")
        if self.assoc < 1:
            raise ConfigurationError(f"associativity must be >= 1: {self.assoc}")
        if self.block_bytes < 8 or not is_power_of_two(self.block_bytes):
            raise ConfigurationError(
                f"block size must be a power of two >= 8: {self.block_bytes}"
            )
        if self.latency_cycles < 1:
            raise ConfigurationError(
                f"cache latency must be >= 1 cycle: {self.latency_cycles}"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity."""
        return self.nsets * self.assoc * self.block_bytes

    def describe(self) -> str:
        """Human-readable geometry, e.g. ``64K (1024x2x32, 2 cyc)``."""
        return (
            f"{format_size(self.capacity_bytes)} "
            f"({self.nsets}x{self.assoc}x{self.block_bytes}, "
            f"{self.latency_cycles} cyc)"
        )


@dataclass(frozen=True)
class CoreConfig:
    """One point in the superscalar design space (Table 3/4 schema)."""

    clock_period_ns: float
    width: int
    rob_size: int
    iq_size: int
    lsq_size: int
    wakeup_latency: int
    scheduler_depth: int
    lsq_depth: int
    frontend_stages: int
    memory_cycles: int
    l1: CacheGeometry
    l2: CacheGeometry
    core_type: str = "ooo"

    #: Keep historical content digests (cache keys, run signatures,
    #: seeded fault schedules) byte-stable: ``core_type`` joined the
    #: schema after PR 7, so at its default it is omitted from the
    #: canonical encoding (see :func:`repro.engine.keys.canonical`).
    __canonical_omit_defaults__ = frozenset({"core_type"})

    def __post_init__(self) -> None:
        if self.core_type not in CORE_TYPES:
            raise ConfigurationError(
                f"core type must be one of {CORE_TYPES}: {self.core_type!r}"
            )
        if self.clock_period_ns <= 0:
            raise ConfigurationError(f"clock period must be positive: {self.clock_period_ns}")
        if self.width < 1:
            raise ConfigurationError(f"width must be >= 1: {self.width}")
        for label, value in (
            ("rob_size", self.rob_size),
            ("iq_size", self.iq_size),
            ("lsq_size", self.lsq_size),
        ):
            if value < 8:
                raise ConfigurationError(f"{label} must be >= 8: {value}")
        if self.wakeup_latency < 0:
            raise ConfigurationError(f"wakeup latency cannot be negative: {self.wakeup_latency}")
        for label, value in (
            ("scheduler_depth", self.scheduler_depth),
            ("lsq_depth", self.lsq_depth),
            ("frontend_stages", self.frontend_stages),
        ):
            if value < 1:
                raise ConfigurationError(f"{label} must be >= 1: {value}")
        if self.memory_cycles < 1:
            raise ConfigurationError(f"memory_cycles must be >= 1: {self.memory_cycles}")
        if self.iq_size > self.rob_size:
            raise ConfigurationError(
                f"issue queue ({self.iq_size}) cannot exceed ROB ({self.rob_size})"
            )
        if self.l2.capacity_bytes < self.l1.capacity_bytes:
            raise ConfigurationError(
                f"L2 ({self.l2.capacity_bytes} B) smaller than L1 "
                f"({self.l1.capacity_bytes} B)"
            )

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency in GHz."""
        return 1.0 / self.clock_period_ns

    @property
    def pipeline_depth(self) -> int:
        """Approximate total pipeline depth in cycles (front end through
        scheduling); used as the misprediction-penalty backbone."""
        return self.frontend_stages + self.scheduler_depth + 1 + self.wakeup_latency

    def replace(self, **changes) -> "CoreConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    @property
    def is_inorder(self) -> bool:
        """True for the in-order core type."""
        return self.core_type == "inorder"

    def describe(self) -> str:
        """Multi-line human-readable rendering in Table 4's row order.

        The core type line only appears for non-default types, so every
        historical (out-of-order) rendering is byte-identical.
        """
        lines = []
        if self.core_type != "ooo":
            lines.append(f"core type            {self.core_type}")
        lines.extend(
            (
                f"memory cycles        {self.memory_cycles}",
                f"front-end stages     {self.frontend_stages}",
                f"width                {self.width}",
                f"ROB size             {self.rob_size}",
                f"issue queue size     {self.iq_size}",
                f"wakeup latency       {self.wakeup_latency}",
                f"scheduler depth      {self.scheduler_depth}",
                f"clock period (ns)    {self.clock_period_ns:.2f}",
                f"L1D                  {self.l1.describe()}",
                f"L2D                  {self.l2.describe()}",
                f"LSQ size             {self.lsq_size} (depth {self.lsq_depth})",
            )
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class DesignSpace:
    """Legal parameter ranges of the exploration (xp-scalar's universe)."""

    widths: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    rob_sizes: tuple[int, ...] = (32, 64, 128, 256, 512, 1024)
    iq_sizes: tuple[int, ...] = (16, 32, 64, 128)
    lsq_sizes: tuple[int, ...] = (32, 64, 128, 256)
    l1_nsets: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
    l1_assocs: tuple[int, ...] = (1, 2, 4, 8)
    l1_blocks: tuple[int, ...] = (8, 16, 32, 64, 128)
    l2_nsets: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
    l2_assocs: tuple[int, ...] = (1, 2, 4, 8, 16)
    l2_blocks: tuple[int, ...] = (32, 64, 128, 256, 512)
    l1_capacity_range: tuple[int, int] = (4 * KB, 512 * KB)
    l2_capacity_range: tuple[int, int] = (128 * KB, 8 * MB)
    max_wakeup_latency: int = 3
    max_scheduler_depth: int = 3
    max_lsq_depth: int = 4
    max_l1_cycles: int = 6
    max_l2_cycles: int = 34

    def l1_geometries(self) -> list[tuple[int, int, int]]:
        """All (nsets, assoc, block) triples within the L1 capacity range."""
        return self._geometries(
            self.l1_nsets, self.l1_assocs, self.l1_blocks, self.l1_capacity_range
        )

    def l2_geometries(self) -> list[tuple[int, int, int]]:
        """All (nsets, assoc, block) triples within the L2 capacity range."""
        return self._geometries(
            self.l2_nsets, self.l2_assocs, self.l2_blocks, self.l2_capacity_range
        )

    @staticmethod
    def _geometries(nsets, assocs, blocks, cap_range) -> list[tuple[int, int, int]]:
        lo, hi = cap_range
        result = [
            (s, a, b)
            for s in nsets
            for a in assocs
            for b in blocks
            if lo <= s * a * b <= hi
        ]
        if not result:
            raise ConfigurationError("design space contains no legal cache geometry")
        return result


def derived_frontend_stages(tech: TechnologyNode, clock_period_ns: float) -> int:
    """Front-end depth: stages needed to cover the node's fetch/decode/
    rename latency at this clock (each stage loses the latch overhead)."""
    usable = tech.usable_stage_time(clock_period_ns)
    if usable <= 0:
        raise ConfigurationError(
            f"clock {clock_period_ns} ns leaves no usable time past the latch"
        )
    return max(1, math.ceil(tech.frontend_latency_ns / usable - 1e-9))


def derived_memory_cycles(
    tech: TechnologyNode, clock_period_ns: float, l2_latency_cycles: int
) -> int:
    """Cycles for a load missing all cache levels: the L2 lookup that
    discovers the miss plus the flat memory latency."""
    return l2_latency_cycles + max(
        1, math.ceil(tech.memory_latency_ns / clock_period_ns - 1e-9)
    )


def unit_delays_ns(model: CactiModel, config: CoreConfig) -> dict[str, float]:
    """Access time of every sized unit of a configuration (ns)."""
    return {
        "l1": l1_cache_ns(model, config.l1.nsets, config.l1.assoc, config.l1.block_bytes),
        "l2": l2_cache_ns(model, config.l2.nsets, config.l2.assoc, config.l2.block_bytes),
        "issue_queue": issue_queue_ns(model, config.iq_size, config.width),
        "regfile": regfile_ns(model, config.rob_size, config.width),
        "lsq": lsq_ns(model, config.lsq_size),
    }


def unit_budgets_ns(tech: TechnologyNode, config: CoreConfig) -> dict[str, float]:
    """Stage budget of every sized unit (ns): stages x (clock - latch)."""
    clk = config.clock_period_ns
    return {
        "l1": tech.budget(clk, config.l1.latency_cycles),
        "l2": tech.budget(clk, config.l2.latency_cycles),
        "issue_queue": tech.budget(clk, 1 + config.wakeup_latency),
        "regfile": tech.budget(clk, config.scheduler_depth),
        "lsq": tech.budget(clk, config.lsq_depth),
    }


def validate_config(
    config: CoreConfig,
    tech: TechnologyNode,
    model: CactiModel | None = None,
    space: DesignSpace | None = None,
) -> None:
    """Raise :class:`ConfigurationError` unless the configuration is legal.

    Checks the paper's fitting rule for every sized unit, the front-end
    and memory cycle derivations, the clock range, and (optionally) the
    design-space parameter ranges.
    """
    model = model or CactiModel(tech)
    if not tech.min_clock_ns <= config.clock_period_ns <= tech.max_clock_ns:
        raise ConfigurationError(
            f"clock {config.clock_period_ns} ns outside "
            f"[{tech.min_clock_ns}, {tech.max_clock_ns}]"
        )
    delays = unit_delays_ns(model, config)
    budgets = unit_budgets_ns(tech, config)
    for unit, delay in delays.items():
        if delay > budgets[unit] + 1e-9:
            raise ConfigurationError(
                f"unit {unit} needs {delay:.3f} ns but its budget is "
                f"{budgets[unit]:.3f} ns "
                f"(clock {config.clock_period_ns:.2f} ns)"
            )
    if config.frontend_stages < derived_frontend_stages(tech, config.clock_period_ns):
        raise ConfigurationError(
            f"front end needs >= "
            f"{derived_frontend_stages(tech, config.clock_period_ns)} stages "
            f"at clock {config.clock_period_ns:.2f} ns, got {config.frontend_stages}"
        )
    min_mem = derived_memory_cycles(tech, config.clock_period_ns, config.l2.latency_cycles)
    if config.memory_cycles < min_mem:
        raise ConfigurationError(
            f"memory needs >= {min_mem} cycles at clock "
            f"{config.clock_period_ns:.2f} ns, got {config.memory_cycles}"
        )
    if space is not None:
        _validate_ranges(config, space)


def _validate_ranges(config: CoreConfig, space: DesignSpace) -> None:
    checks = (
        ("width", config.width, space.widths),
        ("rob_size", config.rob_size, space.rob_sizes),
        ("iq_size", config.iq_size, space.iq_sizes),
        ("lsq_size", config.lsq_size, space.lsq_sizes),
    )
    for label, value, legal in checks:
        if value not in legal:
            raise ConfigurationError(f"{label}={value} not in design space {legal}")
    if (config.l1.nsets, config.l1.assoc, config.l1.block_bytes) not in set(
        space.l1_geometries()
    ):
        raise ConfigurationError(f"L1 geometry {config.l1.describe()} not in design space")
    if (config.l2.nsets, config.l2.assoc, config.l2.block_bytes) not in set(
        space.l2_geometries()
    ):
        raise ConfigurationError(f"L2 geometry {config.l2.describe()} not in design space")
    if config.wakeup_latency > space.max_wakeup_latency:
        raise ConfigurationError(
            f"wakeup latency {config.wakeup_latency} exceeds "
            f"{space.max_wakeup_latency}"
        )
    if config.scheduler_depth > space.max_scheduler_depth:
        raise ConfigurationError(
            f"scheduler depth {config.scheduler_depth} exceeds "
            f"{space.max_scheduler_depth}"
        )
    if config.lsq_depth > space.max_lsq_depth:
        raise ConfigurationError(
            f"LSQ depth {config.lsq_depth} exceeds {space.max_lsq_depth}"
        )


def initial_configuration(tech: TechnologyNode) -> CoreConfig:
    """The paper's Table 3 starting point, adjusted to legality.

    Table 3: width 3, ROB 128, IQ 64, LSQ 64 (depth 2), clock 0.33 ns,
    front end 6 stages, memory 172 cycles, L1 4 cycles, L2 12 cycles,
    wake-up latency 1.  The cache geometries are not listed in Table 3
    (the paper randomly re-fits them on the first iteration); we pick
    mid-range geometries that fit the stated cycle counts.  The scheduler
    depth is 2 rather than the paper's 1 because our register-file model
    cannot hold a 128-entry ROB in a single 0.33 ns stage.
    """
    clock = 0.33
    l2_latency = 12
    return CoreConfig(
        clock_period_ns=clock,
        width=3,
        rob_size=128,
        iq_size=64,
        lsq_size=64,
        wakeup_latency=1,
        scheduler_depth=2,
        lsq_depth=2,
        frontend_stages=max(6, derived_frontend_stages(tech, clock)),
        memory_cycles=max(172, derived_memory_cycles(tech, clock, l2_latency)),
        l1=CacheGeometry(nsets=256, assoc=2, block_bytes=64, latency_cycles=4),
        l2=CacheGeometry(nsets=1024, assoc=2, block_bytes=128, latency_cycles=l2_latency),
    )
