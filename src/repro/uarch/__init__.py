"""Microarchitecture substrate: configuration schema, fit solver, branch
predictors and cache simulation."""

from .branch import (
    BimodalPredictor,
    GsharePredictor,
    TournamentPredictor,
    measure_misprediction_rate,
)
from .cache import AccessResult, CacheSim, MemoryHierarchy
from .config import (
    CacheGeometry,
    CoreConfig,
    DesignSpace,
    derived_frontend_stages,
    derived_memory_cycles,
    initial_configuration,
    unit_budgets_ns,
    unit_delays_ns,
    validate_config,
)
from .fit import (
    best_cache_geometry,
    fitting_cache_geometries,
    fits,
    max_fitting,
    max_iq_size,
    max_lsq_size,
    max_rob_size,
    min_cache_cycles,
    min_stages,
    refit_config,
)

__all__ = [
    "BimodalPredictor",
    "GsharePredictor",
    "TournamentPredictor",
    "measure_misprediction_rate",
    "AccessResult",
    "CacheSim",
    "MemoryHierarchy",
    "CacheGeometry",
    "CoreConfig",
    "DesignSpace",
    "derived_frontend_stages",
    "derived_memory_cycles",
    "initial_configuration",
    "unit_budgets_ns",
    "unit_delays_ns",
    "validate_config",
    "best_cache_geometry",
    "fitting_cache_geometries",
    "fits",
    "max_fitting",
    "max_iq_size",
    "max_lsq_size",
    "max_rob_size",
    "min_cache_cycles",
    "min_stages",
    "refit_config",
]
