"""Sizing-to-fit: the coupling between clock period and unit sizes.

This module implements the paper's central mechanical rule (§3): when the
clock period or a unit's pipeline depth changes, "the size of the issue
queue, register-file/ROB, load-store queue, L1 and L2 caches, and
processor width [are] adjusted to make their access times fit within the
number of pipeline stages assigned to them".

The solver answers two questions for every sized unit:

* given a stage budget, what is the largest legal size that fits?
* given a size, how many stages does it need?

and provides :func:`refit_config`, which repairs an entire configuration
after a clock/depth move (growing a unit's depth when even the smallest
size no longer fits).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..errors import TimingError
from ..tech import CactiModel, TechnologyNode
from ..tech.unitdelay import issue_queue_ns, l1_cache_ns, l2_cache_ns, lsq_ns, regfile_ns
from .config import (
    CacheGeometry,
    CoreConfig,
    DesignSpace,
    derived_frontend_stages,
    derived_memory_cycles,
)


def fits(delay_ns: float, budget_ns: float) -> bool:
    """True when a unit delay fits a stage budget (with float slack)."""
    return delay_ns <= budget_ns + 1e-9


def max_fitting(
    sizes: Sequence[int],
    delay_of: Callable[[int], float],
    budget_ns: float,
) -> int | None:
    """Largest size whose delay fits the budget, or None if none fits.

    Delays are monotone in size, so this scans from the top.
    """
    for size in sorted(sizes, reverse=True):
        if fits(delay_of(size), budget_ns):
            return size
    return None


def min_stages(
    delay_ns: float, tech: TechnologyNode, clock_period_ns: float, max_stages: int
) -> int | None:
    """Fewest stages whose budget covers the delay, or None beyond the cap."""
    usable = tech.usable_stage_time(clock_period_ns)
    if usable <= 0:
        return None
    needed = max(1, math.ceil(delay_ns / usable - 1e-9))
    return needed if needed <= max_stages else None


def max_iq_size(
    model: CactiModel,
    tech: TechnologyNode,
    clock_period_ns: float,
    stages: int,
    width: int,
    space: DesignSpace,
) -> int | None:
    """Largest issue queue whose wake-up+select loop fits ``stages``."""
    budget = tech.budget(clock_period_ns, stages)
    return max_fitting(space.iq_sizes, lambda s: issue_queue_ns(model, s, width), budget)


def max_rob_size(
    model: CactiModel,
    tech: TechnologyNode,
    clock_period_ns: float,
    stages: int,
    width: int,
    space: DesignSpace,
) -> int | None:
    """Largest ROB/register file fitting the scheduler/regfile depth."""
    budget = tech.budget(clock_period_ns, stages)
    return max_fitting(space.rob_sizes, lambda s: regfile_ns(model, s, width), budget)


def max_lsq_size(
    model: CactiModel,
    tech: TechnologyNode,
    clock_period_ns: float,
    stages: int,
    space: DesignSpace,
) -> int | None:
    """Largest LSQ whose associative search fits the LSQ depth."""
    budget = tech.budget(clock_period_ns, stages)
    return max_fitting(space.lsq_sizes, lambda s: lsq_ns(model, s), budget)


def fitting_cache_geometries(
    model: CactiModel,
    tech: TechnologyNode,
    clock_period_ns: float,
    cycles: int,
    space: DesignSpace,
    level: int,
) -> list[tuple[int, int, int]]:
    """All (nsets, assoc, block) triples of a level that fit ``cycles``."""
    budget = tech.budget(clock_period_ns, cycles)
    if level == 1:
        candidates = space.l1_geometries()
        delay = lambda g: l1_cache_ns(model, *g)  # noqa: E731
    elif level == 2:
        candidates = space.l2_geometries()
        delay = lambda g: l2_cache_ns(model, *g)  # noqa: E731
    else:
        raise ValueError(f"cache level must be 1 or 2, got {level}")
    return [g for g in candidates if fits(delay(g), budget)]


def best_cache_geometry(
    model: CactiModel,
    tech: TechnologyNode,
    clock_period_ns: float,
    cycles: int,
    space: DesignSpace,
    level: int,
    rng: np.random.Generator | None = None,
) -> CacheGeometry | None:
    """A geometry that fits ``cycles`` at this clock, or None.

    With an RNG the pick is random among the fitting geometries (the
    paper's "randomly varied to fit"); otherwise the largest capacity
    (ties broken toward higher associativity) is returned.
    """
    fitting = fitting_cache_geometries(model, tech, clock_period_ns, cycles, space, level)
    if not fitting:
        return None
    if rng is not None:
        nsets, assoc, block = fitting[int(rng.integers(0, len(fitting)))]
    else:
        nsets, assoc, block = max(fitting, key=lambda g: (g[0] * g[1] * g[2], g[1]))
    return CacheGeometry(nsets=nsets, assoc=assoc, block_bytes=block, latency_cycles=cycles)


def min_cache_cycles(
    model: CactiModel,
    tech: TechnologyNode,
    clock_period_ns: float,
    geometry: CacheGeometry,
    space: DesignSpace,
    level: int,
) -> int | None:
    """Fewest access cycles for a given geometry at this clock."""
    if level == 1:
        delay = l1_cache_ns(model, geometry.nsets, geometry.assoc, geometry.block_bytes)
    elif level == 2:
        delay = l2_cache_ns(model, geometry.nsets, geometry.assoc, geometry.block_bytes)
    else:
        raise ValueError(f"cache level must be 1 or 2, got {level}")
    cap = space.max_l1_cycles if level == 1 else space.max_l2_cycles
    return min_stages(delay, tech, clock_period_ns, cap)


def refit_config(
    config: CoreConfig,
    tech: TechnologyNode,
    model: CactiModel,
    space: DesignSpace,
    rng: np.random.Generator | None = None,
) -> CoreConfig:
    """Repair a configuration so every unit fits its stage budget.

    Keeps each unit's pipeline depth if possible, shrinking the unit to
    the largest size that fits; when even the smallest size does not fit
    the current depth, the depth grows to the minimum that accommodates
    the smallest size.  Front-end stages and memory cycles are reset to
    their derived minimums for the (possibly new) clock.  Raises
    :class:`TimingError` when no repair exists inside the design space.
    """
    clock = config.clock_period_ns

    # Issue queue: keep wakeup_latency (i.e. loop depth 1+latency) if any
    # size fits, else deepen the loop.  Repair only shrinks sizes — growth
    # happens through explicit exploration moves.
    iq_max, wakeup_stage = _refit_scalar_unit(
        current_stage=1 + config.wakeup_latency,
        max_stage=1 + space.max_wakeup_latency,
        sizer=lambda st: max_iq_size(model, tech, clock, st, config.width, space),
        unit="issue queue",
        clock=clock,
    )
    iq = min(config.iq_size, iq_max)
    wakeup_latency = wakeup_stage - 1

    rob_max, scheduler_depth = _refit_scalar_unit(
        current_stage=config.scheduler_depth,
        max_stage=space.max_scheduler_depth,
        sizer=lambda st: max_rob_size(model, tech, clock, st, config.width, space),
        unit="register file/ROB",
        clock=clock,
    )
    rob = min(config.rob_size, rob_max)

    lsq_max, lsq_depth = _refit_scalar_unit(
        current_stage=config.lsq_depth,
        max_stage=space.max_lsq_depth,
        sizer=lambda st: max_lsq_size(model, tech, clock, st, space),
        unit="load-store queue",
        clock=clock,
    )
    lsq = min(config.lsq_size, lsq_max)

    l1 = _refit_cache(config.l1, tech, model, space, clock, level=1, rng=rng)
    l2 = _refit_cache(config.l2, tech, model, space, clock, level=2, rng=rng)

    iq = min(iq, rob)  # invariant: issue queue never exceeds the ROB
    frontend = derived_frontend_stages(tech, clock)
    memory = derived_memory_cycles(tech, clock, l2.latency_cycles)

    return config.replace(
        iq_size=iq,
        wakeup_latency=wakeup_latency,
        rob_size=rob,
        scheduler_depth=scheduler_depth,
        lsq_size=lsq,
        lsq_depth=lsq_depth,
        l1=l1,
        l2=l2,
        frontend_stages=frontend,
        memory_cycles=memory,
    )


def _refit_scalar_unit(
    current_stage: int,
    max_stage: int,
    sizer: Callable[[int], int | None],
    unit: str,
    clock: float,
) -> tuple[int, int]:
    """Shrink a unit to fit its depth, deepening only when forced.

    Returns (size, stages).  The returned size is the *largest* fitting
    size; callers that want to keep a smaller current size clamp it.
    """
    for stages in range(current_stage, max_stage + 1):
        size = sizer(stages)
        if size is not None:
            return size, stages
    raise TimingError(
        f"no legal sizing for the {unit} at clock {clock:.3f} ns "
        f"within {max_stage} stages"
    )


def _refit_cache(
    cache: CacheGeometry,
    tech: TechnologyNode,
    model: CactiModel,
    space: DesignSpace,
    clock: float,
    level: int,
    rng: np.random.Generator | None,
) -> CacheGeometry:
    """Keep the cache geometry if its latency can be met, else re-pick."""
    needed = min_cache_cycles(model, tech, clock, cache, space, level)
    if needed is not None and needed <= cache.latency_cycles:
        return cache
    if needed is not None:
        return CacheGeometry(cache.nsets, cache.assoc, cache.block_bytes, needed)
    # Geometry is untenable at this clock: pick a new one at its old cycle
    # count, growing the cycle count only if nothing fits.
    cap = space.max_l1_cycles if level == 1 else space.max_l2_cycles
    for cycles in range(cache.latency_cycles, cap + 1):
        pick = best_cache_geometry(model, tech, clock, cycles, space, level, rng=rng)
        if pick is not None:
            return pick
    raise TimingError(
        f"no legal L{level} geometry at clock {clock:.3f} ns within "
        f"{cap} cycles"
    )
