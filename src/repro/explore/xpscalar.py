"""xp-scalar: the superscalar design-space exploration framework.

This is the reproduction of the paper's §3 tool: a simulated-annealing
search for the best architectural configuration for each workload, with
the clock period and per-unit pipeline depths as first-class knobs and
every unit sized to fit its stage budget through the CACTI-analog timing
model.  Fitness is IPT (instructions per time unit).

The main entry points:

* :meth:`XpScalar.customize` — explore one workload's configuration;
* :meth:`XpScalar.customize_all` — explore a whole suite, including the
  paper's cross-seeding refinement ("If a workload was found to perform
  better on some other workload's optimal configuration, that
  configuration would replace its own configuration in order to expedite
  the exploration process") iterated to a fixed point;
* :func:`configurational_characteristics` lives in
  :mod:`repro.characterize` and consumes these results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import ExplorationError
from ..sim.interval import IntervalSimulator
from ..sim.metrics import SimResult
from ..tech import CactiModel, TechnologyNode, default_technology
from ..uarch.config import CoreConfig, DesignSpace, initial_configuration, validate_config
from ..workloads.profile import WorkloadProfile
from .annealing import AnnealingResult, AnnealingSchedule, SimulatedAnnealing
from .moves import MoveGenerator

#: Objective signature: maps a simulation result to the fitness to
#: maximize.  The default is IPT; power/area-aware objectives plug in
#: here (the paper's §3 notes this extension).
Objective = Callable[[SimResult], float]


def ipt_objective(result: SimResult) -> float:
    """The paper's fitness: instructions per time unit."""
    return result.ipt


@dataclass
class ExplorationResult:
    """Customization outcome for one workload."""

    workload: str
    config: CoreConfig
    score: float
    result: SimResult
    annealing: AnnealingResult | None = None
    cross_seeded_from: str | None = None


class XpScalar:
    """Design-space explorer: one facade over moves, annealing and timing.

    Parameters
    ----------
    tech:
        Technology node (defaults to the calibrated node).
    space:
        Design-space ranges (defaults to the paper-scale space).
    simulator:
        Evaluator with an ``evaluate(profile, config) -> SimResult``
        method; defaults to the interval model.  The cycle-level
        simulator can be adapted here for (much slower) trace-driven
        exploration.
    schedule:
        Annealing schedule.
    objective:
        Fitness extractor (defaults to IPT).
    """

    def __init__(
        self,
        tech: TechnologyNode | None = None,
        space: DesignSpace | None = None,
        simulator: IntervalSimulator | None = None,
        schedule: AnnealingSchedule | None = None,
        objective: Objective = ipt_objective,
    ) -> None:
        self.tech = tech or default_technology()
        self.space = space or DesignSpace()
        self.model = CactiModel(self.tech)
        self.simulator = simulator or IntervalSimulator()
        self.schedule = schedule or AnnealingSchedule()
        self.objective = objective
        self._moves = MoveGenerator(self.tech, self.model, self.space)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, profile: WorkloadProfile, config: CoreConfig) -> SimResult:
        """Simulate one (workload, configuration) pair."""
        return self.simulator.evaluate(profile, config)

    def score(self, profile: WorkloadProfile, config: CoreConfig) -> float:
        """Objective value of one pair."""
        return self.objective(self.evaluate(profile, config))

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------

    def customize(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        initial: CoreConfig | None = None,
        restarts: int = 1,
    ) -> ExplorationResult:
        """Find a customized configuration for one workload.

        Starts from Table 3's initial configuration unless given another
        starting point, anneals under the configured schedule, and
        returns the best configuration found (always validated).  With
        ``restarts`` > 1, independent annealing runs (distinct seeds)
        compete and the best wins — the cheap insurance against local
        optima the paper's three-week budget bought with sheer length.
        """
        if restarts < 1:
            raise ExplorationError(f"restarts must be >= 1, got {restarts}")
        start = initial or initial_configuration(self.tech)
        annealer = SimulatedAnnealing(
            propose=self._moves.propose,
            evaluate=lambda cfg: self.score(profile, cfg),
            schedule=self.schedule,
        )
        outcome = annealer.run(start, seed=seed)
        for extra in range(1, restarts):
            rerun = annealer.run(start, seed=seed + 7919 * extra)
            if rerun.best_score > outcome.best_score:
                outcome = rerun
        best = outcome.best_state
        validate_config(best, self.tech, self.model)
        return ExplorationResult(
            workload=profile.name,
            config=best,
            score=outcome.best_score,
            result=self.evaluate(profile, best),
            annealing=outcome,
        )

    def customize_all(
        self,
        profiles: Sequence[WorkloadProfile],
        seed: int = 0,
        cross_seed_rounds: int = 2,
    ) -> dict[str, ExplorationResult]:
        """Customize a whole suite, with the paper's cross-seeding passes.

        After the independent explorations, every workload is evaluated
        on every other workload's customized configuration; whenever some
        other configuration beats a workload's own, it is adopted — "If a
        workload was found to perform better on some other workload's
        optimal configuration, that configuration would replace its own
        configuration in order to expedite the exploration process."
        Each adoption round is followed by a re-annealing pass that
        continues each workload's exploration from its (possibly adopted)
        best configuration, so adopted configurations diverge again
        toward each workload's own optimum.
        """
        if not profiles:
            raise ExplorationError("customize_all needs at least one workload")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ExplorationError(f"duplicate workload names: {names}")

        results = {
            p.name: self.customize(p, seed=seed + i)
            for i, p in enumerate(profiles)
        }

        for round_no in range(cross_seed_rounds):
            changed = self._cross_seed_once(profiles, results)
            # Refine: continue annealing from the current best (adopted or
            # not); keep whichever configuration scores higher.
            for i, profile in enumerate(profiles):
                current = results[profile.name]
                refined = self.customize(
                    profile,
                    seed=seed + 1000 * (round_no + 1) + i,
                    initial=current.config,
                )
                if refined.score > current.score:
                    refined.cross_seeded_from = current.cross_seeded_from
                    results[profile.name] = refined
                    changed = True
            if not changed:
                break
        # Final consistency pass: after the last refinement, no workload
        # should prefer another workload's configuration to its own.
        self._cross_seed_once(profiles, results)
        return results

    def _cross_seed_once(
        self,
        profiles: Sequence[WorkloadProfile],
        results: dict[str, ExplorationResult],
    ) -> bool:
        """One adoption pass; returns True if any workload switched."""
        changed = False
        for profile in profiles:
            own = results[profile.name]
            best_other: tuple[str, float] | None = None
            for other in profiles:
                if other.name == profile.name:
                    continue
                score = self.score(profile, results[other.name].config)
                if score > own.score * (1 + 1e-9) and (
                    best_other is None or score > best_other[1]
                ):
                    best_other = (other.name, score)
            if best_other is not None:
                donor, score = best_other
                config = results[donor].config
                results[profile.name] = ExplorationResult(
                    workload=profile.name,
                    config=config,
                    score=score,
                    result=self.evaluate(profile, config),
                    annealing=own.annealing,
                    cross_seeded_from=donor,
                )
                changed = True
        return changed
