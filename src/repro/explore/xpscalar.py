"""xp-scalar: the superscalar design-space exploration framework.

This is the reproduction of the paper's §3 tool: a simulated-annealing
search for the best architectural configuration for each workload, with
the clock period and per-unit pipeline depths as first-class knobs and
every unit sized to fit its stage budget through the CACTI-analog timing
model.  Fitness is IPT (instructions per time unit).

All simulation requests route through a
:class:`~repro.engine.pool.EvaluationEngine`, which provides result
caching, batch deduplication and (with ``jobs > 1``) process-pool
parallelism — the per-workload annealing runs of
:meth:`XpScalar.customize_all` are independent and execute concurrently.

The main entry points:

* :meth:`XpScalar.customize` — explore one workload's configuration;
* :meth:`XpScalar.customize_all` — explore a whole suite, including the
  paper's cross-seeding refinement ("If a workload was found to perform
  better on some other workload's optimal configuration, that
  configuration would replace its own configuration in order to expedite
  the exploration process") iterated to a fixed point, with optional
  checkpoint/resume for long runs;
* :func:`configurational_characteristics` lives in
  :mod:`repro.characterize` and consumes these results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..engine import CheckpointManager, EvaluationEngine
from ..engine.keys import derive_seed, digest, simulator_id
from ..engine.serialize import (
    config_from_jsonable,
    config_to_jsonable,
    simresult_from_jsonable,
    simresult_to_jsonable,
)
from ..errors import ExplorationError
from ..search import (
    AnnealingResult,
    AnnealingSchedule,
    SearchBudget,
    SearchDiagnostics,
    SearchProblem,
    SearchResult,
    SearchStrategy,
    make_strategy,
)
from ..sim.interval import IntervalSimulator
from ..sim.metrics import SimResult
from ..tech import CactiModel, TechnologyNode, default_technology
from ..uarch.config import CoreConfig, DesignSpace, initial_configuration, validate_config
from ..workloads.profile import WorkloadProfile
from .moves import MoveGenerator

#: Objective signature: maps a simulation result to the fitness to
#: maximize.  The default is IPT; power/area-aware objectives plug in
#: here (the paper's §3 notes this extension).  Objectives that need
#: the workload and configuration as well (the constrained scorers in
#: :mod:`repro.tech.power`/:mod:`repro.tech.area` and
#: :mod:`repro.design`) declare a truthy ``needs_context`` attribute
#: and are called as ``objective(profile, config, result)`` — see
#: :func:`apply_objective`.
Objective = Callable[[SimResult], float]


def ipt_objective(result: SimResult) -> float:
    """The paper's fitness: instructions per time unit."""
    return result.ipt


def apply_objective(
    objective: Objective,
    profile: WorkloadProfile,
    config: CoreConfig,
    result: SimResult,
) -> float:
    """Score ``result`` under ``objective``, passing context if asked.

    Plain objectives take the :class:`~repro.sim.metrics.SimResult`
    alone; context objectives (power/area/EPI-aware scorers) declare a
    truthy ``needs_context`` attribute and receive the workload and
    configuration too.  Duck-typed so :mod:`repro.design` never has to
    be imported here.
    """
    if getattr(objective, "needs_context", False):
        return objective(profile, config, result)  # type: ignore[call-arg]
    return objective(result)


def objective_identity(objective: Objective) -> str:
    """Stable identity of an objective for run signatures.

    Context objectives built by factories (EDP, EPI, envelopes) carry
    an ``identity`` attribute that folds their parameters in; plain
    functions fall back to their qualified name, keeping historical
    signatures (and hence resumable checkpoints) byte-stable.
    """
    ident = getattr(objective, "identity", None)
    if ident is not None:
        return str(ident() if callable(ident) else ident)
    return getattr(objective, "__qualname__", repr(objective))


@dataclass
class ExplorationResult:
    """Customization outcome for one workload."""

    workload: str
    config: CoreConfig
    score: float
    result: SimResult
    annealing: AnnealingResult | None = None
    cross_seeded_from: str | None = None


def _customize_task(
    payload: tuple["XpScalar", WorkloadProfile, int, CoreConfig | None],
) -> ExplorationResult:
    """One workload's annealing run, shaped for ``engine.map``.

    Module-level so it pickles by name into worker processes; the
    :class:`XpScalar` in the payload wakes up there with a serial engine
    and a private memory cache (see ``EvaluationEngine.__getstate__``).
    """
    explorer, profile, seed, initial = payload
    return explorer._customize_quiet(profile, seed=seed, initial=initial)


def _restart_task(
    payload: tuple["XpScalar", WorkloadProfile, CoreConfig, int, SearchStrategy],
) -> SearchResult:
    """One multi-start restart, shaped for ``engine.map``.

    The multi-start strategy hands its restart seeds to the explorer's
    fan-out hook, which maps this function across the engine pool.  The
    in-worker problem carries no fan-out of its own (no recursive
    fan-out) and no best-result tracking — the parent re-evaluates the
    winner, a cache hit when warm and deterministic either way.
    """
    explorer, profile, start, seed, inner = payload

    def evaluate_cfg(config: CoreConfig) -> float:
        result = explorer.engine.evaluate(profile, config)
        return apply_objective(explorer.objective, profile, config, result)

    def evaluate_many_cfg(configs: Sequence[CoreConfig]) -> list[float]:
        results = explorer.engine.evaluate_many([(profile, c) for c in configs])
        return [
            apply_objective(explorer.objective, profile, config, result)
            for config, result in zip(configs, results)
        ]

    problem = SearchProblem(
        initial=start,
        propose=explorer._moves.propose,
        evaluate=evaluate_cfg,
        evaluate_many=evaluate_many_cfg,
    )
    return inner.run(problem, seed=seed)


def _result_to_state(result: ExplorationResult) -> dict:
    """Checkpoint encoding of one :class:`ExplorationResult`."""
    annealing = result.annealing
    return {
        "workload": result.workload,
        "config": config_to_jsonable(result.config),
        "score": result.score,
        "result": simresult_to_jsonable(result.result),
        "cross_seeded_from": result.cross_seeded_from,
        "annealing": None
        if annealing is None
        else {
            "best_state": config_to_jsonable(annealing.best_state),
            "best_score": annealing.best_score,
            "evaluations": annealing.evaluations,
            "accepted": annealing.accepted,
            "rollbacks": annealing.rollbacks,
            "history": list(annealing.history),
            "stop_reason": annealing.stop_reason,
        },
    }


def _result_from_state(state: dict) -> ExplorationResult:
    """Inverse of :func:`_result_to_state` (bit-exact for all floats)."""
    annealing_state = state.get("annealing")
    annealing = None
    if annealing_state is not None:
        annealing = AnnealingResult(
            best_state=config_from_jsonable(annealing_state["best_state"]),
            best_score=annealing_state["best_score"],
            evaluations=annealing_state["evaluations"],
            accepted=annealing_state["accepted"],
            rollbacks=annealing_state["rollbacks"],
            history=list(annealing_state["history"]),
            stop_reason=annealing_state.get("stop_reason"),
        )
    return ExplorationResult(
        workload=state["workload"],
        config=config_from_jsonable(state["config"]),
        score=state["score"],
        result=simresult_from_jsonable(state["result"]),
        annealing=annealing,
        cross_seeded_from=state.get("cross_seeded_from"),
    )


class XpScalar:
    """Design-space explorer: one facade over moves, annealing and timing.

    Parameters
    ----------
    tech:
        Technology node (defaults to the calibrated node).
    space:
        Design-space ranges (defaults to the paper-scale space).
    simulator:
        Evaluator with an ``evaluate(profile, config) -> SimResult``
        method; defaults to the interval model.  The cycle-level
        simulator can be adapted here for (much slower) trace-driven
        exploration.  Mutually exclusive with ``engine`` (an engine
        carries its own simulator).
    schedule:
        Annealing schedule.
    objective:
        Fitness extractor (defaults to IPT).
    engine:
        Evaluation engine to route all simulations through; defaults to
        a serial engine with an in-memory result cache.  Pass an engine
        with ``jobs > 1`` to parallelize :meth:`customize_all` and the
        batched matrix fills, or one with a disk-backed cache to share
        results across processes/runs.
    strategy:
        Search policy: a registered strategy name (``"anneal"``, the
        default and the paper's search; ``"hillclimb"``; ``"random"``;
        ``"multistart"``) or a ready :class:`~repro.search.SearchStrategy`
        instance.  The default reproduces the pre-strategy explorer
        bit-for-bit.
    budget:
        Optional uniform :class:`~repro.search.SearchBudget` applied to
        every search run (only used when ``strategy`` is a name).
    restarts:
        Restart count for multi-start strategies (only used when
        ``strategy`` is a name; others ignore it).
    search_batch:
        Candidate batch width for strategies with a batched evaluation
        mode (anneal neighborhoods, hillclimb frontiers); ``1`` (the
        default) keeps the sequential, signature-stable walk.  Only used
        when ``strategy`` is a name.
    """

    def __init__(
        self,
        tech: TechnologyNode | None = None,
        space: DesignSpace | None = None,
        simulator: IntervalSimulator | None = None,
        schedule: AnnealingSchedule | None = None,
        objective: Objective = ipt_objective,
        engine: EvaluationEngine | None = None,
        strategy: str | SearchStrategy = "anneal",
        budget: SearchBudget | None = None,
        restarts: int = 4,
        search_batch: int = 1,
    ) -> None:
        self.tech = tech or default_technology()
        self.space = space or DesignSpace()
        self.model = CactiModel(self.tech)
        if engine is not None:
            if simulator is not None and simulator is not engine.simulator:
                raise ExplorationError(
                    "pass the simulator through the engine, not alongside it"
                )
            self.engine = engine
            if not engine.context_bound:
                engine.bind_context(self.tech)
        else:
            # simulator=None lets the engine pick its default (the
            # vectorized batch model, scalar-compatible in results and
            # cache identity).
            self.engine = EvaluationEngine(simulator=simulator, context=self.tech)
        self.simulator = self.engine.simulator
        self.schedule = schedule or AnnealingSchedule()
        self.objective = objective
        if isinstance(strategy, str):
            self.strategy: SearchStrategy = make_strategy(
                strategy,
                schedule=self.schedule,
                budget=budget,
                restarts=restarts,
                batch=search_batch,
            )
        else:
            self.strategy = strategy
        self._moves = MoveGenerator(self.tech, self.model, self.space)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, profile: WorkloadProfile, config: CoreConfig) -> SimResult:
        """Simulate one (workload, configuration) pair (cache-aware)."""
        return self.engine.evaluate(profile, config)

    def score(self, profile: WorkloadProfile, config: CoreConfig) -> float:
        """Objective value of one pair."""
        return apply_objective(
            self.objective, profile, config, self.evaluate(profile, config)
        )

    def run_signature(
        self, names: Sequence[str], seed: int, cross_seed_rounds: int
    ) -> str:
        """Content hash of everything that determines a suite exploration.

        Checkpoints are only resumed when this matches, so a changed
        schedule, seed, technology, design space, simulator or workload
        list starts fresh instead of resuming into inconsistency.
        """
        objective_id = objective_identity(self.objective)
        return digest(
            list(names),
            seed,
            cross_seed_rounds,
            self.schedule,
            self.tech,
            self.space,
            simulator_id(self.simulator),
            objective_id,
            self.strategy.identity(),
        )

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------

    def customize(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        initial: CoreConfig | None = None,
        restarts: int = 1,
    ) -> ExplorationResult:
        """Find a customized configuration for one workload.

        Starts from Table 3's initial configuration unless given another
        starting point, searches under the configured strategy (the
        paper's annealing by default), and returns the best
        configuration found (always validated).  With ``restarts`` > 1,
        independent strategy runs (distinct seeds) compete and the best
        wins — the cheap insurance against local optima the paper's
        three-week budget bought with sheer length.  (The
        ``multistart`` strategy folds this into the search itself and
        fans restarts through the engine pool.)

        Emits a ``search_run`` convergence-diagnostics event on the
        engine bus (carrying the search's wall time; under a tracing
        bus the whole search is additionally bracketed as a span).
        """
        started = time.perf_counter()
        if self.engine.events.tracing:
            with self.engine.events.span(
                f"customize:{profile.name}", kind="search"
            ):
                result = self._customize_quiet(
                    profile, seed=seed, initial=initial, restarts=restarts
                )
        else:
            result = self._customize_quiet(
                profile, seed=seed, initial=initial, restarts=restarts
            )
        self._emit_search(result, seconds=time.perf_counter() - started)
        return result

    def _customize_quiet(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        initial: CoreConfig | None = None,
        restarts: int = 1,
    ) -> ExplorationResult:
        """:meth:`customize` without the diagnostics event.

        The event-free variant runs inside worker processes (whose
        private buses are discarded); the parent emits diagnostics from
        the returned results so ``jobs=1`` and ``jobs=N`` report the
        same events.
        """
        if restarts < 1:
            raise ExplorationError(f"restarts must be >= 1, got {restarts}")
        start = initial or initial_configuration(self.tech)

        # Track the SimResult behind the search's best state so the
        # winning configuration is not re-simulated after the search.
        # The update rule mirrors the annealer's (strictly-greater, in
        # evaluation order), so the tracked config matches best_state.
        tracked: tuple[float, CoreConfig, SimResult] | None = None

        def evaluate_cfg(config: CoreConfig) -> float:
            nonlocal tracked
            result = self.engine.evaluate(profile, config)
            score = apply_objective(self.objective, profile, config, result)
            if tracked is None or score > tracked[0]:
                tracked = (score, config, result)
            return score

        def evaluate_many_cfg(configs: Sequence[CoreConfig]) -> list[float]:
            # The batched twin of evaluate_cfg: one engine batch for the
            # whole candidate set, tracked updates applied in input
            # order so the strictly-greater rule picks the same winner.
            nonlocal tracked
            results = self.engine.evaluate_many([(profile, c) for c in configs])
            scores: list[float] = []
            for config, result in zip(configs, results):
                score = apply_objective(self.objective, profile, config, result)
                if tracked is None or score > tracked[0]:
                    tracked = (score, config, result)
                scores.append(score)
            return scores

        def fanout(seeds: Sequence[int], inner: SearchStrategy) -> list[SearchResult]:
            payloads = [(self, profile, start, s, inner) for s in seeds]
            return self.engine.map(_restart_task, payloads)

        problem = SearchProblem(
            initial=start,
            propose=self._moves.propose,
            evaluate=evaluate_cfg,
            fanout=fanout,
            evaluate_many=evaluate_many_cfg,
        )
        outcome = self.strategy.run(problem, seed=seed)
        for extra in range(1, restarts):
            rerun = self.strategy.run(problem, seed=derive_seed(seed, restart=extra))
            if rerun.best_score > outcome.best_score:
                outcome = rerun
        best = outcome.best_state
        validate_config(best, self.tech, self.model)
        if tracked is not None and tracked[1] == best:
            final = tracked[2]
        else:  # defensive: cache makes this free when warm
            final = self.engine.evaluate(profile, best)
        return ExplorationResult(
            workload=profile.name,
            config=best,
            score=outcome.best_score,
            result=final,
            annealing=outcome,
        )

    def _emit_search(
        self, result: ExplorationResult, seconds: float | None = None
    ) -> None:
        """Publish one run's convergence diagnostics on the engine bus.

        ``seconds`` is the search's wall time when the caller measured
        it (direct :meth:`customize` calls); results harvested from
        worker processes carry no timing, so the key is simply absent —
        telemetry treats it as optional.
        """
        if result.annealing is None:
            return
        diagnostics = SearchDiagnostics.from_result(
            self.strategy.name, result.workload, result.annealing
        )
        payload = diagnostics.payload()
        if seconds is not None:
            payload["seconds"] = seconds
        self.engine.events.emit("search_run", **payload)

    def customize_all(
        self,
        profiles: Sequence[WorkloadProfile],
        seed: int = 0,
        cross_seed_rounds: int = 2,
        checkpoint: CheckpointManager | None = None,
        resume: bool = False,
    ) -> dict[str, ExplorationResult]:
        """Customize a whole suite, with the paper's cross-seeding passes.

        After the independent explorations (run concurrently when the
        engine has ``jobs > 1``), every workload is evaluated on every
        other workload's customized configuration; whenever some other
        configuration beats a workload's own, it is adopted — "If a
        workload was found to perform better on some other workload's
        optimal configuration, that configuration would replace its own
        configuration in order to expedite the exploration process."
        Each adoption round is followed by a re-annealing pass that
        continues each workload's exploration from its (possibly adopted)
        best configuration, so adopted configurations diverge again
        toward each workload's own optimum.

        With a ``checkpoint``, progress is persisted after every batch of
        explorations and every refinement round; passing ``resume=True``
        restores a matching checkpoint (same workloads, seed, schedule,
        technology, simulator — see :meth:`run_signature`) and continues
        where the interrupted run stopped.
        """
        profiles = list(profiles)
        if not profiles:
            raise ExplorationError("customize_all needs at least one workload")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ExplorationError(f"duplicate workload names: {names}")

        signature = self.run_signature(names, seed, cross_seed_rounds)
        results: dict[str, ExplorationResult] = {}
        stage, next_round = "explore", 0
        if checkpoint is not None and checkpoint.events is None:
            # Route checkpoint quarantine reports through the engine's
            # bus so --stats (and tests) can see them.
            checkpoint.events = self.engine.events
        if checkpoint is not None and resume:
            state = checkpoint.load(signature, strict=True)
            if state is not None:
                results = {
                    name: _result_from_state(s)
                    for name, s in state.get("results", {}).items()
                    if name in set(names)
                }
                stage = state.get("stage", "explore")
                next_round = int(state.get("next_round", 0))
        if stage == "done" and set(results) == set(names):
            return results

        def save(save_stage: str, save_round: int = 0) -> None:
            if checkpoint is None:
                return
            checkpoint.save(
                signature,
                {
                    "stage": save_stage,
                    "next_round": save_round,
                    "results": {n: _result_to_state(r) for n, r in results.items()},
                },
            )
            self.engine.events.emit("checkpoint", path=str(checkpoint.path))

        if stage == "explore":
            pending = [(i, p) for i, p in enumerate(profiles) if p.name not in results]
            # Chunked so a checkpoint lands every few completions without
            # starving the pool; serial engines checkpoint per workload.
            chunk = 1 if self.engine.workers == 1 else self.engine.workers * 2
            try:
                with self.engine.phase("explore"):
                    for lo in range(0, len(pending), chunk):
                        tasks = [
                            (self, p, derive_seed(seed, index=i), None)
                            for i, p in pending[lo : lo + chunk]
                        ]
                        for outcome in self.engine.map(_customize_task, tasks):
                            results[outcome.workload] = outcome
                            self._emit_search(outcome)
                        if checkpoint is not None and len(results) < len(names):
                            save("explore")
            except BaseException:
                # Interrupt/crash on the way out: persist every finished
                # workload so a resume restores them verbatim.
                save("explore")
                raise
            next_round = 0
            save("refine", next_round)

        if stage in ("explore", "refine"):
            for round_no in range(next_round, cross_seed_rounds):
                # A refinement round is all-or-nothing: an interrupt rolls
                # back to the round boundary (results entries are replaced,
                # never mutated, so a shallow snapshot restores it) and the
                # resumed round replays identically from the same seeds.
                snapshot = dict(results)
                try:
                    with self.engine.phase(f"cross-seed-{round_no + 1}"):
                        changed = self._cross_seed_once(profiles, results)
                        # Refine: continue annealing from the current best
                        # (adopted or not); keep whichever configuration
                        # scores higher.
                        tasks = [
                            (
                                self,
                                p,
                                derive_seed(seed, index=i, round_no=round_no + 1),
                                results[p.name].config,
                            )
                            for i, p in enumerate(profiles)
                        ]
                        refined_all = self.engine.map(_customize_task, tasks)
                        for profile, refined in zip(profiles, refined_all):
                            self._emit_search(refined)
                            current = results[profile.name]
                            if refined.score > current.score:
                                refined.cross_seeded_from = current.cross_seeded_from
                                results[profile.name] = refined
                                changed = True
                except BaseException:
                    results.clear()
                    results.update(snapshot)
                    save("refine", round_no)
                    raise
                save("refine", round_no + 1)
                if not changed:
                    break
            # Recording that the rounds finished (including an early break)
            # keeps a resumed run off rounds the uninterrupted run skipped.
            save("consistency", cross_seed_rounds)
        # Final consistency pass: after the last refinement, no workload
        # should prefer another workload's configuration to its own.
        with self.engine.phase("consistency"):
            self._cross_seed_once(profiles, results)
        save("done", cross_seed_rounds)
        return results

    def _cross_seed_once(
        self,
        profiles: Sequence[WorkloadProfile],
        results: dict[str, ExplorationResult],
    ) -> bool:
        """Adoption passes, batched and iterated to a fixed point.

        Every (workload, donor-configuration) pair is evaluated in one
        deduplicated batch; adoptions can unlock further adoptions (a
        workload may prefer a configuration another workload just
        adopted), so passes repeat until none fires.  Follow-up passes
        re-request only configurations already evaluated in the first
        batch, so they are served entirely from the cache.  Returns True
        if any workload switched.
        """
        changed = False
        while True:
            # Snapshot the configurations being scored: adoptions within
            # this pass must not leak into each other, or a workload
            # could pair a donor's *new* config with the score of its
            # *old* one.  Cascades are picked up by the next pass.
            donor_config = {name: res.config for name, res in results.items()}
            pairs = []
            labels = []
            for profile in profiles:
                for other in profiles:
                    if other.name == profile.name:
                        continue
                    pairs.append((profile, donor_config[other.name]))
                    labels.append((profile.name, other.name))
            sims = self.engine.evaluate_many(pairs)
            sim_by_label = dict(zip(labels, sims))
            scores = {
                label: apply_objective(self.objective, pair[0], pair[1], sim)
                for label, pair, sim in zip(labels, pairs, sims)
            }
            fired = False
            for profile in profiles:
                own = results[profile.name]
                best_other: tuple[str, float] | None = None
                for other in profiles:
                    if other.name == profile.name:
                        continue
                    score = scores[(profile.name, other.name)]
                    if score > own.score * (1 + 1e-9) and (
                        best_other is None or score > best_other[1]
                    ):
                        best_other = (other.name, score)
                if best_other is not None:
                    donor, score = best_other
                    results[profile.name] = ExplorationResult(
                        workload=profile.name,
                        config=donor_config[donor],
                        score=score,
                        result=sim_by_label[(profile.name, donor)],
                        annealing=own.annealing,
                        cross_seeded_from=donor,
                    )
                    fired = True
            if not fired:
                return changed
            changed = True
