"""Exploration moves over the superscalar design space.

The paper's §3 describes the move structure: "In each iteration, either
the clock period is varied, and the size of the issue queue,
register-file/ROB, load-store queue, L1 and L2 caches, and processor
width adjusted to make their access times fit within the number of
pipeline stages assigned to them, or the number of pipeline stages of a
unit is varied and its configuration appropriately adjusted."

We implement that pair of moves plus the size/geometry perturbations the
random re-fitting implies:

* **clock move** — scale the clock period, then re-fit every unit;
* **depth move** — change one unit's stage count by ±1 and re-size that
  unit to use (at most) the new budget;
* **width move** — change the machine width by ±1 (which changes the
  port counts, hence the fit, of the issue queue and register file);
* **size move** — re-size one buffer (ROB/IQ/LSQ) to a random legal size
  that fits its current budget;
* **geometry move** — re-pick one cache's geometry at random among those
  that fit its current cycle count (the paper's "randomly varied to
  fit").

Every move returns a fully re-fitted, *valid* configuration or raises
:class:`~repro.errors.TimingError` when the design space offers no
repair (the annealing engine skips such proposals).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import TimingError
from ..tech import CactiModel, TechnologyNode
from ..uarch.config import CacheGeometry, CoreConfig, DesignSpace
from ..uarch.fit import (
    best_cache_geometry,
    fitting_cache_geometries,
    max_iq_size,
    max_lsq_size,
    max_rob_size,
    refit_config,
)

_CLOCK_STEP_DOWN = 0.85
_CLOCK_STEP_UP = 1.18


class MoveGenerator:
    """Random neighbour generator for :class:`CoreConfig` states."""

    def __init__(
        self,
        tech: TechnologyNode,
        model: CactiModel,
        space: DesignSpace,
    ) -> None:
        self._tech = tech
        self._model = model
        self._space = space

    def propose(self, config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
        """One random move; always returns a re-fitted configuration."""
        moves: list[Callable[[CoreConfig, np.random.Generator], CoreConfig]] = [
            self.clock_move,
            self.depth_move,
            self.width_move,
            self.size_move,
            self.geometry_move,
        ]
        # Clock and depth moves are the paper's primary pair; weight them.
        weights = np.array([0.30, 0.25, 0.15, 0.15, 0.15])
        move = moves[int(rng.choice(len(moves), p=weights))]
        return move(config, rng)

    # ------------------------------------------------------------------
    # individual moves
    # ------------------------------------------------------------------

    def clock_move(self, config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
        """Scale the clock period and re-fit every unit."""
        factor = rng.uniform(_CLOCK_STEP_DOWN, _CLOCK_STEP_UP)
        clock = float(
            np.clip(
                config.clock_period_ns * factor,
                self._tech.min_clock_ns,
                self._tech.max_clock_ns,
            )
        )
        if abs(clock - config.clock_period_ns) < 1e-6:
            raise TimingError("clock move hit the clock-range boundary")
        return refit_config(
            config.replace(clock_period_ns=clock),
            self._tech,
            self._model,
            self._space,
            rng=rng,
        )

    def depth_move(self, config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
        """Re-pipeline one unit by one stage and re-size it."""
        unit = rng.choice(["iq", "scheduler", "lsq", "l1", "l2"])
        delta = int(rng.choice([-1, 1]))
        space = self._space
        clock = config.clock_period_ns

        if unit == "iq":
            latency = config.wakeup_latency + delta
            if not 0 <= latency <= space.max_wakeup_latency:
                raise TimingError("wake-up latency move out of range")
            size = max_iq_size(
                self._model, self._tech, clock, 1 + latency, config.width, space
            )
            if size is None:
                raise TimingError("no issue queue fits the new wake-up depth")
            changed = config.replace(
                wakeup_latency=latency, iq_size=min(size, config.rob_size)
            )
        elif unit == "scheduler":
            depth = config.scheduler_depth + delta
            if not 1 <= depth <= space.max_scheduler_depth:
                raise TimingError("scheduler depth move out of range")
            size = max_rob_size(self._model, self._tech, clock, depth, config.width, space)
            if size is None:
                raise TimingError("no ROB fits the new scheduler depth")
            changed = config.replace(
                scheduler_depth=depth,
                rob_size=size,
                iq_size=min(config.iq_size, size),
            )
        elif unit == "lsq":
            depth = config.lsq_depth + delta
            if not 1 <= depth <= space.max_lsq_depth:
                raise TimingError("LSQ depth move out of range")
            size = max_lsq_size(self._model, self._tech, clock, depth, space)
            if size is None:
                raise TimingError("no LSQ fits the new depth")
            changed = config.replace(lsq_depth=depth, lsq_size=size)
        else:
            level = 1 if unit == "l1" else 2
            cache = config.l1 if level == 1 else config.l2
            cycles = cache.latency_cycles + delta
            cap = space.max_l1_cycles if level == 1 else space.max_l2_cycles
            if not 1 <= cycles <= cap:
                raise TimingError("cache latency move out of range")
            geometry = best_cache_geometry(
                self._model, self._tech, clock, cycles, space, level, rng=rng
            )
            if geometry is None:
                raise TimingError(f"no L{level} geometry fits {cycles} cycles")
            changed = (
                config.replace(l1=geometry) if level == 1 else config.replace(l2=geometry)
            )

        return refit_config(changed, self._tech, self._model, self._space, rng=None)

    def width_move(self, config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
        """Widen or narrow the machine and re-fit the ported structures."""
        delta = int(rng.choice([-1, 1]))
        width = config.width + delta
        if width not in self._space.widths:
            raise TimingError("width move out of range")
        return refit_config(
            config.replace(width=width), self._tech, self._model, self._space, rng=None
        )

    def size_move(self, config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
        """Re-size one buffer to a random legal size within its budget."""
        unit = rng.choice(["rob", "iq", "lsq"])
        space = self._space
        clock = config.clock_period_ns

        if unit == "rob":
            cap = max_rob_size(
                self._model, self._tech, clock, config.scheduler_depth, config.width, space
            )
            choices = [s for s in space.rob_sizes if cap is not None and s <= cap]
            if not choices:
                raise TimingError("no legal ROB size")
            size = int(rng.choice(choices))
            changed = config.replace(rob_size=size, iq_size=min(config.iq_size, size))
        elif unit == "iq":
            cap = max_iq_size(
                self._model,
                self._tech,
                clock,
                1 + config.wakeup_latency,
                config.width,
                space,
            )
            choices = [
                s
                for s in space.iq_sizes
                if cap is not None and s <= min(cap, config.rob_size)
            ]
            if not choices:
                raise TimingError("no legal issue queue size")
            changed = config.replace(iq_size=int(rng.choice(choices)))
        else:
            cap = max_lsq_size(self._model, self._tech, clock, config.lsq_depth, space)
            choices = [s for s in space.lsq_sizes if cap is not None and s <= cap]
            if not choices:
                raise TimingError("no legal LSQ size")
            changed = config.replace(lsq_size=int(rng.choice(choices)))

        return refit_config(changed, self._tech, self._model, self._space, rng=None)

    def geometry_move(self, config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
        """Randomly re-pick one cache's geometry within its cycle budget."""
        level = int(rng.choice([1, 2]))
        cache = config.l1 if level == 1 else config.l2
        fitting = fitting_cache_geometries(
            self._model,
            self._tech,
            config.clock_period_ns,
            cache.latency_cycles,
            self._space,
            level,
        )
        if not fitting:
            raise TimingError(f"no L{level} geometry fits the current cycles")
        nsets, assoc, block = fitting[int(rng.integers(0, len(fitting)))]
        geometry = CacheGeometry(
            nsets=nsets, assoc=assoc, block_bytes=block, latency_cycles=cache.latency_cycles
        )
        changed = config.replace(l1=geometry) if level == 1 else config.replace(l2=geometry)
        return refit_config(changed, self._tech, self._model, self._space, rng=None)
