"""Pinned-clock design-space sweeps.

A :class:`ClockSweep` runs the xp-scalar annealing search with the clock
period held fixed at each of a grid of values, producing the IPT-vs-clock
curve for one workload.  This is the tool behind the Figure 2 discussion
(how the unified clock re-balances unit sizings) and the calibration
ablations: the full exploration should land near each curve's peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uarch.config import CoreConfig, initial_configuration
from ..uarch.fit import refit_config
from ..workloads.profile import WorkloadProfile
from .annealing import AnnealingSchedule, SimulatedAnnealing
from .xpscalar import XpScalar


@dataclass(frozen=True)
class SweepPoint:
    """Best configuration found at one pinned clock period."""

    clock_period_ns: float
    score: float
    config: CoreConfig


def _sweep_task(
    payload: tuple["ClockSweep", WorkloadProfile, float, int],
) -> SweepPoint:
    """One pinned-clock anneal, shaped for ``engine.map`` (picklable)."""
    sweep, profile, clock, seed = payload
    return sweep._run_at(profile, clock, seed)


class ClockSweep:
    """Sweep the clock period, annealing all other parameters at each point."""

    def __init__(self, explorer: XpScalar, iterations: int = 600) -> None:
        self._xp = explorer
        self._iterations = iterations

    def run(
        self,
        profile: WorkloadProfile,
        clocks: list[float] | None = None,
        seed: int = 0,
    ) -> list[SweepPoint]:
        """Anneal at each clock on the grid; returns one point per clock.

        The per-clock anneals are independent, so they run across the
        explorer's engine pool when it has ``jobs > 1``; seeds are pinned
        per grid position, keeping results identical at any job count.
        """
        tech = self._xp.tech
        if clocks is None:
            clocks = [round(c, 3) for c in np.linspace(tech.min_clock_ns, tech.max_clock_ns, 9)]
        tasks = [
            (self, profile, float(clock), seed + i) for i, clock in enumerate(clocks)
        ]
        with self._xp.engine.phase("sweep"):
            return self._xp.engine.map(_sweep_task, tasks)

    def _run_at(self, profile: WorkloadProfile, clock: float, seed: int) -> SweepPoint:
        moves = self._xp._moves  # shares the explorer's move generator

        def propose(config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
            candidate = moves.propose(config, rng)
            if abs(candidate.clock_period_ns - clock) > 1e-9:
                # Clock moves are pinned back to the sweep's clock.
                candidate = refit_config(
                    candidate.replace(clock_period_ns=clock),
                    self._xp.tech,
                    self._xp.model,
                    self._xp.space,
                    rng=rng,
                )
            return candidate

        start = refit_config(
            initial_configuration(self._xp.tech).replace(clock_period_ns=clock),
            self._xp.tech,
            self._xp.model,
            self._xp.space,
        )
        annealer = SimulatedAnnealing(
            propose=propose,
            evaluate=lambda cfg: self._xp.score(profile, cfg),
            schedule=AnnealingSchedule(iterations=self._iterations),
        )
        outcome = annealer.run(start, seed=seed)
        return SweepPoint(
            clock_period_ns=clock, score=outcome.best_score, config=outcome.best_state
        )
