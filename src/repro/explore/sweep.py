"""Pinned-clock design-space sweeps.

A :class:`ClockSweep` runs the xp-scalar search with the clock period
held fixed at each of a grid of values, producing the IPT-vs-clock curve
for one workload.  This is the tool behind the Figure 2 discussion (how
the unified clock re-balances unit sizings) and the calibration
ablations: the full exploration should land near each curve's peak.

Like :meth:`repro.explore.xpscalar.XpScalar.customize_all`, sweeps
checkpoint at per-point granularity: pass a
:class:`~repro.engine.CheckpointManager` and ``resume=True`` and an
interrupted sweep restores every finished grid point instead of
re-annealing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..engine import CheckpointManager
from ..engine.keys import derive_seed, digest, simulator_id
from ..engine.serialize import config_from_jsonable, config_to_jsonable
from ..search import (
    AnnealingSchedule,
    SearchBudget,
    SearchDiagnostics,
    SearchProblem,
    SearchResult,
    SearchStrategy,
    make_strategy,
)
from ..uarch.config import CoreConfig, initial_configuration
from ..uarch.fit import refit_config
from ..workloads.profile import WorkloadProfile
from .xpscalar import XpScalar, apply_objective, objective_identity


@dataclass(frozen=True)
class SweepPoint:
    """Best configuration found at one pinned clock period."""

    clock_period_ns: float
    score: float
    config: CoreConfig
    search: SearchResult | None = None


def _sweep_task(
    payload: tuple["ClockSweep", WorkloadProfile, float, int],
) -> SweepPoint:
    """One pinned-clock search, shaped for ``engine.map`` (picklable)."""
    sweep, profile, clock, seed = payload
    return sweep._run_at(profile, clock, seed)


def _point_to_state(point: SweepPoint) -> dict:
    """Checkpoint encoding of one :class:`SweepPoint`."""
    search = point.search
    return {
        "clock": point.clock_period_ns,
        "score": point.score,
        "config": config_to_jsonable(point.config),
        "search": None
        if search is None
        else {
            "best_state": config_to_jsonable(search.best_state),
            "best_score": search.best_score,
            "evaluations": search.evaluations,
            "accepted": search.accepted,
            "rollbacks": search.rollbacks,
            "history": list(search.history),
            "stop_reason": search.stop_reason,
        },
    }


def _point_from_state(state: dict) -> SweepPoint:
    """Inverse of :func:`_point_to_state` (bit-exact for all floats)."""
    search_state = state.get("search")
    search = None
    if search_state is not None:
        search = SearchResult(
            best_state=config_from_jsonable(search_state["best_state"]),
            best_score=search_state["best_score"],
            evaluations=search_state["evaluations"],
            accepted=search_state["accepted"],
            rollbacks=search_state["rollbacks"],
            history=list(search_state["history"]),
            stop_reason=search_state.get("stop_reason"),
        )
    return SweepPoint(
        clock_period_ns=state["clock"],
        score=state["score"],
        config=config_from_jsonable(state["config"]),
        search=search,
    )


class ClockSweep:
    """Sweep the clock period, searching all other parameters at each point.

    Parameters
    ----------
    explorer:
        The :class:`XpScalar` whose engine, move generator and objective
        the sweep shares.
    iterations:
        Per-point search length (sweeps use a shorter schedule than full
        customization — the clock knob, the costliest to search, is
        pinned).
    strategy:
        Search policy per grid point: a registered name or a ready
        :class:`~repro.search.SearchStrategy`.  The default ``anneal``
        reproduces the pre-strategy sweep bit-for-bit.
    budget:
        Optional :class:`~repro.search.SearchBudget` applied to every
        point's search (only used when ``strategy`` is a name).
    restarts:
        Restart count for multi-start strategies (only used when
        ``strategy`` is a name).
    search_batch:
        Candidate batch width for strategies with a batched evaluation
        mode; ``1`` (the default) keeps the sequential, signature-stable
        walk (only used when ``strategy`` is a name).
    """

    def __init__(
        self,
        explorer: XpScalar,
        iterations: int = 600,
        strategy: str | SearchStrategy = "anneal",
        budget: SearchBudget | None = None,
        restarts: int = 4,
        search_batch: int = 1,
    ) -> None:
        self._xp = explorer
        self._iterations = iterations
        if isinstance(strategy, str):
            self._strategy: SearchStrategy = make_strategy(
                strategy,
                schedule=AnnealingSchedule(iterations=iterations),
                budget=budget,
                restarts=restarts,
                batch=search_batch,
            )
        else:
            self._strategy = strategy

    def run_signature(
        self, profile: WorkloadProfile, clocks: list[float], seed: int
    ) -> str:
        """Content hash of everything that determines a sweep.

        Checkpoints are only resumed when this matches — a changed grid,
        seed, schedule length, strategy, technology, design space or
        simulator starts fresh instead of resuming into inconsistency.
        """
        objective_id = objective_identity(self._xp.objective)
        return digest(
            profile,
            [float(c) for c in clocks],
            seed,
            self._iterations,
            self._strategy.identity(),
            self._xp.tech,
            self._xp.space,
            simulator_id(self._xp.simulator),
            objective_id,
        )

    def run(
        self,
        profile: WorkloadProfile,
        clocks: list[float] | None = None,
        seed: int = 0,
        checkpoint: CheckpointManager | None = None,
        resume: bool = False,
    ) -> list[SweepPoint]:
        """Search at each clock on the grid; returns one point per clock.

        The per-clock searches are independent, so they run across the
        explorer's engine pool when it has ``jobs > 1``; seeds are pinned
        per grid position, keeping results identical at any job count.

        With a ``checkpoint``, finished points are persisted after every
        batch; ``resume=True`` restores a matching checkpoint (see
        :meth:`run_signature`) and re-runs only the missing grid points.
        Each freshly searched point emits a ``search_run`` diagnostics
        event on the engine bus (restored points do not — no search ran).
        """
        tech = self._xp.tech
        if clocks is None:
            clocks = [
                round(c, 3)
                for c in np.linspace(tech.min_clock_ns, tech.max_clock_ns, 9)
            ]
        clocks = [float(c) for c in clocks]
        engine = self._xp.engine

        signature = self.run_signature(profile, clocks, seed)
        points: dict[int, SweepPoint] = {}
        if checkpoint is not None and checkpoint.events is None:
            checkpoint.events = engine.events
        if checkpoint is not None and resume:
            state = checkpoint.load(signature, strict=True)
            if state is not None:
                for key, entry in state.get("points", {}).items():
                    index = int(key)
                    if 0 <= index < len(clocks):
                        points[index] = _point_from_state(entry)

        def save() -> None:
            if checkpoint is None:
                return
            checkpoint.save(
                signature,
                {"points": {str(i): _point_to_state(p) for i, p in points.items()}},
            )
            engine.events.emit("checkpoint", path=str(checkpoint.path))

        pending = [(i, clock) for i, clock in enumerate(clocks) if i not in points]
        # Chunked like customize_all: a checkpoint lands every few
        # completions without starving the pool.
        chunk = 1 if engine.workers == 1 else engine.workers * 2
        try:
            with engine.phase("sweep"):
                for lo in range(0, len(pending), chunk):
                    batch = pending[lo : lo + chunk]
                    tasks = [
                        (self, profile, clock, derive_seed(seed, index=i))
                        for i, clock in batch
                    ]
                    if engine.events.tracing:
                        # Give the batch's worker task spans a meaningful
                        # parent carrying the grid points it covers.
                        with engine.events.span(
                            "sweep-batch",
                            kind="search",
                            clocks=[clock for _, clock in batch],
                        ):
                            outcomes = engine.map(_sweep_task, tasks)
                    else:
                        outcomes = engine.map(_sweep_task, tasks)
                    for (index, clock), point in zip(batch, outcomes):
                        points[index] = point
                        self._emit_search(profile, point)
                    if checkpoint is not None and len(points) < len(clocks):
                        save()
        except BaseException:
            # Interrupt/crash on the way out: flush whatever completed,
            # so a resume restores every finished grid point.
            save()
            raise
        if pending:
            save()
        return [points[i] for i in range(len(clocks))]

    def _emit_search(self, profile: WorkloadProfile, point: SweepPoint) -> None:
        """Publish one grid point's convergence diagnostics."""
        if point.search is None:
            return
        diagnostics = SearchDiagnostics.from_result(
            self._strategy.name,
            f"{profile.name}@{point.clock_period_ns:g}",
            point.search,
        )
        self._xp.engine.events.emit("search_run", **diagnostics.payload())

    def _run_at(self, profile: WorkloadProfile, clock: float, seed: int) -> SweepPoint:
        moves = self._xp._moves  # shares the explorer's move generator

        def propose(config: CoreConfig, rng: np.random.Generator) -> CoreConfig:
            candidate = moves.propose(config, rng)
            if abs(candidate.clock_period_ns - clock) > 1e-9:
                # Clock moves are pinned back to the sweep's clock.
                candidate = refit_config(
                    candidate.replace(clock_period_ns=clock),
                    self._xp.tech,
                    self._xp.model,
                    self._xp.space,
                    rng=rng,
                )
            return candidate

        start = refit_config(
            initial_configuration(self._xp.tech).replace(clock_period_ns=clock),
            self._xp.tech,
            self._xp.model,
            self._xp.space,
        )
        def evaluate_many(configs: Sequence[CoreConfig]) -> list[float]:
            results = self._xp.engine.evaluate_many(
                [(profile, cfg) for cfg in configs]
            )
            return [
                apply_objective(self._xp.objective, profile, cfg, result)
                for cfg, result in zip(configs, results)
            ]

        problem = SearchProblem(
            initial=start,
            propose=propose,
            evaluate=lambda cfg: self._xp.score(profile, cfg),
            evaluate_many=evaluate_many,
        )
        outcome = self._strategy.run(problem, seed=seed)
        return SweepPoint(
            clock_period_ns=clock,
            score=outcome.best_score,
            config=outcome.best_state,
            search=outcome,
        )
