"""Generic simulated-annealing engine with the paper's rollback rule.

xp-scalar's search (§3) is a simulated-annealing process over processor
configurations with one distinctive twist: "When a configuration is
reached for which the IPT is less than half that of the optimal
configuration, the exploration process rolls back to the optimal solution
and is continued."  The engine here is generic over the state type so it
can be tested independently of the processor design space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

import numpy as np

from ..errors import ExplorationError

State = TypeVar("State")


@dataclass(frozen=True)
class AnnealingSchedule:
    """Parameters of the annealing process.

    ``temperature`` is expressed as a *relative* score tolerance: at
    temperature T, a move that loses a fraction T of the best score so
    far is accepted with probability 1/e.  Cooling is geometric from
    ``t_initial`` to ``t_final`` over ``iterations`` steps.
    ``rollback_fraction`` is the paper's rule: scores below this fraction
    of the best-so-far snap the search back to the best state.
    """

    iterations: int = 2500
    t_initial: float = 0.10
    t_final: float = 0.005
    rollback_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ExplorationError(f"iterations must be >= 1: {self.iterations}")
        if not 0 < self.t_final <= self.t_initial:
            raise ExplorationError(
                f"need 0 < t_final <= t_initial, got {self.t_final}, {self.t_initial}"
            )
        if not 0 < self.rollback_fraction < 1:
            raise ExplorationError(
                f"rollback_fraction must be in (0, 1): {self.rollback_fraction}"
            )

    def temperature(self, step: int) -> float:
        """Geometric cooling."""
        if self.iterations == 1:
            return self.t_initial
        ratio = self.t_final / self.t_initial
        return self.t_initial * ratio ** (step / (self.iterations - 1))


@dataclass
class AnnealingResult(Generic[State]):
    """Outcome of one annealing run."""

    best_state: State
    best_score: float
    evaluations: int
    accepted: int
    rollbacks: int
    history: list[float] = field(default_factory=list)


class SimulatedAnnealing(Generic[State]):
    """Maximize ``evaluate(state)`` by annealed local search.

    Parameters
    ----------
    propose:
        ``(state, rng) -> state`` neighbour generator.  May raise
        :class:`~repro.errors.TimingError` /
        :class:`~repro.errors.ConfigurationError` for untenable moves;
        those proposals are skipped (they still consume an iteration,
        mirroring a simulation that was not run).
    evaluate:
        ``state -> float`` fitness (higher is better, must be positive).
    schedule:
        Annealing parameters.
    """

    def __init__(
        self,
        propose: Callable[[State, np.random.Generator], State],
        evaluate: Callable[[State], float],
        schedule: AnnealingSchedule | None = None,
    ) -> None:
        self._propose = propose
        self._evaluate = evaluate
        self._schedule = schedule or AnnealingSchedule()

    def run(self, initial: State, seed: int = 0) -> AnnealingResult[State]:
        """Anneal from ``initial``; deterministic for a given seed."""
        rng = np.random.default_rng(seed)
        schedule = self._schedule

        current = initial
        current_score = self._evaluate(initial)
        if current_score <= 0:
            raise ExplorationError(
                f"initial state has non-positive score {current_score}"
            )
        best, best_score = current, current_score
        evaluations = 1
        accepted = 0
        rollbacks = 0
        history = [best_score]

        from ..errors import ConfigurationError, TimingError

        for step in range(schedule.iterations):
            try:
                candidate = self._propose(current, rng)
            except (TimingError, ConfigurationError):
                history.append(best_score)
                continue
            score = self._evaluate(candidate)
            evaluations += 1

            if score > best_score:
                best, best_score = candidate, score

            if score >= current_score or self._accept(
                score, current_score, best_score, schedule.temperature(step), rng
            ):
                current, current_score = candidate, score
                accepted += 1

            # The paper's rollback rule: a configuration below half the
            # best-so-far IPT snaps the search back to the best solution.
            if current_score < schedule.rollback_fraction * best_score:
                current, current_score = best, best_score
                rollbacks += 1

            history.append(best_score)

        return AnnealingResult(
            best_state=best,
            best_score=best_score,
            evaluations=evaluations,
            accepted=accepted,
            rollbacks=rollbacks,
            history=history,
        )

    @staticmethod
    def _accept(
        score: float,
        current_score: float,
        best_score: float,
        temperature: float,
        rng: np.random.Generator,
    ) -> bool:
        """Metropolis acceptance on the relative score loss."""
        loss = (current_score - score) / max(best_score, 1e-12)
        return rng.random() < math.exp(-loss / temperature)
