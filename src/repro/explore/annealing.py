"""Compatibility shim: the annealer moved to :mod:`repro.search.anneal`.

Simulated annealing used to be the *only* search and lived here; it is
now one pluggable :class:`~repro.search.SearchStrategy` among several.
Everything historical importers need is re-exported unchanged —
``AnnealingResult`` is an alias of the strategy-agnostic
:class:`~repro.search.SearchResult`.
"""

from __future__ import annotations

from ..search.anneal import (
    AnnealingResult,
    AnnealingSchedule,
    SimulatedAnnealing,
)

__all__ = ["AnnealingResult", "AnnealingSchedule", "SimulatedAnnealing"]
