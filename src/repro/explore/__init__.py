"""xp-scalar: simulated-annealing design-space exploration."""

from .annealing import AnnealingResult, AnnealingSchedule, SimulatedAnnealing
from .moves import MoveGenerator
from .sweep import ClockSweep, SweepPoint
from .xpscalar import ExplorationResult, Objective, XpScalar, ipt_objective

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "SimulatedAnnealing",
    "MoveGenerator",
    "ClockSweep",
    "SweepPoint",
    "ExplorationResult",
    "Objective",
    "XpScalar",
    "ipt_objective",
]
