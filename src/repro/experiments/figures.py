"""Figure drivers: the data behind every figure in the paper.

* Figure 1 — Kiviat graphs of three illustrative workloads;
* Figure 2 — clock-period / issue-queue / L1 slack scenarios;
* Figure 4 — per-benchmark IPT under limited configuration sets;
* Figures 6-8 — greedy surrogate graphs under the three propagation
  policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..characterize.cross import CrossPerformance
from ..communal.combination import best_combination, per_workload_ipt
from ..communal.surrogate import Propagation, SurrogateGraph, greedy_surrogates
from ..tech import CactiModel, TechnologyNode, default_technology
from ..tech.unitdelay import issue_queue_ns, l1_cache_ns
from ..units import cycles_for
from ..workloads.kiviat import (
    KiviatGraph,
    figure1_profiles,
    kiviat_distance_matrix,
    kiviat_graphs,
)


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------

def figure1() -> tuple[list[KiviatGraph], np.ndarray]:
    """Kiviat graphs of the α/β/γ workloads plus their distance matrix."""
    graphs = kiviat_graphs(figure1_profiles())
    return graphs, kiviat_distance_matrix(graphs)


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SlackScenario:
    """One of Figure 2's four clock/sizing scenarios."""

    name: str
    clock_ns: float
    iq_size: int
    iq_delay_ns: float
    iq_cycles: int
    iq_slack_ns: float
    l1_capacity_bytes: int
    l1_delay_ns: float
    l1_cycles: int
    l1_slack_ns: float

    @property
    def total_slack_ns(self) -> float:
        return self.iq_slack_ns + self.l1_slack_ns


def figure2_scenarios(tech: TechnologyNode | None = None) -> list[SlackScenario]:
    """Reproduce Figure 2's four scenarios with the real timing model.

    * **a** — 1 ns clock: the L1 access leaves considerable slack in its
      second cycle;
    * **b** — 0.66 ns clock: slack shrinks, the pipeline deepens;
    * **c** — 0.66 ns clock with a downsized issue queue: further slack
      reduction;
    * **d** — back to 1 ns, but the L1 is *upsized* to use the full two
      cycles.
    """
    tech = tech or default_technology()
    model = CactiModel(tech)
    width = 8

    def scenario(name, clock, iq_size, l1_geometry):
        iq_delay = issue_queue_ns(model, iq_size, width)
        l1_delay = l1_cache_ns(model, *l1_geometry)
        iq_cycles = cycles_for(iq_delay, clock)
        l1_cycles = cycles_for(l1_delay, clock)
        return SlackScenario(
            name=name,
            clock_ns=clock,
            iq_size=iq_size,
            iq_delay_ns=iq_delay,
            iq_cycles=iq_cycles,
            iq_slack_ns=iq_cycles * clock - iq_delay,
            l1_capacity_bytes=l1_geometry[0] * l1_geometry[1] * l1_geometry[2],
            l1_delay_ns=l1_delay,
            l1_cycles=l1_cycles,
            l1_slack_ns=l1_cycles * clock - l1_delay,
        )

    small_l1 = (512, 2, 64)  # 64 KB: ~1.15 ns, two 1 ns cycles
    # Scenario d upsizes the L1 to the largest geometry that still fits
    # the two cycles available at the 1 ns clock.
    from ..uarch.config import DesignSpace
    from ..uarch.fit import best_cache_geometry

    space = DesignSpace()
    big = best_cache_geometry(model, tech, 1.00, 2, space, level=1)
    big_l1 = (big.nsets, big.assoc, big.block_bytes)
    return [
        scenario("a", 1.00, 128, small_l1),
        scenario("b", 0.66, 128, small_l1),
        scenario("c", 0.66, 64, small_l1),
        scenario("d", 1.00, 128, big_l1),
    ]


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure4Series:
    """Per-benchmark IPT for one set of available configurations."""

    label: str
    configs: tuple[str, ...]
    ipt: dict[str, float]


def figure4(cross: CrossPerformance) -> list[Figure4Series]:
    """The five series of Figure 4.

    Best single core, best two cores under each of the three merits, and
    every benchmark on its own customized core.
    """
    best1 = best_combination(cross, 1, "har")
    best2_avg = best_combination(cross, 2, "avg")
    best2_har = best_combination(cross, 2, "har")
    best2_cw = best_combination(cross, 2, "cw-har")
    series = [
        ("best single core", best1.configs),
        ("best two cores (avg IPT)", best2_avg.configs),
        ("best two cores (har IPT)", best2_har.configs),
        ("best two cores (cw-har IPT)", best2_cw.configs),
        ("own customized core", tuple(cross.names)),
    ]
    return [
        Figure4Series(label=label, configs=configs, ipt=per_workload_ipt(cross, configs))
        for label, configs in series
    ]


# ----------------------------------------------------------------------
# Figures 6-8
# ----------------------------------------------------------------------

def figure6(cross: CrossPerformance) -> SurrogateGraph:
    """Greedy surrogates without propagation (stalls before 1 root)."""
    return greedy_surrogates(cross, Propagation.NONE, target_roots=1)


def figure7(cross: CrossPerformance, target_roots: int = 2) -> SurrogateGraph:
    """Greedy surrogates with forward + backward propagation."""
    return greedy_surrogates(cross, Propagation.FULL, target_roots=target_roots)


def figure8(cross: CrossPerformance, target_roots: int = 2) -> SurrogateGraph:
    """Greedy surrogates with forward-only propagation."""
    return greedy_surrogates(cross, Propagation.FORWARD, target_roots=target_roots)
