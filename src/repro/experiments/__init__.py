"""Experiment drivers: one function per table/figure of the paper, plus
the end-to-end pipeline and text reporting."""

from .figures import (
    Figure4Series,
    SlackScenario,
    figure1,
    figure2_scenarios,
    figure4,
    figure6,
    figure7,
    figure8,
)
from .pipeline import (
    DEFAULT_ITERATIONS,
    DEFAULT_SEED,
    PipelineResult,
    build_engine,
    default_pipeline,
    run_pipeline,
)
from .stability import SeedOutcome, StabilityReport, stability_analysis
from .reporting import (
    render_heatmap,
    render_kv,
    render_matrix,
    render_surrogate_graph,
    render_table,
)
from .tables import (
    Table6Row,
    Table7Summary,
    appendix_a_matrix,
    table1_unit_delays,
    table2_fixed_parameters,
    table3_initial_configuration,
    table4_rows,
    table5_matrix,
    table6_rows,
    table7_summary,
)

__all__ = [
    "Figure4Series",
    "SlackScenario",
    "figure1",
    "figure2_scenarios",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "DEFAULT_ITERATIONS",
    "DEFAULT_SEED",
    "PipelineResult",
    "build_engine",
    "default_pipeline",
    "run_pipeline",
    "SeedOutcome",
    "StabilityReport",
    "stability_analysis",
    "render_heatmap",
    "render_kv",
    "render_matrix",
    "render_surrogate_graph",
    "render_table",
    "Table6Row",
    "Table7Summary",
    "appendix_a_matrix",
    "table1_unit_delays",
    "table2_fixed_parameters",
    "table3_initial_configuration",
    "table4_rows",
    "table5_matrix",
    "table6_rows",
    "table7_summary",
]
