"""Seed-stability analysis of the exploration pipeline.

The paper's §2.3 criticizes evaluation methodologies whose conclusions
cannot be checked in the space where they are drawn.  Annealing-based
exploration is stochastic, so the reproduction's own conclusions deserve
the same scrutiny: this module re-runs the pipeline across seeds and
reports which headline outcomes are stable (the memory outlier in the
harmonic pair, the Table 7 ordering) and how much the merits wobble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..communal.combination import best_combination
from ..communal.merit import ideal_harmonic_ipt
from ..workloads.profile import WorkloadProfile
from .pipeline import run_pipeline
from .tables import table7_summary


@dataclass(frozen=True)
class SeedOutcome:
    """Headline results of one pipeline run."""

    seed: int
    ideal_harmonic: float
    best_single: str
    best_pair: tuple[str, ...]
    pair_includes_outlier: bool
    table7_ordered: bool


@dataclass(frozen=True)
class StabilityReport:
    """Aggregate over seeds."""

    outcomes: tuple[SeedOutcome, ...]

    @property
    def outlier_in_pair_rate(self) -> float:
        """Fraction of seeds whose harmonic pair protects the outlier."""
        return float(
            np.mean([o.pair_includes_outlier for o in self.outcomes])
        )

    @property
    def table7_ordering_rate(self) -> float:
        """Fraction of seeds with the paper's Table 7 ordering."""
        return float(np.mean([o.table7_ordered for o in self.outcomes]))

    @property
    def ideal_harmonic_cv(self) -> float:
        """Coefficient of variation of the ideal harmonic IPT."""
        values = np.array([o.ideal_harmonic for o in self.outcomes])
        return float(values.std() / values.mean())


def stability_analysis(
    seeds: Sequence[int],
    iterations: int = 1000,
    profiles: Sequence[WorkloadProfile] | None = None,
    outlier: str = "mcf",
) -> StabilityReport:
    """Run the pipeline once per seed and collect headline outcomes."""
    outcomes = []
    for seed in seeds:
        pipe = run_pipeline(
            profiles=profiles, iterations=iterations, seed=seed, cross_seed_rounds=1
        )
        cross = pipe.cross
        best1 = best_combination(cross, 1, "har")
        best2 = best_combination(cross, 2, "har")
        summary = table7_summary(cross)
        ordered = (
            summary.ideal_harmonic
            >= summary.complete_search_harmonic - 1e-9
            >= summary.surrogate_harmonic - 2e-9
        ) and summary.complete_search_harmonic >= summary.homogeneous_harmonic - 1e-9
        outcomes.append(
            SeedOutcome(
                seed=seed,
                ideal_harmonic=ideal_harmonic_ipt(cross),
                best_single=best1.configs[0],
                best_pair=best2.configs,
                pair_includes_outlier=outlier in best2.configs,
                table7_ordered=ordered,
            )
        )
    return StabilityReport(outcomes=tuple(outcomes))
