"""Table drivers: the data behind every table in the paper.

* Table 1 — CACTI output components per architectural unit;
* Table 2 — fixed technology parameters;
* Table 3 — the initial configuration;
* Table 4 — customized configurations per benchmark;
* Table 5 — the cross-configuration IPT matrix;
* Table 6 — best core combinations under three merits;
* Table 7 — the dual-core summary;
* Appendix A — the percentage slowdown matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..characterize.configurational import ConfigurationalCharacteristics
from ..characterize.cross import CrossPerformance
from ..communal.combination import Combination, best_combination
from ..communal.merit import ideal_harmonic_ipt
from ..communal.surrogate import Propagation, greedy_surrogates, surrogate_merits
from ..tech import CactiModel, TechnologyNode, default_technology
from ..tech.unitdelay import issue_queue_ns, l1_cache_ns, l2_cache_ns, lsq_ns, regfile_ns, select_ns, wakeup_ns
from ..uarch.config import CoreConfig, initial_configuration
from ..units import format_size


def table1_unit_delays(
    config: CoreConfig, tech: TechnologyNode | None = None
) -> dict[str, float]:
    """Table 1 in executable form: each unit's modelled delay (ns)."""
    tech = tech or default_technology()
    model = CactiModel(tech)
    return {
        "L1 data cache": l1_cache_ns(
            model, config.l1.nsets, config.l1.assoc, config.l1.block_bytes
        ),
        "L2 data cache": l2_cache_ns(
            model, config.l2.nsets, config.l2.assoc, config.l2.block_bytes
        ),
        "wakeup": wakeup_ns(model, config.iq_size, config.width),
        "select": select_ns(model, config.iq_size, config.width),
        "issue queue (wakeup+select)": issue_queue_ns(
            model, config.iq_size, config.width
        ),
        "reg file (ROB)": regfile_ns(model, config.rob_size, config.width),
        "LSQ": lsq_ns(model, config.lsq_size),
    }


def table2_fixed_parameters(tech: TechnologyNode | None = None) -> dict[str, object]:
    """Table 2: the fixed design parameters across all configurations."""
    tech = tech or default_technology()
    return {
        "memory access latency (ns)": tech.memory_latency_ns,
        "front-end latency (ns)": tech.frontend_latency_ns,
        "bit-width of IQ entries": tech.iq_entry_bits,
        "latch latency (ns)": tech.latch_latency_ns,
    }


def table3_initial_configuration(tech: TechnologyNode | None = None) -> CoreConfig:
    """Table 3: the starting point of every exploration."""
    return initial_configuration(tech or default_technology())


#: Row labels of Table 4 and the config attribute that provides each.
TABLE4_ROWS = (
    ("No. of cycles for memory access", lambda c: c.memory_cycles),
    ("No. of pipeline stages of the front-end", lambda c: c.frontend_stages),
    ("Dispatch, issue, and commit width", lambda c: c.width),
    ("ROB size", lambda c: c.rob_size),
    ("Issue queue size", lambda c: c.iq_size),
    ("Min. lat. for awakening of dep. instr.", lambda c: c.wakeup_latency),
    ("Pipeline depth of Scheduler/Reg-file", lambda c: c.scheduler_depth),
    ("Clock period", lambda c: round(c.clock_period_ns, 2)),
    ("L1D associativity", lambda c: c.l1.assoc),
    ("L1D block-size", lambda c: c.l1.block_bytes),
    ("L1D no. of sets", lambda c: c.l1.nsets),
    ("L1D access latency", lambda c: c.l1.latency_cycles),
    ("L1D capacity", lambda c: format_size(c.l1.capacity_bytes)),
    ("L2D associativity", lambda c: c.l2.assoc),
    ("L2D block-size", lambda c: c.l2.block_bytes),
    ("L2D no. of sets", lambda c: c.l2.nsets),
    ("L2D access latency", lambda c: c.l2.latency_cycles),
    ("L2D capacity", lambda c: format_size(c.l2.capacity_bytes)),
    ("LS-queue size", lambda c: c.lsq_size),
)


def table4_rows(
    characteristics: dict[str, ConfigurationalCharacteristics],
    names: list[str] | None = None,
) -> tuple[list[str], list[list[object]]]:
    """Table 4 as (headers, rows): one column per benchmark."""
    names = names or sorted(characteristics)
    headers = ["parameter"] + names
    rows = []
    for label, getter in TABLE4_ROWS:
        rows.append([label] + [getter(characteristics[n].config) for n in names])
    return headers, rows


def table5_matrix(cross: CrossPerformance) -> np.ndarray:
    """Table 5: the cross-configuration IPT matrix itself."""
    return cross.ipt.copy()


@dataclass(frozen=True)
class Table6Row:
    """One row of Table 6."""

    label: str
    combination: Combination


def table6_rows(cross: CrossPerformance) -> list[Table6Row]:
    """Table 6: best combinations per core count and figure of merit."""
    rows = [
        Table6Row("best config for avg & har IPT", best_combination(cross, 1, "har")),
        Table6Row("2 best configs for avg IPT", best_combination(cross, 2, "avg")),
        Table6Row("2 best configs for har IPT", best_combination(cross, 2, "har")),
        Table6Row("2 best configs for cw-har IPT", best_combination(cross, 2, "cw-har")),
        Table6Row("3 best configs for avg IPT", best_combination(cross, 3, "avg")),
        Table6Row("3 best configs for har IPT", best_combination(cross, 3, "har")),
        Table6Row("4 best configs for har IPT", best_combination(cross, 4, "har")),
    ]
    return rows


@dataclass(frozen=True)
class Table7Summary:
    """Table 7: dual-core design approaches compared."""

    ideal_harmonic: float
    homogeneous_harmonic: float
    homogeneous_config: str
    complete_search_harmonic: float
    complete_search_configs: tuple[str, ...]
    surrogate_harmonic: float
    surrogate_configs: tuple[str, ...]

    def slowdown_vs_ideal(self, value: float) -> float:
        """Fractional slowdown of a scenario vs the ideal system."""
        return 1.0 - value / self.ideal_harmonic


def table7_summary(cross: CrossPerformance) -> Table7Summary:
    """Compute the four scenarios of Table 7."""
    ideal = ideal_harmonic_ipt(cross)
    best1 = best_combination(cross, 1, "har")
    best2 = best_combination(cross, 2, "har")
    graph = greedy_surrogates(cross, Propagation.FULL, target_roots=2)
    surro = surrogate_merits(cross, graph)
    return Table7Summary(
        ideal_harmonic=ideal,
        homogeneous_harmonic=best1.harmonic,
        homogeneous_config=best1.configs[0],
        complete_search_harmonic=best2.harmonic,
        complete_search_configs=best2.configs,
        surrogate_harmonic=surro["harmonic_ipt"],
        surrogate_configs=graph.roots,
    )


def appendix_a_matrix(cross: CrossPerformance) -> np.ndarray:
    """Appendix A: percentage slowdown of each benchmark on each config."""
    return cross.slowdown_matrix()
